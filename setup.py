"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-use-pep517`` works on machines where PEP 517 build
isolation is unavailable (e.g. offline boxes without ``wheel``).
"""

from setuptools import setup

setup()
