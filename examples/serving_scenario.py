#!/usr/bin/env python
"""The scenario engine end to end: population -> traffic -> open-loop replay.

The serving examples so far drive gateways with hand-picked user arrays.
This example runs the standing stress rig instead:

1. generate a seeded synthetic **population** with controllable structure
   (``ScenarioConfig``: Zipf item popularity, planted-partition
   communities, initiator/participant role mix) — block-streamed, so the
   same code generates 1M-user worlds in the slow benchmarks;
2. slice a training-sized ``GroupBuyingDataset`` out of it, train a small
   MF model and publish it to a ``ModelCatalog``/``ServingGateway``;
3. expand a **traffic model** (diurnal cycle + one flash-sale burst with
   hot-key skew and a tighter in-burst deadline budget) into a
   deterministic timestamped ``RequestStream``;
4. **replay** the stream open-loop against the gateway and print the
   per-phase SLO ledger: requests == ok + sheds + deadline_exceeded +
   errors, with p50/p95/p99 and achieved vs offered req/s per phase.

Runs in well under a minute on a laptop CPU:

    python examples/serving_scenario.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.data import ScenarioConfig, generate_population, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    FlashBurst,
    ModelCatalog,
    ReplayHarness,
    ServingGateway,
    TrafficConfig,
    TrafficModel,
)
from repro.training import TrainingSettings, train_model
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    # 1. A seeded population: who exists, who befriends whom, who launches.
    config = (
        ScenarioConfig(num_users=400, num_items=80, num_behaviors=900,
                       num_communities=8, block_size=128, seed=7)
        if TINY
        else ScenarioConfig(num_users=20_000, num_items=2_000, num_behaviors=40_000,
                            num_communities=40, block_size=8_192, seed=7)
    )
    population = generate_population(config)
    print(f"population: {population!r}")
    print(f"  mean degree {population.mean_degree():.1f}, "
          f"initiator share {population.roles.mean():.2f}, "
          f"clinch rate {population.success_mask().mean():.2f}")
    print(f"  digest {population.digest()[:16]}… (same seed -> same bytes, "
          f"in any process)")
    print()

    # 2. Any sub-scale slice is a valid dataset; train a small model on one.
    serve_users = 120 if TINY else 2_000
    serve_items = 60 if TINY else 800
    dataset = population.to_dataset(num_users=serve_users, num_items=serve_items)
    split = leave_one_out_split(dataset, seed=1)
    settings = ModelSettings(embedding_dim=8 if TINY else 16)
    model = build_model("MF", split.train, settings)
    train_model(model, split.train,
                settings=TrainingSettings(num_epochs=1 if TINY else 3, batch_size=512))

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        save_model(model, directory / "mf.npz")
        gateway = ServingGateway(
            ModelCatalog(directory, split.train), default_model="mf"
        )
        gateway.top_k(np.array([0]), k=10)  # absorb the cold start
        print(f"serving slice: {serve_users} users / {serve_items} items, model 'mf'")
        print()

        # 3. Deterministic traffic: a diurnal cycle plus one flash sale
        # whose requests chase 8 hot items under a 100 ms deadline.
        traffic = TrafficConfig(
            duration_seconds=4.0 if TINY else 12.0,
            base_rate_per_second=30.0 if TINY else 80.0,
            diurnal_amplitude=0.3,
            diurnal_period_seconds=4.0 if TINY else 12.0,
            bursts=(
                FlashBurst(
                    start_seconds=1.5 if TINY else 5.0,
                    multiplier=4.0,
                    rise_seconds=0.25 if TINY else 1.0,
                    hold_seconds=1.0 if TINY else 3.0,
                    decay_seconds=0.25 if TINY else 1.0,
                    name="flash",
                    hot_item_fraction=0.8,
                    hot_items=8,
                    deadline_seconds=0.1,
                ),
            ),
            deadline_seconds=0.5,
            seed=13,
        )
        stream = TrafficModel(traffic).generate(
            num_users=serve_users, num_items=serve_items
        )
        counts = stream.phase_counts()
        print(f"stream: {len(stream)} requests over {traffic.duration_seconds:.0f}s "
              f"({counts['baseline']} baseline + {counts['flash']} flash), "
              f"digest {stream.digest()[:16]}…")

        # 4. Open-loop replay at 2x speed: arrivals follow the schedule,
        # never the target's back-pressure.
        report = ReplayHarness(gateway, stream, k=10, speed=2.0, concurrency=4).run()
        print(f"replayed in {report.wall_seconds:.1f}s wall "
              f"(max dispatch lag {report.max_dispatch_lag_seconds * 1000:.1f} ms)")
        print()
        print(f"{'phase':<10} {'req':>5} {'ok':>5} {'shed':>4} {'ddl':>4} {'err':>4} "
              f"{'p50ms':>7} {'p99ms':>7} {'offered':>8} {'achieved':>8}")
        for phase in report.phases:
            print(f"{phase.phase:<10} {phase.requests:>5} {phase.ok:>5} "
                  f"{phase.sheds:>4} {phase.deadline_exceeded:>4} {phase.errors:>4} "
                  f"{phase.ok_p50_ms:>7.2f} {phase.ok_p99_ms:>7.2f} "
                  f"{phase.offered_rps:>8.1f} {phase.achieved_rps:>8.1f}")
        assert report.ledger_reconciles
        print()
        print("ledger reconciles: requests == ok + sheds + deadline_exceeded + errors")


if __name__ == "__main__":
    main()
