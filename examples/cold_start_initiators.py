#!/usr/bin/env python
"""Scenario: recommending launch items for low-activity ("cold") initiators.

The paper motivates group buying as a user-acquisition channel: many
initiators are new users with few of their own interactions, and their
friends' preferences plus social influence carry most of the signal.  This
example splits the test users by their training-time activity and compares
GBGCN with a plain MF baseline on each segment, showing that the
social/multi-view machinery matters most exactly where the paper says it
does — for sparse initiators.

    python examples/cold_start_initiators.py
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List

import numpy as np

from repro.core import GBGCNConfig
from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.eval import LeaveOneOutEvaluator, rank_of_positive, recall_at_k
from repro.models import build_model, ModelSettings
from repro.training import TrainingSettings, train_gbgcn_with_pretraining, train_model
from repro.utils import configure_logging, format_table

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def per_segment_recall(model, split, evaluator, segments: Dict[str, List[int]], k: int = 10) -> Dict[str, float]:
    """Recall@k of ``model`` separately for each user segment."""
    model.prepare_for_evaluation()
    output: Dict[str, float] = {}
    for segment, users in segments.items():
        hits = []
        for user in users:
            behavior = split.test[user]
            candidates = evaluator.candidate_sampler.candidates_for(user, behavior.item)
            rank = rank_of_positive(model.rank_scores(user, candidates))
            hits.append(recall_at_k(rank, k))
        output[segment] = float(np.mean(hits)) if hits else 0.0
    return output


def main() -> None:
    configure_logging()
    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=70, num_items=30, num_behaviors=320, seed=17)
        if TINY
        else BeibeiLikeConfig(num_users=350, num_items=130, num_behaviors=1800, seed=17)
    )
    split = leave_one_out_split(dataset, seed=2)
    evaluator = LeaveOneOutEvaluator(split, num_negatives=20 if TINY else 199, seed=5)
    settings = (
        TrainingSettings(num_epochs=2, pretrain_epochs=1, batch_size=512, validate_every=1)
        if TINY
        else TrainingSettings(num_epochs=8, pretrain_epochs=3, batch_size=512, validate_every=2)
    )

    # Segment test users by how many behaviors they initiated in training.
    initiated = defaultdict(int)
    for behavior in split.train.behaviors:
        initiated[behavior.initiator] += 1
    segments: Dict[str, List[int]] = {"cold (<=2 launches)": [], "warm (>2 launches)": []}
    for user in split.test:
        key = "cold (<=2 launches)" if initiated[user] <= 2 else "warm (>2 launches)"
        segments[key].append(user)
    print({segment: len(users) for segment, users in segments.items()})

    # Baseline: plain MF on flattened interactions.
    mf = build_model("MF", split.train, ModelSettings(embedding_dim=16))
    train_model(mf, split.train, evaluator=evaluator, settings=settings)
    mf_recall = per_segment_recall(mf, split, evaluator, segments)

    # GBGCN with the full two-stage pipeline.
    gbgcn, _, _ = train_gbgcn_with_pretraining(
        split, config=GBGCNConfig(embedding_dim=16), settings=settings, evaluator=evaluator
    )
    gbgcn_recall = per_segment_recall(gbgcn, split, evaluator, segments)

    rows = []
    for segment in segments:
        base = mf_recall[segment]
        ours = gbgcn_recall[segment]
        lift = (ours - base) / base * 100 if base > 0 else float("inf")
        rows.append((segment, base, ours, f"{lift:+.1f}%"))
    print(format_table(["Initiator segment", "MF Recall@10", "GBGCN Recall@10", "Lift"], rows))


if __name__ == "__main__":
    main()
