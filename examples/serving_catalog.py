#!/usr/bin/env python
"""Multi-model serving: a directory of artifacts behind one catalog + gateway.

The single-model story (``examples/serving_topk.py``) trains one model and
cold-starts one store.  Production serves a *fleet* — several GBGCN
variants and baselines side by side for comparison or A/B rollout.  This
example walks the whole multi-model lifecycle:

1. train three registry models briefly and save each as a ``repro.persist``
   artifact into one catalog directory;
2. point a ``ModelCatalog`` at the directory — a header-only scan (no
   weights loaded), schema-fingerprint validation, lazy cold-start on first
   request, and an LRU residency budget;
3. serve named, A/B-split and mixed-model traffic through a
   ``ServingGateway`` (each model computes one dense block per batch);
4. hot-swap: republish one artifact (as ``ModelCheckpoint`` does with
   ``catalog_dir=``) and watch the catalog reload it, version-stamped;
5. run a ``CatalogWarmer`` so the *next* hot-swap is absorbed off the
   request path (zero in-request reload latency), and read the per-model
   ``MetricsRegistry`` snapshot — request counts, cold starts, latency
   percentiles — that the whole serving stack records as it runs.

Runs in well under a minute on a laptop CPU:

    python examples/serving_catalog.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    CatalogWarmer,
    EmbeddingStore,
    ModelCatalog,
    ServingGateway,
    TopKRecommender,
    TrafficSplit,
)
from repro.training import TrainingSettings, train_model
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"

CATALOG_MODELS = {"gbgcn": "GBGCN", "gbgcn-pretrain": "GBGCN-pretrain", "mf": "MF"}


def main() -> None:
    configure_logging()

    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=7)
        if TINY
        else BeibeiLikeConfig(num_users=300, num_items=120, num_behaviors=1600, seed=7)
    )
    split = leave_one_out_split(dataset, seed=1)
    settings = ModelSettings(embedding_dim=8 if TINY else 16)
    training = TrainingSettings(num_epochs=1 if TINY else 4, batch_size=512)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "fleet"

        # 1. Train each variant briefly and publish it into the catalog dir.
        for stem, model_name in CATALOG_MODELS.items():
            model = build_model(model_name, split.train, settings)
            train_model(model, split.train, settings=training)
            header = save_model(model, directory / f"{stem}.npz")
            size_kib = (directory / f"{stem}.npz").stat().st_size / 1024
            print(f"published {stem!r} ({header.model_name}, {size_kib:.0f} KiB)")
        print()

        # 2. The catalog scans headers only -- no weights are loaded yet.
        catalog = ModelCatalog(directory, split.train, serving_dataset=split.full, resident_budget=2)
        print(f"catalog: {catalog.names} (resident: {catalog.resident_names})")

        users = np.asarray(sorted(split.test), dtype=np.int64)[: 8 if TINY else 64]

        # First request per model pays the cold start, lazily.
        for name in catalog.names:
            seconds = catalog.warm(name)
            print(f"  cold-started {name!r} in {seconds * 1000:.1f} ms"
                  if seconds else f"  {name!r} already resident")
        print(f"resident after warm-up (budget 2, LRU): {catalog.resident_names}")
        print(f"stats: {catalog.stats.as_dict()}")
        print()

        # Catalog serving is bitwise-identical to a hand-wired per-model store.
        result = catalog.recommender("mf", k=10).recommend(users)
        reference = TopKRecommender(
            EmbeddingStore.from_artifact(directory / "mf.npz", split.train),
            k=10,
            dataset=split.full,
        ).recommend(users)
        assert np.array_equal(result.items, reference.items)
        print("catalog top-10 lists identical to a dedicated EmbeddingStore.from_artifact store")
        print()

        # 3. One gateway in front of the fleet.
        gateway = ServingGateway(catalog, default_model="gbgcn")
        gateway.top_k(users, k=10)  # unnamed traffic -> default model

        ab = TrafficSplit({"gbgcn": 0.8, "mf": 0.2}, seed=11)
        ab_result = gateway.top_k_split(ab, users, k=10)
        served = {name: ab_result.models.count(name) for name in sorted(set(ab_result.models))}
        print(f"A/B split {ab}: served {served}")

        mixed = gateway.top_k_mixed(
            [("mf", int(users[0])), ("gbgcn", int(users[1])), ("mf", int(users[2]))], k=5
        )
        print(f"mixed batch served by {mixed.models}; "
              f"request 0 got items {mixed.for_request(0).tolist()}")
        print(f"gateway request counts: {gateway.request_counts}")
        print()

        # 4. Hot-swap: republish 'mf' (atomic replace) and serve again.
        retrained = build_model("MF", split.train, settings, rng=np.random.default_rng(99))
        train_model(retrained, split.train, settings=training)
        save_model(retrained, directory / "mf.npz")
        swapped = catalog.recommender("mf", k=10).recommend(users)
        print(f"hot-swapped 'mf' (entry version {catalog.entry('mf').version}, "
              f"reloads {catalog.stats.reloads}); "
              f"lists changed: {not np.array_equal(swapped.items, result.items)}")
        print()

        # 5. Background warming: the next republish is absorbed by the
        # warmer cycle, so no request pays the reload.  (run_once() is the
        # deterministic form; in a server you'd leave the context manager
        # running: `with CatalogWarmer(catalog, interval_seconds=5.0): ...`)
        warmer = CatalogWarmer(catalog, names=["mf", "gbgcn"])
        retrained_again = build_model("MF", split.train, settings, rng=np.random.default_rng(7))
        train_model(retrained_again, split.train, settings=training)
        save_model(retrained_again, directory / "mf.npz")
        warmer.run_once()                       # swap taken off the request path
        reloads_before_request = catalog.stats.reloads
        catalog.recommender("mf", k=10).recommend(users)   # plain residency hit
        print(f"warmer absorbed the republish (version {catalog.entry('mf').version}); "
              f"the request itself reloaded nothing: "
              f"{catalog.stats.reloads == reloads_before_request}")

        # Per-model observability, collected as the fleet served all along.
        snapshot = catalog.metrics.snapshot()
        for name in sorted(snapshot["models"]):
            model = snapshot["models"][name]
            print(f"  metrics[{name}]: requests={model['requests']} "
                  f"rows={model['rows_served']} cold_starts={model['cold_starts']} "
                  f"reloads={model['reloads']} "
                  f"p99={model['request_latency']['p99'] * 1000:.2f} ms")
        print(f"totals: {snapshot['totals']}")


if __name__ == "__main__":
    main()
