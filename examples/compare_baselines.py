#!/usr/bin/env python
"""Compare GBGCN against the paper's baseline families on one workload.

This is a miniature Table III: it trains a collaborative-filtering model
(MF), a social recommender (DiffNet), a group recommender (AGREE), the
group-buying baseline (GBMF) and GBGCN on the same synthetic dataset and
prints Recall@K / NDCG@K for each, showing the ordering the paper reports
(group-buying-aware models on top, GBGCN first).

    python examples/compare_baselines.py
"""

from __future__ import annotations

import os

from repro.experiments import ExperimentConfig, prepare_workload, run_table3
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()
    config = ExperimentConfig.tiny() if TINY else ExperimentConfig.quick().scaled_epochs(8)
    workload = prepare_workload(config)
    result = run_table3(
        workload=workload,
        model_names=["MF", "DiffNet", "AGREE", "GBMF", "GBGCN"],
    )
    print(result.format())
    print()
    best = result.best_baseline("Recall@10")
    print(f"Best baseline by Recall@10: {best}")
    print(f"GBGCN improvement over it: {result.improvements()['Recall@10']:.2f}%")
    p_value = result.significance_p_value("NDCG@10")
    if p_value is not None:
        print(f"Paired t-test p-value (NDCG@10, GBGCN vs best baseline): {p_value:.4f}")


if __name__ == "__main__":
    main()
