#!/usr/bin/env python
"""Scenario: tuning the role coefficient alpha and the regularizer by grid search.

The paper tunes every method on the validation set (Section IV-A2/IV-B2):
alpha is searched in 0.1..0.9, the regularization coefficient over a log
grid, and the best validation configuration is the one reported.  This
example reproduces that workflow end to end for GBMF — the intuitive
group-buying baseline — with :func:`repro.training.grid_search`, then
confirms the selected configuration on the test set and compares the best
and worst grid points.

    python examples/hyperparameter_search.py
"""

from __future__ import annotations

import os

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.eval import LeaveOneOutEvaluator, bootstrap_confidence_interval
from repro.models import ModelSettings, build_model
from repro.training import TrainingSettings, grid_search, train_model
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    # A compact workload so the whole grid trains in a couple of minutes.
    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=11)
        if TINY
        else BeibeiLikeConfig(num_users=300, num_items=120, num_behaviors=1600, seed=11)
    )
    split = leave_one_out_split(dataset, seed=2)
    evaluator = LeaveOneOutEvaluator(split, num_negatives=20 if TINY else 199, seed=5)
    training = TrainingSettings(num_epochs=1 if TINY else 6, batch_size=512)

    # 1. Search alpha (initiator vs. participants weight) and the L2 weight.
    grid = (
        {"alpha": [0.2, 0.9], "l2_weight": [1e-4]}
        if TINY
        else {"alpha": [0.2, 0.6, 0.9], "l2_weight": [1e-4, 1e-2]}
    )
    result = grid_search(
        "GBMF",
        split,
        grid,
        base_settings=ModelSettings(embedding_dim=16),
        training=training,
        evaluator=evaluator,
        selection_metric="Recall@10",
    )
    print("Validation results per configuration:")
    print(result.format())
    print()
    print(f"Best configuration: {result.best_parameters} (validation Recall@10={result.best_metric:.4f})")
    print()

    # 2. Retrain the best and the worst configuration and compare on the test set.
    ordered = sorted(result.entries, key=lambda entry: entry.metric("Recall@10"))
    for label, entry in (("worst", ordered[0]), ("best", ordered[-1])):
        settings = ModelSettings(embedding_dim=16, **entry.parameters)
        model = build_model("GBMF", split.train, settings=settings)
        train_model(model, split.train, settings=training)
        test = evaluator.evaluate_test(model)
        per_user_recall = (test.ranks < 10).astype(float)
        interval = bootstrap_confidence_interval(per_user_recall, seed=0)
        print(f"{label} grid point {entry.parameters}: test Recall@10 = {interval}")


if __name__ == "__main__":
    main()
