#!/usr/bin/env python
"""Multi-process serving: a WorkerPool of gateway processes over mmap artifacts.

The multi-model story (``examples/serving_catalog.py``) serves a fleet of
models from one process.  This example scales *out* instead of up:

1. train two registry models briefly and publish them in the mmap-able
   **dir layout** (``.npyd`` — one raw ``.npy`` per array plus
   ``header.json``), once directly and once via ``migrate_artifact`` from
   a plain ``.npz``;
2. start a ``WorkerPool`` of spawn-context worker processes, each hosting
   the full catalog + gateway stack over the same artifact directory —
   the dir layout loads with ``np.load(mmap_mode="r")``, so the workers
   share one page-cache copy of the weights;
3. serve single requests and a pipelined batch, and check the answers are
   bitwise identical to a single-process ``ServingGateway``;
4. SIGKILL a worker at a nasty moment and watch the pool respawn it with
   fresh queues — the survivor keeps serving throughout;
5. read fleet-wide metrics: per-worker snapshots carry raw histogram
   buckets, so the merged p50/p95/p99 are exactly what one observer of
   the union request stream would have recorded.

Runs in well under a minute on a laptop CPU:

    python examples/serving_workers.py
"""

from __future__ import annotations

import os
import signal
import tempfile
from pathlib import Path

import numpy as np

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, migrate_artifact, save_model
from repro.serving import ModelCatalog, ServingGateway, WorkerPool
from repro.training import TrainingSettings, train_model
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"

WORKERS = 2


def main() -> None:
    configure_logging()

    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=7)
        if TINY
        else BeibeiLikeConfig(num_users=300, num_items=120, num_behaviors=1600, seed=7)
    )
    split = leave_one_out_split(dataset, seed=1)
    settings = ModelSettings(embedding_dim=8 if TINY else 16)
    training = TrainingSettings(num_epochs=1 if TINY else 4, batch_size=512)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "fleet"

        # 1. Publish two models in the mmap-able dir layout.  'mf' goes
        # straight to .npyd; 'pop' shows the npz -> dir migration path.
        mf = build_model("MF", split.train, settings)
        train_model(mf, split.train, settings=training)
        save_model(mf, directory / "mf.npyd", layout=LAYOUT_DIR)

        pop = build_model("ItemPop", split.train, settings)
        save_model(pop, directory / "pop.npz")
        migrate_artifact(directory / "pop.npz", to_layout=LAYOUT_DIR)
        # migrate_artifact leaves the source untouched; retire the npz so
        # the catalog name 'pop' resolves to exactly one artifact.
        (directory / "pop.npz").unlink()
        for artifact in sorted(directory.iterdir()):
            print(f"published {artifact.name}")
        print()

        users = np.asarray(sorted(split.test), dtype=np.int64)[: 8 if TINY else 64]

        # Single-process reference for the parity check below.
        reference = ServingGateway(
            ModelCatalog(directory, split.train, default_k=10), default_model="mf"
        )

        # 2-3. Spawned workers each build this same stack; the pool
        # round-robins requests and pipelines batches across them.
        with WorkerPool(
            directory, split.train, workers=WORKERS, default_model="mf", default_k=10
        ) as pool:
            print(f"pool up: {pool.alive_workers} workers, models {sorted(pool.model_names)}")

            result = pool.top_k(users)
            assert result.items.tobytes() == reference.top_k(users).items.tobytes()
            print(f"top-10 via {WORKERS} processes identical to the in-process gateway")

            batches = [users[: len(users) // 2], users[len(users) // 2 :], users[:3]]
            results = pool.top_k_many(batches, k=5)
            for batch, res in zip(batches, results):
                assert res.items.tobytes() == reference.top_k(batch, k=5).items.tobytes()
            print(f"pipelined {len(batches)} batches, order preserved, parity held")

            named = pool.top_k(users[:4], model="pop", k=3)
            print(f"named routing: 'pop' served items {named.items[0].tolist()} for user "
                  f"{int(users[0])}")
            print()

            # 4. Crash one worker.  The pool notices the dead process,
            # discards its (possibly lock-wedged) queues, respawns, and
            # resubmits whatever that worker owned.
            victim = pool._handles[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            # Round-robin over every slot: the request that lands on the
            # dead slot triggers detection + respawn and is resubmitted.
            for _ in range(2 * WORKERS):
                assert pool.top_k(users).items.tobytes() == result.items.tobytes()
            print(f"SIGKILLed worker 0: pool respawned it (respawns={pool.respawns}), "
                  f"{pool.alive_workers}/{WORKERS} alive, answers unchanged")
            print()

            # 5. Fleet metrics: merged exactly from raw bucket counts.
            fleet = pool.fleet_metrics()
            totals = fleet["totals"]
            print(f"fleet metrics over {fleet['workers']} workers: "
                  f"{totals['requests']} requests, "
                  f"p99 request latency {totals['request_latency']['p99'] * 1000:.2f} ms")

        print()
        print("pool stopped; workers exited cleanly")


if __name__ == "__main__":
    main()
