#!/usr/bin/env python
"""Scenario: plugging a real group-buying log into the library.

The authors released their Beibei dump as text files; this example shows
the full round trip a practitioner would follow with their own data:

1. export behaviors and the social network in the simple TSV layout of
   :mod:`repro.data.io` (here we synthesize and save one to a temp dir);
2. load it back with :func:`repro.data.load_dataset`;
3. split, train GBGCN, evaluate, and persist the dataset for later runs.

    python examples/bring_your_own_dataset.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.core import GBGCNConfig
from repro.data import (
    BeibeiLikeConfig,
    compute_statistics,
    generate_dataset,
    leave_one_out_split,
    load_dataset,
    save_dataset,
)
from repro.eval import LeaveOneOutEvaluator
from repro.training import TrainingSettings, train_gbgcn_with_pretraining
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    # Stand-in for "your production export": any directory with meta.json,
    # behaviors.tsv and social.tsv in the documented format works.
    with tempfile.TemporaryDirectory() as tmp:
        export_dir = Path(tmp) / "my-groupbuying-export"
        original = generate_dataset(
            BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=3)
            if TINY
            else BeibeiLikeConfig(num_users=250, num_items=100, num_behaviors=1200, seed=3)
        )
        save_dataset(original, export_dir)
        print(f"Wrote example export to {export_dir} "
              f"({len(list(export_dir.iterdir()))} files)")

        dataset = load_dataset(export_dir)
        assert dataset.num_behaviors == original.num_behaviors
        print("Loaded dataset:")
        print(compute_statistics(dataset).format())
        print()

        split = leave_one_out_split(dataset, seed=4)
        evaluator = LeaveOneOutEvaluator(split, num_negatives=20 if TINY else 99, seed=6)
        settings = (
            TrainingSettings(num_epochs=2, pretrain_epochs=1, batch_size=512, validate_every=1)
            if TINY
            else TrainingSettings(num_epochs=6, pretrain_epochs=2, batch_size=512, validate_every=2)
        )
        model, _, _ = train_gbgcn_with_pretraining(
            split, config=GBGCNConfig(embedding_dim=16), settings=settings, evaluator=evaluator
        )
        metrics = evaluator.evaluate_test(model).metrics
        print("GBGCN on the loaded dataset:", {k: round(v, 4) for k, v in metrics.items()})


if __name__ == "__main__":
    main()
