#!/usr/bin/env python
"""Scenario: how sparse can the group-buying log get, and who drives success?

Two analyses around the paper's stated future work ("study the data
sparsity issue") and its second challenge ("complicated social influence"):

1. A data-sparsity study — MF vs. GBMF trained on 50% and 100% of the
   training behaviors while the test set and the social network stay fixed;
   friend-aware models should retain more of their quality because part of
   their signal lives in the (untouched) social graph.
2. A social-influence analysis of the raw log — per-initiator clinch rates,
   the correlation between an initiator's friend count and their clinch
   rate, and the overall invitation conversion rate.

    python examples/sparsity_and_influence.py
"""

from __future__ import annotations

import os

from repro.analysis import analyze_social_influence, run_sparsity_study
from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.eval import LeaveOneOutEvaluator
from repro.models import ModelSettings
from repro.training import TrainingSettings
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=21)
        if TINY
        else BeibeiLikeConfig(num_users=300, num_items=120, num_behaviors=1600, seed=21)
    )
    split = leave_one_out_split(dataset, seed=4)
    evaluator = LeaveOneOutEvaluator(split, num_negatives=20 if TINY else 199, seed=9)

    # 1. Sparsity study (the paper's future-work experiment).
    study = run_sparsity_study(
        split,
        evaluator,
        model_names=("MF", "GBMF"),
        fractions=(0.5, 1.0),
        model_settings=ModelSettings(embedding_dim=8 if TINY else 16),
        training=TrainingSettings(num_epochs=1 if TINY else 6, batch_size=512),
    )
    print("Recall@10 per training-set fraction:")
    print(study.format())
    for model_name in study.model_names():
        print(f"  {model_name}: {study.degradation(model_name):.1%} drop at the sparsest setting")
    print()

    # 2. Social-influence footprint of the raw log (no model involved).
    report = analyze_social_influence(split.full, min_launched=2)
    print("Social-influence analysis of the behavior log:")
    print(report.format())
    print()
    print(
        "Successful groups gather on average "
        f"{report.mean_participants_successful:.2f} participants vs. "
        f"{report.mean_participants_failed:.2f} for failed ones; "
        f"{report.invitation_conversion_rate:.0%} of invitations convert."
    )


if __name__ == "__main__":
    main()
