#!/usr/bin/env python
"""Serving example: train GBGCN, then answer top-K requests from an
:class:`~repro.serving.EmbeddingStore` at batch-scoring speed.

Demonstrates the four pieces the serving and persistence layers add:

1. ``EmbeddingStore`` — propagate once after training (kept consistent
   during training by its trainer callback), then serve every request from
   the cached embeddings;
2. ``TopKRecommender`` — batched top-K with observed-item exclusion via
   ``np.argpartition`` partial sort;
3. ``repro.persist`` model artifacts — save the trained model once, then
   cold-start an identical serving store from disk in a fresh process,
   with no training in-process;
4. the batched ``FullRankingEvaluator`` — identical metrics to the
   per-user reference loop, several times faster.

Runs in well under a minute on a laptop CPU:

    python examples/serving_topk.py
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import GBGCNConfig
from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.eval import FullRankingEvaluator, LeaveOneOutEvaluator
from repro.persist import save_model
from repro.serving import EmbeddingStore, TopKRecommender
from repro.training import TrainingSettings, train_gbgcn_with_pretraining
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    # 1. Data + a briefly trained GBGCN.
    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=7)
        if TINY
        else BeibeiLikeConfig(num_users=300, num_items=120, num_behaviors=1600, seed=7)
    )
    split = leave_one_out_split(dataset, seed=1)
    evaluator = LeaveOneOutEvaluator(split, num_negatives=20 if TINY else 199, seed=3)
    settings = (
        TrainingSettings(num_epochs=2, pretrain_epochs=1, batch_size=512, validate_every=1)
        if TINY
        else TrainingSettings(num_epochs=8, pretrain_epochs=4, batch_size=512, validate_every=2)
    )
    config = GBGCNConfig(embedding_dim=16, num_layers=2, alpha=0.6, beta=0.05)
    model, history, _ = train_gbgcn_with_pretraining(split, config=config, settings=settings, evaluator=evaluator)
    print(f"Trained GBGCN for {history.num_epochs} epochs (best epoch: {history.best_epoch})")

    # 2. Precompute the serving cache: one propagation, many requests.
    store = EmbeddingStore(model)
    started = time.perf_counter()
    store.refresh()
    print(f"Embedding store refreshed in {time.perf_counter() - started:.3f}s (version {store.version})")

    # 3. Serve top-10 recommendations for every test initiator in one batch.
    recommender = TopKRecommender(store, k=10, dataset=split.full)
    users = np.asarray(sorted(split.test), dtype=np.int64)
    started = time.perf_counter()
    result = recommender.recommend(users)
    elapsed = time.perf_counter() - started
    print(f"Served top-10 lists for {users.size} users in {elapsed * 1000:.1f} ms")

    first_user = int(users[0])
    print(f"Top-10 items for initiator {first_user}: {result.for_user(first_user).tolist()}")
    print(f"(Held-out item the user actually launched: {split.test[first_user].item})")
    print()

    # 4. Train once, serve anywhere: persist the model as a versioned
    #    artifact, then cold-start an identical serving store from disk —
    #    what a fresh serving process does instead of retraining.
    with tempfile.TemporaryDirectory() as artifact_dir:
        artifact_path = Path(artifact_dir) / "gbgcn.npz"
        save_model(model, artifact_path, dataset=split.train)
        print(f"Artifact written: {artifact_path.stat().st_size / 1024:.1f} KiB")

        started = time.perf_counter()
        cold_store = EmbeddingStore.from_artifact(artifact_path, split.train)
        cold_start_seconds = time.perf_counter() - started
        cold_result = TopKRecommender(cold_store, k=10, dataset=split.full).recommend(users)
        assert np.array_equal(cold_result.items, result.items)
        print(
            f"Cold-started serving from disk in {cold_start_seconds:.3f}s — "
            f"top-10 lists identical to the in-process model"
        )
    print()

    # 5. Batched full-ranking evaluation: same metrics as the per-user
    #    reference loop, several times faster.
    full_evaluator = FullRankingEvaluator(split, batch_size=256)
    started = time.perf_counter()
    batched = full_evaluator.evaluate_test(model)
    batched_seconds = time.perf_counter() - started
    started = time.perf_counter()
    reference = full_evaluator.evaluate_test_loop(model)
    loop_seconds = time.perf_counter() - started
    assert np.array_equal(batched.ranks, reference.ranks)
    print(
        f"Full-ranking evaluation: batched {batched_seconds:.3f}s vs per-user {loop_seconds:.3f}s "
        f"({loop_seconds / max(batched_seconds, 1e-9):.1f}x), identical metrics"
    )
    print("Recall@10 (full catalog):", round(batched.metrics["Recall@10"], 4))


if __name__ == "__main__":
    main()
