#!/usr/bin/env python
"""Resilient serving: deadlines, load shedding, breakers, degraded fallbacks.

``examples/serving_catalog.py`` shows the happy path — a fleet of models
behind one gateway.  Production also has a sad path: disks return EIO,
loaders stall, a bad artifact gets published.  This example wires a
``ResiliencePolicy`` into the same gateway and walks every failure mode
with the seeded fault-injection harness (``repro.serving.faults``), so
each degradation is reproducible on any machine:

1. deadlines — a request carries an end-to-end budget; an expired budget
   raises a typed ``DeadlineExceededError`` instead of serving late;
2. load shedding — when the in-flight budget is full, new work is
   refused *immediately* with ``OverloadedError`` (no unbounded queue);
3. circuit breaker + stale fallback — injected primary faults trip the
   per-model breaker; requests degrade to the last-good resident copy
   instead of hammering a broken loader;
4. fallback models — a gateway with no last-good copy degrades to a
   cheap popularity model from the policy's fallback chain;
5. recovery — the background warmer probes the open circuit off the
   request path and closes it once the model loads again;
6. the failure counters (sheds, deadline_exceeded, breaker_opens,
   fallbacks_served) that the metrics registry accumulated all along.

Runs in seconds on a laptop CPU:

    python examples/serving_resilience.py
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    CatalogWarmer,
    DeadlineExceededError,
    FaultPlan,
    FaultRule,
    ModelCatalog,
    OverloadedError,
    ResiliencePolicy,
    ServingGateway,
    inject,
)
from repro.training import TrainingSettings, train_model
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=7)
        if TINY
        else BeibeiLikeConfig(num_users=240, num_items=100, num_behaviors=1200, seed=7)
    )
    split = leave_one_out_split(dataset, seed=1)
    settings = ModelSettings(embedding_dim=8 if TINY else 16)
    users = np.arange(0, 8 if TINY else 32, dtype=np.int64)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "fleet"

        # The primary (a trained MF) and a cheap degraded fallback (ItemPop).
        primary = build_model("MF", split.train, settings)
        train_model(primary, split.train, settings=TrainingSettings(num_epochs=1, batch_size=512))
        save_model(primary, directory / "mf.npz")
        save_model(build_model("ItemPop", split.train), directory / "itempop.npz")

        policy = ResiliencePolicy(
            deadline_seconds=5.0,          # default end-to-end budget per request
            max_inflight=2,                # gateway-wide admission budget
            breaker_failure_threshold=3,   # consecutive model faults before opening
            breaker_reset_seconds=0.2,     # half-open probe delay
            serve_stale_on_failure=True,   # degrade to the last-good resident copy
            fallback_models=("itempop",),  # then to the popularity model
        )
        catalog = ModelCatalog(directory, split.train, serving_dataset=split.full)
        gateway = ServingGateway(catalog, default_model="mf", policy=policy)

        # 1. Deadlines.  A healthy request under a generous budget serves
        # normally; an exhausted budget fails typed instead of serving late.
        result = gateway.top_k(users, k=5, deadline=2.0)
        print(f"healthy serve under a 2 s deadline: {result.items.shape} items, "
              f"user 0 -> {result.items[0].tolist()}")
        try:
            gateway.top_k(users, k=5, deadline=0.0)
        except DeadlineExceededError as error:
            print(f"exhausted budget fails typed: {type(error).__name__}: {error}")
        print()

        # 2. Load shedding.  Fill the admission budget (stand-in for two
        # requests currently being scored on other threads) and watch the
        # next request get refused immediately -- no queueing, no waiting.
        releases = [gateway.resilience.admission.acquire("mf") for _ in range(2)]
        try:
            gateway.top_k(users, k=5)
        except OverloadedError as error:
            print(f"budget full -> typed shed: {type(error).__name__}: {error}")
        finally:
            for release in releases:
                release()
        print(f"budget released; serving again: {gateway.top_k(users, k=5).items.shape}")
        print()

        # 3. Circuit breaker + stale fallback.  Inject a permanent fault in
        # front of the primary's scoring path (seeded, deterministic).  The
        # gateway degrades each request to the last-good resident copy; after
        # `breaker_failure_threshold` consecutive faults the breaker opens
        # and the broken primary is not even attempted any more.
        plan = FaultPlan([FaultRule("gateway.score", match="mf", count=None)], seed=42)
        with inject(plan):
            for i in range(5):
                degraded = gateway.top_k(users, k=5)
                assert np.array_equal(degraded.items, result.items), "stale copy is byte-identical"
            breaker = gateway.resilience.breaker("mf")
            print(f"5 requests against a broken primary: all served stale "
                  f"(byte-identical), breaker now {breaker.state!r}")
            print(f"primary attempts while injected: {plan.calls['gateway.score']} "
                  f"(breaker short-circuits after {policy.breaker_failure_threshold} faults)")
        print()

        # 4. Fallback models.  A *fresh* gateway has no last-good copy to
        # serve stale from -- the policy's fallback chain degrades it to the
        # cheap popularity model instead.
        cold_gateway = ServingGateway(
            ModelCatalog(directory, split.train, serving_dataset=split.full),
            default_model="mf",
            policy=policy,
        )
        with inject(FaultPlan([FaultRule("catalog.cold_start", match="mf", count=None)])):
            fallback = cold_gateway.top_k(users, k=5)
        snap = cold_gateway.metrics.snapshot()
        print(f"cold gateway, broken primary -> fallback chain served "
              f"{snap['models']['itempop']['requests']} request(s) via 'itempop' "
              f"(fallbacks_served={snap['models']['mf']['fallbacks_served']}); "
              f"user 0 -> {fallback.items[0].tolist()}")
        print()

        # 5. Recovery.  The fault is gone; after the reset delay the warmer
        # probes the open circuit off the request path and closes it.
        time.sleep(policy.breaker_reset_seconds + 0.05)
        warmer = CatalogWarmer(catalog, resilience=gateway.resilience)
        warmer.run_once()
        print(f"warmer probe results: {warmer.last_probe_results}; "
              f"breaker now {gateway.resilience.breaker('mf').state!r}")
        recovered = gateway.top_k(users, k=5)
        print(f"primary serving again, byte-identical to the pre-fault lists: "
              f"{np.array_equal(recovered.items, result.items)}")
        print()

        # 6. The failure ledger the registry kept while all of this ran.
        totals = gateway.metrics.snapshot()["totals"]
        print("failure counters (primary gateway):")
        for key in ("requests", "sheds", "deadline_exceeded", "breaker_opens",
                    "fallbacks_served", "errors"):
            print(f"  {key:18s} {totals[key]}")


if __name__ == "__main__":
    main()
