#!/usr/bin/env python
"""Quickstart: train GBGCN on a synthetic group-buying dataset and get
recommendations for one initiator.

Runs in well under a minute on a laptop CPU:

    python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro.core import GBGCNConfig
from repro.data import BeibeiLikeConfig, compute_statistics, generate_dataset, leave_one_out_split
from repro.eval import LeaveOneOutEvaluator
from repro.training import TrainingSettings, train_gbgcn_with_pretraining
from repro.utils import configure_logging

#: ``REPRO_EXAMPLE_SCALE=tiny`` shrinks every example to smoke-test size
#: (used by tests/test_examples_smoke.py); the default is demo-sized.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    configure_logging()

    # 1. Generate a Beibei-like group-buying dataset (users, items, social
    #    network, launch/join behaviors with success thresholds).
    dataset = generate_dataset(
        BeibeiLikeConfig(num_users=60, num_items=30, num_behaviors=280, seed=7)
        if TINY
        else BeibeiLikeConfig(num_users=300, num_items=120, num_behaviors=1600, seed=7)
    )
    print("Dataset statistics (Table II format):")
    print(compute_statistics(dataset).format())
    print()

    # 2. Leave-one-out split and evaluation protocol (999 negatives is the
    #    paper's setting; 199 keeps the quickstart snappy).
    split = leave_one_out_split(dataset, seed=1)
    evaluator = LeaveOneOutEvaluator(split, num_negatives=20 if TINY else 199, seed=3)

    # 3. Two-stage training: Adam pre-training of raw embeddings, then SGD
    #    fine-tuning of the full multi-view GCN (Section III-C of the paper).
    settings = (
        TrainingSettings(num_epochs=2, pretrain_epochs=1, batch_size=512, validate_every=1)
        if TINY
        else TrainingSettings(num_epochs=10, pretrain_epochs=4, batch_size=512, validate_every=2)
    )
    config = GBGCNConfig(embedding_dim=16, num_layers=2, alpha=0.6, beta=0.05)
    model, history, _ = train_gbgcn_with_pretraining(split, config=config, settings=settings, evaluator=evaluator)
    print(f"Trained GBGCN for {history.num_epochs} epochs; best validation epoch: {history.best_epoch}")

    # 4. Evaluate with the leave-one-out protocol.
    result = evaluator.evaluate_test(model)
    print("Test metrics:", {name: round(value, 4) for name, value in result.metrics.items()})
    print()

    # 5. Produce a top-10 recommendation list for one test initiator via the
    #    serving layer (cached embeddings + argpartition partial sort; see
    #    examples/serving_topk.py for the full serving walkthrough).
    from repro.serving import EmbeddingStore, TopKRecommender

    recommender = TopKRecommender(EmbeddingStore(model), k=10, exclude_observed=False)
    user = next(iter(split.test))
    top_items = recommender.recommend_user(user)
    print(f"Top-10 items to recommend to initiator {user}: {top_items.tolist()}")
    print(f"(Held-out item the user actually launched: {split.test[user].item})")


if __name__ == "__main__":
    main()
