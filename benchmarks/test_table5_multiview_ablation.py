"""Benchmark: regenerate Table V (impact of the multi-view design)."""

from repro.experiments import run_table5


def test_table5_multiview_ablation(benchmark, workload):
    result = benchmark.pedantic(lambda: run_table5(workload=workload), rounds=1, iterations=1)
    print("\n" + result.format())
    metrics = result.metrics

    full = metrics["GBGCN"]
    pooled = metrics["Without Item and User Roles"]
    # The paper's Table V reports a consistent ~1% drop when pooling the
    # views.  At benchmark scale that gap sits inside run-to-run noise, so
    # the asserted shape is "pooling the views gives no meaningful gain".
    assert pooled["NDCG@10"] <= full["NDCG@10"] * 1.10 + 1e-9
    assert pooled["Recall@20"] <= full["Recall@20"] * 1.10 + 1e-9

    for variant in ("Without Item Roles", "Without User Roles"):
        benchmark.extra_info[f"{variant}_delta_ndcg10"] = round(
            result.relative_change(variant, "NDCG@10"), 2
        )
