"""Benchmark: regenerate Table IV (training/testing time per epoch).

The reproducible shape is the relative ordering: flattened CF/social models
are cheap per epoch, while the group and group-buying models (which iterate
over friends/participants) cost more, with GBGCN the most expensive trainer.
"""

from repro.experiments import run_table4


def test_table4_time_efficiency(benchmark, workload):
    result = benchmark.pedantic(lambda: run_table4(workload=workload), rounds=1, iterations=1)
    print("\n" + result.format())
    timings = result.timings

    cheap = min(timings[name].train_seconds_per_epoch for name in ("MF(oi)", "MF"))
    assert timings["GBGCN"].train_seconds_per_epoch > cheap
    assert timings["GBMF"].train_seconds_per_epoch > 0
    # GBGCN is the slowest (or ties for slowest) training method, as in the paper.
    slowest = max(timings.values(), key=lambda timing: timing.train_seconds_per_epoch)
    assert timings["GBGCN"].train_seconds_per_epoch >= 0.8 * slowest.train_seconds_per_epoch

    for name, timing in timings.items():
        benchmark.extra_info[f"{name}_train_s"] = round(timing.train_seconds_per_epoch, 4)
