"""Benchmark: regenerate Table IV (training/testing time per epoch).

The reproducible shape is the relative ordering: flattened CF/social models
are cheap per epoch, while the group and group-buying models (which iterate
over friends/participants) cost more, with GBGCN the most expensive trainer.

On top of the paper's table, this benchmark records the serving-layer
numbers the batched scoring engine enables: end-to-end top-K latency for a
block of users served from an :class:`~repro.serving.EmbeddingStore`.
"""

import time

import numpy as np

from repro.experiments import run_table4
from repro.models import build_model
from repro.serving import EmbeddingStore, TopKRecommender


def test_table4_time_efficiency(benchmark, workload):
    result = benchmark.pedantic(lambda: run_table4(workload=workload), rounds=1, iterations=1)
    print("\n" + result.format())
    timings = result.timings

    cheap = min(timings[name].train_seconds_per_epoch for name in ("MF(oi)", "MF"))
    assert timings["GBGCN"].train_seconds_per_epoch > cheap
    assert timings["GBMF"].train_seconds_per_epoch > 0
    # GBGCN is the slowest (or ties for slowest) training method, as in the paper.
    slowest = max(timings.values(), key=lambda timing: timing.train_seconds_per_epoch)
    assert timings["GBGCN"].train_seconds_per_epoch >= 0.8 * slowest.train_seconds_per_epoch

    for name, timing in timings.items():
        benchmark.extra_info[f"{name}_train_s"] = round(timing.train_seconds_per_epoch, 4)


def test_serving_topk_latency_recorded(benchmark, workload):
    """Batched top-K serving over the cached GBGCN embeddings.

    Records how long one propagate-and-cache refresh takes and the amortized
    latency of answering a full block of test users from the cache.
    """
    split = workload.split
    model = build_model("GBGCN", split.train, workload.config.model_settings)
    store = EmbeddingStore(model)

    started = time.perf_counter()
    store.refresh()
    refresh_seconds = time.perf_counter() - started

    recommender = TopKRecommender(store, k=10, dataset=split.full)
    users = np.asarray(sorted(split.test), dtype=np.int64)

    result = benchmark.pedantic(lambda: recommender.recommend(users), rounds=3, iterations=1)
    assert result.items.shape == (users.size, 10)

    benchmark.extra_info["store_refresh_s"] = round(refresh_seconds, 4)
    benchmark.extra_info["topk_users"] = int(users.size)
