"""Benchmark: regenerate Figure 6 (t-SNE projection of the two views)."""

from repro.analysis.tsne import TSNEConfig
from repro.experiments import run_figure6


def test_figure6_tsne_projection(benchmark, workload):
    result = benchmark.pedantic(
        lambda: run_figure6(
            workload=workload,
            num_users=120,
            num_items=120,
            tsne_config=TSNEConfig(num_iterations=150, perplexity=15.0),
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    projections = result.projections
    assert projections["user_initiator"].shape[1] == 2
    assert projections["item_participant"].shape[1] == 2
    # The projection must produce finite, non-degenerate coordinates and a
    # measurable separation score (the paper reports visible separation).
    assert result.user_separation() >= 0.0
    assert result.item_separation() >= 0.0
    benchmark.extra_info["user_view_separation"] = round(result.user_separation(), 3)
    benchmark.extra_info["item_view_separation"] = round(result.item_separation(), 3)
