"""Training-throughput benchmark for the row-sparse gradient engine.

Times seconds-per-epoch for GBGCN (SGD fine-tune), GBGCN-pretrain (Adam,
the paper's first training stage), MF and LightGCN at the repo's 2000-user
benchmark scale, and writes ``BENCH_training.json`` at the repo root — the
perf-trajectory record for the training path (the serving trajectory lives
in ``test_serving_latency.py``).

Two workload shapes, both 2000 users / 10000 behaviors / batch 512 /
``embedding_dim=32`` (the paper's Section IV-A setting):

* ``long-tail``  — 15000 items: a realistic catalog where a mini-batch
  touches a few hundred embedding rows out of many thousands.  This is the
  shape the sparse engine targets (the dense path paid a full-table zeros +
  ``np.add.at`` per lookup and a full-table optimizer step per batch).
* ``dense-catalog`` — 1500 items: the serving-bench shape of PR 1/2, where
  nearly every row is touched every batch — the *worst* case for sparsity,
  kept to show the engine never regresses.

The recorded pre-change baseline (seed engine, commit 39fc887) was measured
on the same machine as the first checked-in ``BENCH_training.json``; the
headline there is GBGCN 5.82 -> 1.59 s/epoch (3.7x) and MF 0.274 -> 0.067
(4.1x) on the long-tail shape.  Cross-machine runs should compare their own
dense-vs-sparse engine numbers (both are measured each run); the
pre-change-baseline speedup assertion is only enforced when
``REPRO_BENCH_COMPARE_BASELINE=1``.

Marked ``slow``: set ``REPRO_RUN_SLOW=1`` to run.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.autograd import RowSparseGrad, use_dense_grads
from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.models import ModelSettings, build_model
from repro.optim import SGD, Adam
from repro.training.factory import build_batch_iterator
from repro.training.trainer import Trainer

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_training.json"

EMBEDDING_DIM = 32
BATCH_SIZE = 512
NUM_USERS = 2000
NUM_BEHAVIORS = 10000

#: Seconds/epoch of the pre-change engine (commit 39fc887), measured with
#: this exact harness (min of 3 epochs after 1 warm-up) on the machine that
#: produced the first checked-in BENCH_training.json.
PRE_CHANGE_BASELINE = {
    "long-tail": {"GBGCN": 5.819, "GBGCN-pretrain": 0.474, "MF": 0.274, "LightGCN": 0.790},
    "dense-catalog": {"GBGCN": 2.109, "GBGCN-pretrain": 0.225, "MF": 0.093, "LightGCN": 0.206},
}

WORKLOADS = {"long-tail": 15000, "dense-catalog": 1500}
MODELS = ["GBGCN", "GBGCN-pretrain", "MF", "LightGCN"]

_RESULTS = {}


def build_split(num_items, seed=11):
    rng = np.random.default_rng(seed)
    initiators = rng.integers(0, NUM_USERS, size=NUM_BEHAVIORS)
    items = rng.integers(0, num_items, size=NUM_BEHAVIORS)
    behaviors = []
    for initiator, item in zip(initiators, items):
        count = int(rng.integers(0, 3))
        participants = tuple(
            int(p) for p in rng.integers(0, NUM_USERS, size=count) if p != initiator
        )
        behaviors.append(
            GroupBuyingBehavior(
                initiator=int(initiator), item=int(item), participants=participants, threshold=1
            )
        )
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, NUM_USERS, size=(3 * NUM_USERS, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(NUM_USERS, num_items, behaviors, edges, name="train-bench")
    return leave_one_out_split(dataset, seed=1)


@pytest.fixture(scope="module", params=list(WORKLOADS), ids=list(WORKLOADS))
def workload_split(request):
    return request.param, build_split(WORKLOADS[request.param])


def make_trainer(name, train_dataset):
    model = build_model(name, train_dataset, ModelSettings(embedding_dim=EMBEDDING_DIM))
    iterator = build_batch_iterator(model, train_dataset, batch_size=BATCH_SIZE, seed=0)
    # The paper fine-tunes GBGCN with vanilla SGD and trains everything
    # else (including the pre-train stage) with Adam.
    if name == "GBGCN":
        optimizer = SGD(model.parameters(), lr=0.05)
    else:
        optimizer = Adam(model.parameters(), lr=0.01, lazy=True)
    return Trainer(model, optimizer, iterator)


def time_epochs(trainer, epochs=3):
    trainer.train_epoch()  # warm caches (transposes, iterators, buffers)
    timings = []
    for _ in range(epochs):
        start = time.perf_counter()
        trainer.train_epoch()
        timings.append(time.perf_counter() - start)
    return min(timings)


def rows_touched_ratio(trainer):
    """Max embedding-table gradient density over one training batch."""
    model = trainer.model
    batch = next(iter(trainer.batch_iterator))
    model.zero_grad()
    model.batch_loss(batch).backward()
    ratios = []
    for _, parameter in model.named_parameters():
        if parameter.grad is None or parameter.data.ndim != 2:
            continue
        if isinstance(parameter.grad, RowSparseGrad):
            ratios.append(parameter.grad.density)
        else:
            ratios.append(1.0)  # dense gradient: every row pays
    model.zero_grad()
    return max(ratios) if ratios else 0.0


@pytest.mark.slow
@pytest.mark.parametrize("model_name", MODELS)
def test_training_throughput(benchmark, workload_split, model_name):
    workload, split = workload_split
    trainer = make_trainer(model_name, split.train)

    sparse_seconds = time_epochs(trainer)
    with use_dense_grads():
        dense_seconds = time_epochs(make_trainer(model_name, split.train))
    ratio = rows_touched_ratio(trainer)

    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["rows_touched_vs_table_rows"] = round(ratio, 4)
    benchmark.extra_info["dense_engine_seconds_per_epoch"] = round(dense_seconds, 4)
    # One representative round through the already-warm trainer so the
    # pytest-benchmark table carries the headline number too.
    benchmark.pedantic(trainer.train_epoch, rounds=1, iterations=1)
    print(
        f"\nBENCH training {workload} {model_name}: {sparse_seconds:.3f}s/epoch "
        f"(dense engine {dense_seconds:.3f}s, rows-touched ratio {ratio:.2%})"
    )

    baseline = PRE_CHANGE_BASELINE[workload][model_name]
    _RESULTS.setdefault(workload, {})[model_name] = {
        "seconds_per_epoch": round(sparse_seconds, 4),
        "dense_engine_seconds_per_epoch": round(dense_seconds, 4),
        "pre_change_baseline_seconds_per_epoch": baseline,
        "speedup_vs_pre_change": round(baseline / sparse_seconds, 2),
        "rows_touched_vs_table_rows": round(ratio, 4),
    }

    # The sparse engine must never be a real regression over the dense
    # fallback on the same code (generous margin for machine noise).
    assert sparse_seconds <= dense_seconds * 1.35
    if os.environ.get("REPRO_BENCH_COMPARE_BASELINE") == "1":
        # Only meaningful on the machine that recorded the baseline.
        expected = {"GBGCN": 3.0, "GBGCN-pretrain": 3.0, "MF": 3.0, "LightGCN": 1.2}
        if workload == "long-tail":
            assert baseline / sparse_seconds >= expected[model_name]


@pytest.mark.slow
def test_optimizer_step_cost_is_sublinear_in_table_size(benchmark):
    """Sparse Adam step cost must track touched rows, not table rows.

    A 16x larger table with the same row-sparse gradient must not make the
    step meaningfully slower (the dense engine's step is O(table) and its
    moment state alone makes this ratio ~16x).
    """
    from repro.nn.module import Parameter

    rng = np.random.default_rng(0)
    rows = rng.integers(0, 12_500, size=512)
    values = rng.normal(size=(512, EMBEDDING_DIM))

    def step_seconds(table_rows, repeats=50):
        parameter = Parameter(np.zeros((table_rows, EMBEDDING_DIM)))
        optimizer = Adam([parameter], lr=0.01, lazy=True)
        grad = RowSparseGrad.from_scatter(parameter.data.shape, rows, values)
        parameter.grad = grad
        optimizer.step()  # warm up (state allocation)
        start = time.perf_counter()
        for _ in range(repeats):
            parameter.grad = grad
            optimizer.step()
        return (time.perf_counter() - start) / repeats

    small = step_seconds(12_500)
    large = step_seconds(200_000)
    benchmark.extra_info["step_seconds_12k_rows"] = round(small * 1e3, 4)
    benchmark.extra_info["step_seconds_200k_rows"] = round(large * 1e3, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\nBENCH sparse Adam step: {small * 1e3:.3f} ms @12.5k rows, "
        f"{large * 1e3:.3f} ms @200k rows (16x table, {large / small:.2f}x cost)"
    )
    _RESULTS["optimizer_step_scaling"] = {
        "touched_rows": 512,
        "step_ms_at_12500_rows": round(small * 1e3, 4),
        "step_ms_at_200000_rows": round(large * 1e3, 4),
        "cost_ratio_for_16x_table": round(large / small, 2),
    }
    assert large <= small * 4  # sub-linear: far below the 16x dense ratio


@pytest.mark.slow
def test_write_bench_training_json():
    """Persist the trajectory point (runs after the parametrized timings)."""
    if not _RESULTS:
        pytest.skip("no timings collected in this run")
    payload = {
        "schema": "repro-training-bench/v1",
        "config": {
            "num_users": NUM_USERS,
            "num_behaviors": NUM_BEHAVIORS,
            "batch_size": BATCH_SIZE,
            "embedding_dim": EMBEDDING_DIM,
            "epochs_timed": 3,
            "workload_items": WORKLOADS,
            "pre_change_baseline_commit": "39fc887",
        },
        "results": _RESULTS,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
