"""Ablation: uniform vs. popularity-weighted training negatives.

The paper samples negatives uniformly (Section III-C2).  This bench trains
the same MF model with both samplers and reports both scores; the expected
shape is that the two land in the same ballpark (the choice of negative
sampler is not where GBGCN's advantage comes from), documenting that the
reproduction's conclusions are not an artifact of the sampling scheme.
"""

import numpy as np

from repro.data import PopularityNegativeSampler, TrainingNegativeSampler, to_user_item_interactions
from repro.models import MatrixFactorization
from repro.optim import Adam
from repro.training import InteractionBatchIterator, Trainer


def _train_and_score(workload, sampler, seed=0):
    train = workload.split.train
    settings = workload.config.training
    model = MatrixFactorization(
        train.num_users,
        train.num_items,
        workload.config.model_settings.embedding_dim,
        rng=np.random.default_rng(seed),
    )
    conversion = to_user_item_interactions(train, mode="both")
    iterator = InteractionBatchIterator(conversion, sampler, batch_size=settings.batch_size, seed=seed)
    optimizer = Adam(model.parameters(), lr=settings.learning_rate)
    Trainer(model, optimizer, iterator, evaluator=None, grad_clip=settings.grad_clip).fit(
        settings.num_epochs
    )
    return workload.evaluator.evaluate_test(model).metrics


def test_ablation_negative_sampling(benchmark, workload):
    train = workload.split.train

    def run():
        uniform = _train_and_score(workload, TrainingNegativeSampler(train, seed=0))
        popularity = _train_and_score(workload, PopularityNegativeSampler(train, seed=0))
        return uniform, popularity

    uniform, popularity = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nuniform negatives:    Recall@10={uniform['Recall@10']:.4f}  NDCG@10={uniform['NDCG@10']:.4f}"
        f"\npopularity negatives: Recall@10={popularity['Recall@10']:.4f}  NDCG@10={popularity['NDCG@10']:.4f}"
    )
    benchmark.extra_info["recall10_uniform"] = round(uniform["Recall@10"], 4)
    benchmark.extra_info["recall10_popularity"] = round(popularity["Recall@10"], 4)

    # Both samplers must produce a model that learned something, and neither
    # should collapse (same ballpark: within a factor of two of each other).
    assert uniform["Recall@10"] > 0
    assert popularity["Recall@10"] > 0
    ratio = popularity["Recall@10"] / max(uniform["Recall@10"], 1e-9)
    assert 0.4 < ratio < 2.5
