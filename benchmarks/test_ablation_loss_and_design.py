"""Ablation benches for the design choices called out in DESIGN.md.

* double-pairwise loss vs. plain BPR (beta = 0);
* pre-training + fine-tuning vs. training the full model from scratch;
* number of in-view propagation layers L.
"""

from dataclasses import replace

import pytest

from repro.core import GBGCNConfig
from repro.training import train_gbgcn_with_pretraining


def _evaluate(workload, config, settings=None):
    settings = settings or workload.config.training
    model, _, _ = train_gbgcn_with_pretraining(
        workload.split, config=config, settings=settings, evaluator=workload.evaluator
    )
    return workload.evaluator.evaluate_test(model).metrics


def test_ablation_double_pairwise_loss(benchmark, workload):
    """beta = 0.05 (paper default) vs. beta = 0 (standard BPR)."""
    base = workload.config.model_settings.gbgcn_config()

    def run():
        with_loss = _evaluate(workload, replace(base, beta=0.05))
        without_loss = _evaluate(workload, replace(base, beta=0.0))
        return with_loss, without_loss

    with_loss, without_loss = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbeta=0.05: NDCG@10={with_loss['NDCG@10']:.4f}  beta=0: NDCG@10={without_loss['NDCG@10']:.4f}")
    benchmark.extra_info["ndcg10_double_pairwise"] = round(with_loss["NDCG@10"], 4)
    benchmark.extra_info["ndcg10_plain_bpr"] = round(without_loss["NDCG@10"], 4)
    # The fine-grained loss should not hurt; the paper reports it helps.
    assert with_loss["NDCG@10"] >= 0.85 * without_loss["NDCG@10"]


def test_ablation_pretraining(benchmark, workload):
    """Two-stage pipeline vs. fine-tuning from random initialization."""
    base = workload.config.model_settings.gbgcn_config()
    settings = workload.config.training

    def run():
        pretrained = _evaluate(workload, base, settings)
        from_scratch = _evaluate(workload, base, replace(settings, pretrain_epochs=0))
        return pretrained, from_scratch

    pretrained, from_scratch = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nwith pre-training: R@10={pretrained['Recall@10']:.4f}  from scratch: R@10={from_scratch['Recall@10']:.4f}")
    benchmark.extra_info["recall10_pretrained"] = round(pretrained["Recall@10"], 4)
    benchmark.extra_info["recall10_scratch"] = round(from_scratch["Recall@10"], 4)
    assert pretrained["Recall@10"] > 0


def test_ablation_propagation_depth(benchmark, workload):
    """L = 1 vs. L = 2 in-view propagation layers (the paper uses L = 2)."""
    base = workload.config.model_settings.gbgcn_config()

    def run():
        return {layers: _evaluate(workload, replace(base, num_layers=layers)) for layers in (1, 2)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + "  ".join(f"L={layers}: NDCG@10={metrics['NDCG@10']:.4f}" for layers, metrics in results.items()))
    for layers, metrics in results.items():
        benchmark.extra_info[f"ndcg10_L{layers}"] = round(metrics["NDCG@10"], 4)
    assert all(metrics["NDCG@10"] > 0 for metrics in results.values())
