"""Scenario engine at full scale: million-user population + SLO replay.

The standing stress rig ROADMAP item 3 calls for, in three measurements:

* **population generation** — a >= 1M-user :class:`SyntheticPopulation`
  generated in blocks; records wall time, peak RSS
  (``resource.ru_maxrss``) and a linearity check against a 250k-user run
  (block streaming must scale ~linearly — a quadratic path would blow
  the ratio out immediately);
* **gateway replay** — a diurnal + flash-burst :class:`RequestStream`
  replayed open-loop against a warm :class:`ServingGateway` over a
  training-sized slice of the population; per-phase p50/p95/p99, offered
  vs achieved req/s, and the burst-phase ok-p99 SLO gate
  (:data:`BURST_OK_P99_GATE_MS`) this file encodes and
  ``tests/serving/test_bench_schema.py`` re-validates against the
  committed artifact;
* **worker-pool replay** — the same traffic shape against a 2-worker
  :class:`WorkerPool` over dir-layout (mmap) artifacts, exercising the
  cross-process metrics merge under scheduled arrivals.

Results land in ``BENCH_serving.json`` under ``results.scenario``
(schema ``repro-serving-bench/v6``), co-preserving every other writer's
section.  Slow-gated: ``REPRO_RUN_SLOW=1``.
"""

import json
import resource
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import PopulationGenerator, ScenarioConfig
from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, save_model
from repro.serving import (
    FlashBurst,
    ModelCatalog,
    ReplayHarness,
    ServingGateway,
    TrafficConfig,
    TrafficModel,
    WorkerPool,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"
SCHEMA = "repro-serving-bench/v6"

#: The acceptance gate this benchmark encodes: during the flash burst,
#: successfully served requests must keep p99 under this bound.
BURST_OK_P99_GATE_MS = 50.0

POPULATION_CONFIG = ScenarioConfig.million_users()
LINEARITY_FACTOR = 0.25          # the smaller run the 1M timing is compared to
LINEARITY_SLACK = 3.0            # tolerated super-linearity (sort in dedup, noise)
PEAK_RSS_GATE_MIB = 6144.0       # 1M users must never need quadratic memory

#: Serving slice of the population (matches the other benchmarks' scale).
SERVE_USERS = 2000
SERVE_ITEMS = 1500
EMBEDDING_DIM = 16
TOP_K = 10

_RESULTS = {}


def _traffic(seed: int, base_rate: float, burst_multiplier: float) -> TrafficConfig:
    """The rig's canonical shape: one diurnal cycle + one flash burst."""
    return TrafficConfig(
        duration_seconds=20.0,
        base_rate_per_second=base_rate,
        diurnal_amplitude=0.3,
        diurnal_period_seconds=20.0,
        bursts=(
            FlashBurst(
                start_seconds=8.0,
                multiplier=burst_multiplier,
                rise_seconds=1.0,
                hold_seconds=4.0,
                decay_seconds=1.0,
                name="flash",
                hot_item_fraction=0.8,
                hot_items=16,
                deadline_seconds=0.20,
            ),
        ),
        deadline_seconds=0.5,
        item_exponent=POPULATION_CONFIG.item_exponent,
        seed=seed,
    )


@pytest.fixture(scope="module")
def population():
    return PopulationGenerator(POPULATION_CONFIG).generate()


@pytest.fixture(scope="module")
def serving_split(population):
    from repro.data import leave_one_out_split

    dataset = population.to_dataset(
        num_users=SERVE_USERS, num_items=SERVE_ITEMS, name="scenario-bench"
    )
    return leave_one_out_split(dataset, seed=1)


@pytest.mark.slow
@pytest.mark.scenario
def test_million_user_population_in_blocks(population):
    """>= 1M users generated block-streamed: linear-ish time, bounded RSS."""
    small_config = POPULATION_CONFIG.scaled(LINEARITY_FACTOR)
    started = time.perf_counter()
    PopulationGenerator(small_config).generate()
    small_seconds = time.perf_counter() - started

    generator = PopulationGenerator(POPULATION_CONFIG)
    started = time.perf_counter()
    full = generator.generate()
    full_seconds = time.perf_counter() - started
    peak_rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    assert full.num_users >= 1_000_000
    assert full.digest() == population.digest()  # block-streamed AND deterministic

    scale = 1.0 / LINEARITY_FACTOR
    linearity_ratio = full_seconds / (small_seconds * scale)
    print(
        f"\nBENCH scenario population: {full.num_users:,} users / "
        f"{full.num_edges:,} edges / {full.num_behaviors:,} behaviors in "
        f"{full_seconds:.1f}s ({generator.user_blocks_generated} user blocks), "
        f"peak RSS {peak_rss_mib:,.0f} MiB, linearity ratio "
        f"{linearity_ratio:.2f} vs the {int(LINEARITY_FACTOR * 100)}% run"
    )
    _RESULTS["population"] = {
        "num_users": full.num_users,
        "num_items": full.num_items,
        "num_behaviors": full.num_behaviors,
        "num_edges": full.num_edges,
        "block_size": POPULATION_CONFIG.block_size,
        "digest": full.digest(),
        "generate_seconds": round(full_seconds, 2),
        "small_run_seconds": round(small_seconds, 2),
        "linearity_ratio": round(linearity_ratio, 2),
        "peak_rss_mib": round(peak_rss_mib, 1),
        "rss_gate_mib": PEAK_RSS_GATE_MIB,
    }
    # No quadratic blowup: 4x the users must not cost much more than 4x the
    # time (the slack covers the O(E log E) edge dedup and timer noise) ...
    assert linearity_ratio < LINEARITY_SLACK, (
        f"1M-user generation is {linearity_ratio:.1f}x super-linear — "
        f"a quadratic path crept in"
    )
    # ... nor quadratic memory.
    assert peak_rss_mib < PEAK_RSS_GATE_MIB


@pytest.fixture(scope="module")
def gateway_setup(tmp_path_factory, serving_split):
    directory = tmp_path_factory.mktemp("scenario-gateway")
    settings = ModelSettings(embedding_dim=EMBEDDING_DIM)
    save_model(build_model("MF", serving_split.train, settings), directory / "mf.npz")
    catalog = ModelCatalog(directory, serving_split.train)
    gateway = ServingGateway(catalog, default_model="mf")
    gateway.top_k(np.array([0]), k=TOP_K)  # absorb the cold start
    return gateway


@pytest.mark.slow
@pytest.mark.scenario
def test_replay_against_gateway(gateway_setup):
    """Diurnal + flash-burst stream, open-loop, against the warm gateway."""
    stream = TrafficModel(_traffic(seed=71, base_rate=60.0, burst_multiplier=5.0)).generate(
        num_users=SERVE_USERS, num_items=SERVE_ITEMS
    )
    report = ReplayHarness(
        gateway_setup, stream, k=TOP_K, speed=2.0, concurrency=4
    ).run()

    baseline = report.phase("baseline")
    flash = report.phase("flash")
    print(
        f"\nBENCH scenario gateway replay: {report.total_requests:,} requests "
        f"in {report.wall_seconds:.1f}s — baseline {baseline.achieved_rps:,.0f}/"
        f"{baseline.offered_rps:,.0f} req/s (p99 {baseline.ok_p99_ms:.1f} ms), "
        f"flash {flash.achieved_rps:,.0f}/{flash.offered_rps:,.0f} req/s "
        f"(p99 {flash.ok_p99_ms:.1f} ms, gate {BURST_OK_P99_GATE_MS:.0f} ms)"
    )
    _RESULTS["gateway_replay"] = {
        "target": "gateway",
        "burst_ok_p99_gate_ms": BURST_OK_P99_GATE_MS,
        **report.as_bench_section(),
    }
    assert report.ledger_reconciles, "replay ledger must balance per phase"
    assert report.total_requests == len(stream)
    # The SLO gate the schema test re-validates against the committed file.
    assert flash.ok_p99_ms < BURST_OK_P99_GATE_MS, (
        f"burst ok-p99 {flash.ok_p99_ms:.1f} ms breaches the "
        f"{BURST_OK_P99_GATE_MS:.0f} ms gate"
    )
    # Open loop kept up: the gateway served what the stream offered.
    assert flash.achieved_rps > 0.5 * flash.offered_rps


@pytest.mark.slow
@pytest.mark.scenario
def test_replay_against_worker_pool(tmp_path_factory, serving_split):
    """The same traffic shape against a 2-worker pool (mmap dir artifacts)."""
    directory = tmp_path_factory.mktemp("scenario-pool")
    settings = ModelSettings(embedding_dim=EMBEDDING_DIM)
    save_model(
        build_model("MF", serving_split.train, settings),
        directory / "mf.npyd",
        layout=LAYOUT_DIR,
    )
    stream = TrafficModel(_traffic(seed=72, base_rate=25.0, burst_multiplier=4.0)).generate(
        num_users=SERVE_USERS, num_items=SERVE_ITEMS
    )
    with WorkerPool(
        directory,
        serving_split.train,
        workers=2,
        default_model="mf",
        default_k=TOP_K,
        request_timeout=120.0,
    ) as pool:
        pool.top_k(np.array([0]))  # absorb worker cold starts
        report = ReplayHarness(pool, stream, k=TOP_K, speed=2.0, concurrency=2).run()
        fleet = pool.fleet_metrics()

    flash = report.phase("flash")
    print(
        f"\nBENCH scenario pool replay (2 workers): {report.total_requests:,} "
        f"requests in {report.wall_seconds:.1f}s — flash "
        f"{flash.achieved_rps:,.0f}/{flash.offered_rps:,.0f} req/s "
        f"(p99 {flash.ok_p99_ms:.1f} ms), fleet served "
        f"{fleet['totals']['requests']} requests across {fleet['workers']} workers"
    )
    _RESULTS["worker_pool_replay"] = {
        "target": "worker_pool",
        "workers": 2,
        "fleet_requests": int(fleet["totals"]["requests"]),
        **report.as_bench_section(),
    }
    assert report.ledger_reconciles
    assert report.total_requests == len(stream)
    # Every ok request the replay counted was actually served by a worker.
    ok_total = sum(p.ok for p in report.phases)
    assert int(fleet["totals"]["requests"]) >= ok_total


@pytest.mark.slow
@pytest.mark.scenario
def test_write_scenario_into_bench_json():
    """Merge the section into BENCH_serving.json (runs after the replays)."""
    if not _RESULTS:
        pytest.skip("no scenario measurements collected in this run")
    payload = {"schema": SCHEMA, "config": {}, "results": {}}
    if OUTPUT_PATH.exists():
        try:
            payload = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            pass
    payload["schema"] = SCHEMA
    payload.setdefault("results", {})["scenario"] = {
        "population_config": {
            "num_users": POPULATION_CONFIG.num_users,
            "num_items": POPULATION_CONFIG.num_items,
            "num_behaviors": POPULATION_CONFIG.num_behaviors,
            "num_communities": POPULATION_CONFIG.num_communities,
            "seed": POPULATION_CONFIG.seed,
        },
        "serve_users": SERVE_USERS,
        "serve_items": SERVE_ITEMS,
        **_RESULTS,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
