"""Timing smoke test for the batched scoring engine and serving layer.

Marked ``slow`` and skipped by default (set ``REPRO_RUN_SLOW=1`` to run) so
regular BENCH runs can track the batched-vs-per-user speedup over time
without paying for it on every invocation.

The ranking-speedup test builds a serving-scale random dataset directly
(rather than through the behavior-model generator, which is much slower
than the measurement itself).  The asserted floor (2x) is deliberately far
below the typical measurement (>=5x, see CHANGES.md) so the test only
fails on a real regression, not on machine noise.
"""

import time

import numpy as np
import pytest

from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.eval import FullRankingEvaluator
from repro.models import ModelSettings, build_model
from repro.serving import EmbeddingStore, TopKRecommender


def _serving_scale_split(num_users=2000, num_items=1500, num_behaviors=10000, seed=11):
    """A quick-to-build random group-buying dataset at serving scale."""
    rng = np.random.default_rng(seed)
    initiators = rng.integers(0, num_users, size=num_behaviors)
    items = rng.integers(0, num_items, size=num_behaviors)
    behaviors = []
    for m, n in zip(initiators, items):
        num_participants = int(rng.integers(0, 3))
        participants = tuple(
            int(p) for p in rng.integers(0, num_users, size=num_participants) if p != m
        )
        behaviors.append(
            GroupBuyingBehavior(initiator=int(m), item=int(n), participants=participants, threshold=1)
        )
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, num_users, size=(3 * num_users, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(num_users, num_items, behaviors, edges, name="serving-bench")
    return leave_one_out_split(dataset, seed=1)


@pytest.fixture(scope="module")
def serving_split():
    return _serving_scale_split()


@pytest.mark.slow
@pytest.mark.parametrize("model_name", ["GBGCN", "MF"])
def test_batched_full_ranking_is_faster_than_per_user_loop(serving_split, model_name):
    split = serving_split
    model = build_model(model_name, split.train, ModelSettings(embedding_dim=16))
    evaluator = FullRankingEvaluator(split, batch_size=256)
    # Warm the one-off caches (propagated embeddings, observed-item CSR) so
    # the measurement compares the two scoring paths, not setup costs.
    model.prepare_for_evaluation()
    evaluator.evaluate_test(model)

    started = time.perf_counter()
    batched = evaluator.evaluate_test(model)
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference = evaluator.evaluate_test_loop(model)
    loop_seconds = time.perf_counter() - started

    assert np.array_equal(batched.ranks, reference.ranks)
    assert batched.metrics == reference.metrics
    speedup = loop_seconds / max(batched_seconds, 1e-9)
    print(
        f"\n{model_name} full-ranking speedup: {speedup:.1f}x "
        f"({loop_seconds:.3f}s -> {batched_seconds:.3f}s, {batched.num_users} users)"
    )
    assert speedup >= 2.0


@pytest.mark.slow
def test_topk_serving_latency_smoke(serving_split):
    split = serving_split
    model = build_model("GBGCN", split.train, ModelSettings(embedding_dim=16))
    store = EmbeddingStore(model)
    store.refresh()
    recommender = TopKRecommender(store, k=10, dataset=split.full)
    users = np.asarray(sorted(split.test), dtype=np.int64)

    started = time.perf_counter()
    result = recommender.recommend(users)
    serve_seconds = time.perf_counter() - started

    assert result.items.shape == (users.size, 10)
    per_user_ms = 1000.0 * serve_seconds / max(users.size, 1)
    print(f"\ntop-10 for {users.size} users in {serve_seconds:.3f}s ({per_user_ms:.3f} ms/user)")
    # Serving from the cache must be far cheaper than one propagation pass.
    assert per_user_ms < 100.0
