"""Benchmark: regenerate Table III (overall performance of all methods).

Absolute metric values differ from the paper (synthetic data, smaller
scale, CPU training budget); the asserted shape is the paper's headline:
the group-buying-aware models (GBGCN, GBMF) beat the strongest flattened
baselines, GBGCN beats GBMF, and MF with both roles beats MF(oi).
"""

from repro.experiments import run_table3


def test_table3_overall_performance(benchmark, workload):
    result = benchmark.pedantic(lambda: run_table3(workload=workload), rounds=1, iterations=1)
    print("\n" + result.format())
    metrics = result.metrics

    # MF with initiator+participant interactions must beat initiator-only MF.
    assert metrics["MF"]["Recall@10"] > metrics["MF(oi)"]["Recall@10"]

    # The group-buying-aware models must beat the plain CF baseline.  NDCG is
    # the strict comparison; Recall@10 at this scale (a few hundred test
    # users) moves by ~0.7% when a single user flips, so it gets a small
    # noise band instead of strict dominance.
    assert metrics["GBGCN"]["NDCG@10"] > metrics["MF"]["NDCG@10"]
    assert metrics["GBGCN"]["Recall@10"] >= 0.97 * metrics["MF"]["Recall@10"]
    assert metrics["GBMF"]["Recall@10"] > metrics["MF(oi)"]["Recall@10"]

    # GBGCN leads (or essentially ties) on the headline metrics.  The paper's
    # margin over the best baseline is 2.7-7.4%; at benchmark scale we allow a
    # small noise band rather than demanding strict dominance on every run.
    best_baseline = result.best_baseline("NDCG@10")
    assert metrics["GBGCN"]["NDCG@10"] >= 0.95 * metrics[best_baseline]["NDCG@10"]
    assert metrics["GBGCN"]["Recall@10"] >= 0.95 * max(
        values["Recall@10"] for name, values in metrics.items() if name != "GBGCN"
    )

    for metric, value in result.improvements().items():
        benchmark.extra_info[f"improvement_{metric}"] = round(value, 2)
