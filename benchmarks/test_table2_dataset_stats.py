"""Benchmark: regenerate Table II (dataset statistics)."""

from repro.experiments import run_table2


def test_table2_dataset_statistics(benchmark, workload):
    result = benchmark.pedantic(lambda: run_table2(workload=workload), rounds=1, iterations=1)
    print("\n" + result.format())
    stats = result.statistics
    # Shape checks mirroring the paper's dataset: most behaviors succeed,
    # but a substantial failed minority exists (it feeds the loss).
    assert stats.num_successful > stats.num_failed > 0
    assert 0.5 < stats.success_ratio < 0.98
    benchmark.extra_info["success_ratio"] = round(stats.success_ratio, 4)
    benchmark.extra_info["behaviors"] = stats.num_behaviors
