"""Benchmark: regenerate Figure 5 (cross-view cosine-similarity distributions)."""

from repro.experiments import run_figure5


def test_figure5_embedding_similarity(benchmark, workload):
    result = benchmark.pedantic(lambda: run_figure5(workload=workload), rounds=1, iterations=1)
    print("\n" + result.format())
    distributions = result.distributions

    for key, distribution in distributions.items():
        assert distribution.similarities.size > 0
        assert -1.0 - 1e-9 <= distribution.mean <= 1.0 + 1e-9
        pdf = distribution.pdf()
        assert pdf["density"].shape == pdf["x"].shape
        benchmark.extra_info[f"{key}_mean"] = round(distribution.mean, 4)

    # Figure 5's core qualitative claim: in-view item embeddings stay more
    # aligned across the two views than in-view user embeddings.
    assert distributions["item_in_view"].mean >= distributions["user_in_view"].mean - 0.05
