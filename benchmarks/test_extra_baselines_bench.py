"""Benchmark: reference baselines beyond Table III (ItemPop, ItemKNN, LightGCN).

These rows extend Table III with the standard sanity checks: a personalized
model must beat raw popularity, and LightGCN (the propagation scheme
GBGCN's in-view layers are based on) locates how much of GBGCN's quality
comes from plain linear propagation versus the multi-view design.
"""

from repro.models import build_model
from repro.training import train_model
from repro.utils.tables import format_table


def test_extra_baselines(benchmark, workload):
    names = ["ItemPop", "ItemKNN", "LightGCN"]

    def run():
        metrics = {}
        for name in names:
            model = build_model(name, workload.split.train, settings=workload.config.model_settings)
            if model.num_parameters() > 0:
                train_model(
                    model, workload.split.train, evaluator=None, settings=workload.config.training
                )
            metrics[name] = workload.evaluator.evaluate_test(model).metrics
        return metrics

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Method", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"]
    rows = [
        [name, values["Recall@10"], values["Recall@20"], values["NDCG@10"], values["NDCG@20"]]
        for name, values in metrics.items()
    ]
    print("\n" + format_table(headers, rows))

    for name, values in metrics.items():
        benchmark.extra_info[f"recall10_{name}"] = round(values["Recall@10"], 4)

    # Every extra baseline produces sane metrics, and the trained/memory-based
    # personalized models beat (or at least match) raw popularity.
    for values in metrics.values():
        assert 0.0 <= values["Recall@10"] <= 1.0
    personalized_best = max(metrics["ItemKNN"]["Recall@10"], metrics["LightGCN"]["Recall@10"])
    assert personalized_best >= metrics["ItemPop"]["Recall@10"] * 0.9
