"""Cost and SLO behavior of the resilience layer (`repro.serving.resilience`).

Two questions a production rollout asks before turning the policy on:

1. **What does it cost when nothing fails?**  Every request now pays a
   deadline stamp, an admission ticket, a breaker check and a fault-point
   probe.  The gate: the fully-armed happy path must stay within 10% of
   the bare gateway on the same workload (interleaved trials, medians, so
   machine drift cancels out).

2. **What does a request experience when things do fail?**  Under a
   seeded stall storm (`repro.serving.faults`), successful requests must
   keep their usual latency, and *failed* requests must come back as
   typed errors bounded by the fault itself — never an unbounded queue.
   The storm is driven through the scenario engine's
   ``repro.serving.loadgen.ReplayHarness`` (sequential: ``concurrency=1``
   preserves the exact stall-count/deadline-count identity).

Both measurements merge into the ``resilience`` section of
``BENCH_serving.json`` (schema ``repro-serving-bench/v6``), next to the
catalog, retrieval, worker-scaling and scenario sections the other slow
benchmarks maintain.  Marked ``slow``: set ``REPRO_RUN_SLOW=1`` to run.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    BASELINE_PHASE,
    FaultPlan,
    FaultRule,
    ModelCatalog,
    ReplayHarness,
    ResiliencePolicy,
    ServingGateway,
    TrafficConfig,
    TrafficModel,
    inject,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"
SCHEMA = "repro-serving-bench/v6"

EMBEDDING_DIM = 16
NUM_USERS = 2000
NUM_ITEMS = 1500
BATCH_USERS = 64
TOP_K = 10

# Overhead measurement: interleaved plain/resilient trials, median-of-N.
TRIALS = 7
REQUESTS_PER_TRIAL = 60
OVERHEAD_GATE_PCT = 10.0

# SLO measurement: seeded stall storm against a deadline, driven through
# the scenario engine's replay rig (~300 requests at the configured rate).
SLO_DURATION_SECONDS = 3.0
SLO_RATE_PER_SECOND = 100.0
STALL_SECONDS = 0.02
STALL_PROBABILITY = 0.25
DEADLINE_SECONDS = 0.01

_RESULTS = {}


def _serving_split(seed=11):
    rng = np.random.default_rng(seed)
    behaviors = [
        GroupBuyingBehavior(initiator=int(m), item=int(n), participants=(), threshold=1)
        for m, n in zip(
            rng.integers(0, NUM_USERS, size=8000), rng.integers(0, NUM_ITEMS, size=8000)
        )
    ]
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, NUM_USERS, size=(2 * NUM_USERS, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(NUM_USERS, NUM_ITEMS, behaviors, edges, name="resilience-bench")
    return leave_one_out_split(dataset, seed=1)


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    split = _serving_split()
    directory = tmp_path_factory.mktemp("resilience-bench")
    save_model(build_model("MF", split.train, ModelSettings(embedding_dim=EMBEDDING_DIM)),
               directory / "mf.npz")
    return directory, split


def _make_gateway(directory, split, policy):
    catalog = ModelCatalog(directory, split.train, serving_dataset=split.full)
    gateway = ServingGateway(catalog, default_model="mf", policy=policy)
    gateway.top_k(np.arange(BATCH_USERS), k=TOP_K)  # absorb the cold start
    return gateway


def _requests_per_second(gateway, rng):
    batches = [
        rng.integers(0, NUM_USERS, size=BATCH_USERS) for _ in range(REQUESTS_PER_TRIAL)
    ]
    started = time.perf_counter()
    for users in batches:
        gateway.top_k(users, k=TOP_K)
    return REQUESTS_PER_TRIAL / (time.perf_counter() - started)


@pytest.mark.slow
def test_happy_path_overhead_within_gate(serving_setup):
    """The fully-armed policy must cost < 10% on the no-failure path."""
    directory, split = serving_setup
    plain = _make_gateway(directory, split, policy=None)
    armed = _make_gateway(
        directory,
        split,
        ResiliencePolicy(
            deadline_seconds=5.0,
            max_inflight=64,
            breaker_failure_threshold=3,
            fallback_models=("mf",),
        ),
    )
    plain_rates, armed_rates = [], []
    for trial in range(TRIALS):
        rng = np.random.default_rng(1000 + trial)
        # Interleave (and alternate order) so drift hits both paths equally.
        first, second = (plain, armed) if trial % 2 == 0 else (armed, plain)
        rate_first = _requests_per_second(first, rng)
        rate_second = _requests_per_second(second, rng)
        plain_rate, armed_rate = (
            (rate_first, rate_second) if first is plain else (rate_second, rate_first)
        )
        plain_rates.append(plain_rate)
        armed_rates.append(armed_rate)

    plain_req_s = float(np.median(plain_rates))
    armed_req_s = float(np.median(armed_rates))
    overhead_pct = 100.0 * (plain_req_s / armed_req_s - 1.0)
    print(
        f"\nBENCH resilience overhead: {plain_req_s:,.0f} req/s bare vs "
        f"{armed_req_s:,.0f} req/s armed ({overhead_pct:+.1f}% overhead, "
        f"median of {TRIALS} interleaved trials)"
    )
    _RESULTS["overhead"] = {
        "batch_users": BATCH_USERS,
        "requests_per_trial": REQUESTS_PER_TRIAL,
        "trials": TRIALS,
        "plain_req_s": round(plain_req_s, 1),
        "resilient_req_s": round(armed_req_s, 1),
        "overhead_pct": round(overhead_pct, 2),
        "gate_pct": OVERHEAD_GATE_PCT,
    }
    assert overhead_pct < OVERHEAD_GATE_PCT, (
        f"resilience layer costs {overhead_pct:.1f}% on the happy path "
        f"(gate {OVERHEAD_GATE_PCT:.0f}%)"
    )


@pytest.mark.slow
def test_slo_under_stall_storm(serving_setup):
    """Under seeded stalls, failures are typed and bounded by the fault."""
    directory, split = serving_setup
    gateway = _make_gateway(
        directory,
        split,
        # Stalls are not model faults, so the breaker stays closed and this
        # measures the deadline behavior in isolation.
        ResiliencePolicy(deadline_seconds=DEADLINE_SECONDS),
    )
    plan = FaultPlan(
        [
            FaultRule(
                "gateway.score",
                kind="stall",
                seconds=STALL_SECONDS,
                probability=STALL_PROBABILITY,
                count=None,
            )
        ],
        seed=7,
    )
    # The storm workload is the shared scenario-engine rig, replayed
    # sequentially (concurrency=1): open-loop scheduling at 10x speed
    # degenerates to back-to-back requests, so — exactly like the hand
    # loop this replaces — every stalled request, and only those, must
    # fail its deadline typed.
    stream = TrafficModel(
        TrafficConfig(
            duration_seconds=SLO_DURATION_SECONDS,
            base_rate_per_second=SLO_RATE_PER_SECOND,
            diurnal_amplitude=0.0,
            seed=5,
        )
    ).generate(num_users=NUM_USERS, num_items=NUM_ITEMS)
    with inject(plan):
        report = ReplayHarness(gateway, stream, k=TOP_K, speed=10.0, concurrency=1).run()

    outcome = report.phase(BASELINE_PHASE)
    assert report.ledger_reconciles
    assert outcome.errors == 0 and outcome.sheds == 0, (
        "pure stalls must surface as typed deadline failures only"
    )
    assert outcome.deadline_exceeded > 0, "the storm must actually break some deadlines"
    assert plan.total_triggered("gateway.score", "stall") == outcome.deadline_exceeded, (
        "every stalled request, and only those, must fail its deadline typed"
    )
    failure_latency = report.failure_snapshot["models"][BASELINE_PHASE]["request_latency"]
    failure_p99 = float(failure_latency["p99"])
    print(
        f"\nBENCH resilience SLO: {outcome.ok} ok (p50 {outcome.ok_p50_ms:.2f} ms, "
        f"p99 {outcome.ok_p99_ms:.2f} ms), {outcome.deadline_exceeded} typed deadline "
        f"failures (p99 {failure_p99 * 1000:.2f} ms) under "
        f"{STALL_SECONDS * 1000:.0f} ms stalls at p={STALL_PROBABILITY}"
    )
    _RESULTS["slo_under_stalls"] = {
        "requests": outcome.requests,
        "deadline_ms": DEADLINE_SECONDS * 1000.0,
        "stall_ms": STALL_SECONDS * 1000.0,
        "stall_probability": STALL_PROBABILITY,
        "ok": outcome.ok,
        "deadline_exceeded": outcome.deadline_exceeded,
        "ok_p50_ms": round(outcome.ok_p50_ms, 3),
        "ok_p99_ms": round(outcome.ok_p99_ms, 3),
        "failure_p99_ms": round(failure_p99 * 1000, 3),
    }
    # Healthy requests keep their latency: an ok request never waits out a
    # stall (the stall *is* what converts a request into a typed failure).
    # Histogram percentiles overshoot their bucket by <= ~12%.
    assert outcome.ok_p99_ms < DEADLINE_SECONDS * 1000.0 * 1.13
    # A failed request is bounded by the injected fault + scoring, not by
    # queueing: degradation stays proportional to the failure itself.
    assert failure_p99 < (STALL_SECONDS + DEADLINE_SECONDS + 0.05) * 1.13


@pytest.mark.slow
def test_write_resilience_into_bench_json():
    """Merge the section into BENCH_serving.json (runs after the timings)."""
    if not _RESULTS:
        pytest.skip("no resilience timings collected in this run")
    payload = {"schema": SCHEMA, "config": {}, "results": {}}
    if OUTPUT_PATH.exists():
        try:
            payload = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            pass
    payload["schema"] = SCHEMA
    payload.setdefault("results", {})["resilience"] = {
        "embedding_dim": EMBEDDING_DIM,
        "num_users": NUM_USERS,
        "num_items": NUM_ITEMS,
        "model": "MF",
        **_RESULTS,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
