"""Multi-model catalog serving benchmark: cold-start latency + mixed traffic.

Writes ``BENCH_serving.json`` at the repo root — the perf-trajectory record
for the serving path (the training trajectory lives in
``BENCH_training.json``).  Two measurements over a three-model catalog
(GBGCN, GBGCN-pretrain, MF) at the repo's 2000-user serving scale:

* **cold-start latency** — ``ModelCatalog.warm`` per model (artifact load
  + one propagation), min of 3 cold starts each;
* **mixed-traffic throughput** — a deterministic scenario-engine stream
  (``repro.serving.loadgen.TrafficModel``) of single-user top-10 requests
  routed across all three models by weight, served in batches through
  ``ServingGateway.top_k_mixed`` (grouped: one dense block per model per
  batch) vs the naive per-request loop on the same stream;
* **metrics overhead** — the same grouped stream against a catalog with
  metrics collection enabled vs ``MetricsRegistry(enabled=False)``; the
  recorded overhead must stay a small fraction of grouped throughput;
* **warm vs cold request latency** — p50/p95/p99 of single-user requests
  against a warm (resident, ``CatalogWarmer``-maintained) catalog vs
  requests that pay the cold start in-line — the tail-latency cliff the
  background warmer exists to remove.

The grouped path must beat per-request serving by a wide margin; the
asserted floor (3x) is far below typical measurements so the test only
fails on a real regression.  Marked ``slow``: set ``REPRO_RUN_SLOW=1``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    CatalogWarmer,
    EmbeddingStore,
    MetricsRegistry,
    ModelCatalog,
    ServingGateway,
    TopKRecommender,
    TrafficConfig,
    TrafficModel,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"

NUM_USERS = 2000
NUM_ITEMS = 1500
NUM_BEHAVIORS = 10000
EMBEDDING_DIM = 16
TOP_K = 10
REQUEST_BATCH = 256
NUM_MIXED_REQUESTS = 4096

CATALOG_MODELS = {"gbgcn": "GBGCN", "gbgcn-pretrain": "GBGCN-pretrain", "mf": "MF"}
SPLIT_WEIGHTS = {"gbgcn": 0.6, "gbgcn-pretrain": 0.2, "mf": 0.2}

_RESULTS = {}


def _mixed_requests():
    """The shared scenario-engine stream, flattened to (model, user) pairs.

    Replaces the hand-rolled rng + sticky-split loop this benchmark used
    to build its workload with the deterministic
    :class:`~repro.serving.loadgen.TrafficModel` rig — same stream shape
    the replay benchmarks drive, here consumed closed-loop in grouped
    batches.
    """
    stream = TrafficModel(
        TrafficConfig(
            duration_seconds=10.0,
            base_rate_per_second=520.0,  # Poisson ~5200 >> the 4096 consumed
            diurnal_amplitude=0.2,
            diurnal_period_seconds=10.0,
            model_weights=tuple(sorted(SPLIT_WEIGHTS.items())),
            seed=3,
        )
    ).generate(num_users=NUM_USERS, num_items=NUM_ITEMS)
    assert len(stream) >= NUM_MIXED_REQUESTS
    return [
        (stream.model_name(index), int(stream.users[index]))
        for index in range(NUM_MIXED_REQUESTS)
    ]


def _serving_scale_split(seed=11):
    rng = np.random.default_rng(seed)
    initiators = rng.integers(0, NUM_USERS, size=NUM_BEHAVIORS)
    items = rng.integers(0, NUM_ITEMS, size=NUM_BEHAVIORS)
    behaviors = []
    for initiator, item in zip(initiators, items):
        count = int(rng.integers(0, 3))
        participants = tuple(
            int(p) for p in rng.integers(0, NUM_USERS, size=count) if p != initiator
        )
        behaviors.append(
            GroupBuyingBehavior(
                initiator=int(initiator), item=int(item), participants=participants, threshold=1
            )
        )
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, NUM_USERS, size=(3 * NUM_USERS, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(NUM_USERS, NUM_ITEMS, behaviors, edges, name="catalog-bench")
    return leave_one_out_split(dataset, seed=1)


@pytest.fixture(scope="module")
def catalog_setup(tmp_path_factory):
    split = _serving_scale_split()
    directory = tmp_path_factory.mktemp("catalog-bench")
    settings = ModelSettings(embedding_dim=EMBEDDING_DIM)
    for stem, model_name in CATALOG_MODELS.items():
        path = directory / f"{stem}.npz"
        save_model(build_model(model_name, split.train, settings), path)
        # Age the artifacts past the content-check grace window so the
        # timings measure steady-state serving (stat-only freshness checks),
        # not the brief just-published window where every access re-reads
        # the npz central directory.
        aged_ns = os.stat(path).st_mtime_ns - int(600 * 1e9)
        os.utime(path, ns=(aged_ns, aged_ns))
    return directory, split


@pytest.mark.slow
def test_cold_start_latency(catalog_setup):
    directory, split = catalog_setup
    catalog = ModelCatalog(directory, split.train)
    latencies = {}
    for name in catalog.names:
        samples = []
        for _ in range(3):
            catalog.evict(name)
            samples.append(catalog.warm(name))
        latencies[name] = min(samples)
        print(f"\nBENCH catalog cold start {name}: {latencies[name] * 1000:.1f} ms")
    artifact_kib = {
        name: round((directory / f"{name}.npz").stat().st_size / 1024, 1) for name in catalog.names
    }
    _RESULTS["cold_start"] = {
        name: {
            "seconds": round(seconds, 4),
            "artifact_kib": artifact_kib[name],
        }
        for name, seconds in latencies.items()
    }
    # Cold start must stay interactive (load + one propagation), far under
    # any retraining path; generous bound for machine noise.
    assert all(seconds < 30.0 for seconds in latencies.values())


@pytest.mark.slow
def test_mixed_traffic_throughput(catalog_setup):
    directory, split = catalog_setup
    catalog = ModelCatalog(directory, split.train)
    gateway = ServingGateway(catalog, default_model="gbgcn")
    requests = _mixed_requests()

    catalog.warm_all()  # measure steady-state routing, not cold starts

    started = time.perf_counter()
    batched_results = [
        gateway.top_k_mixed(requests[start : start + REQUEST_BATCH], k=TOP_K)
        for start in range(0, len(requests), REQUEST_BATCH)
    ]
    grouped_seconds = time.perf_counter() - started
    grouped_rps = len(requests) / grouped_seconds

    # The naive path: one recommend call per request (what serving without
    # the gateway's per-model grouping would do).  Timed on a slice and
    # scaled, to keep the benchmark quick.
    naive_slice = requests[:512]
    started = time.perf_counter()
    for name, user in naive_slice:
        catalog.recommender(name).recommend(np.asarray([user], dtype=np.int64), k=TOP_K)
    naive_seconds = (time.perf_counter() - started) * (len(requests) / len(naive_slice))
    naive_rps = len(requests) / naive_seconds

    # Parity: grouped rows match a dedicated per-model store, bitwise.
    sample = batched_results[0]
    for stem in CATALOG_MODELS:
        rows = np.asarray([i for i, name in enumerate(sample.models) if name == stem])
        if rows.size == 0:
            continue
        store = EmbeddingStore.from_artifact(directory / f"{stem}.npz", split.train)
        reference = TopKRecommender(store, k=TOP_K, dataset=split.train).recommend(
            sample.users[rows]
        )
        assert np.array_equal(sample.items[rows], reference.items)

    share = {
        name: sum(1 for model, _ in requests if model == name)
        for name in sorted(SPLIT_WEIGHTS)
    }
    print(
        f"\nBENCH mixed traffic: {grouped_rps:,.0f} req/s grouped vs "
        f"{naive_rps:,.0f} req/s per-request ({grouped_rps / naive_rps:.1f}x), "
        f"{len(requests)} requests, split {share}"
    )
    _RESULTS["mixed_traffic"] = {
        "num_requests": len(requests),
        "request_batch": REQUEST_BATCH,
        "top_k": TOP_K,
        "traffic_split": SPLIT_WEIGHTS,
        "requests_per_second_grouped": round(grouped_rps, 1),
        "requests_per_second_per_request_loop": round(naive_rps, 1),
        "grouped_speedup": round(grouped_rps / naive_rps, 2),
    }
    # Per-model gateway metrics for the grouped run (the observability the
    # fleet exports in production): requests, rows, latency percentiles.
    snapshot = gateway.metrics.snapshot()
    _RESULTS["gateway_metrics"] = {
        name: {
            "requests": model["requests"],
            "rows_served": model["rows_served"],
            "request_p50_ms": round(model["request_latency"]["p50"] * 1000, 3),
            "request_p99_ms": round(model["request_latency"]["p99"] * 1000, 3),
        }
        for name, model in snapshot["models"].items()
    }
    assert grouped_rps >= naive_rps * 3.0


@pytest.mark.slow
def test_metrics_collection_overhead(catalog_setup):
    """Metrics must cost a small fraction of grouped-batch throughput."""
    directory, split = catalog_setup
    requests = _mixed_requests()

    def make_gateway(metrics):
        catalog = ModelCatalog(directory, split.train, metrics=metrics)
        gateway = ServingGateway(catalog, default_model="gbgcn")
        catalog.warm_all()
        return gateway

    def one_trial(gateway):
        started = time.perf_counter()
        for start in range(0, len(requests), REQUEST_BATCH):
            gateway.top_k_mixed(requests[start : start + REQUEST_BATCH], k=TOP_K)
        return len(requests) / (time.perf_counter() - started)

    disabled_gateway = make_gateway(MetricsRegistry(enabled=False))
    enabled_gateway = make_gateway(MetricsRegistry(enabled=True))
    # Interleave the trials (after one untimed warm-up each) so run-order
    # cache/turbo bias cannot masquerade as — or hide — metrics overhead.
    one_trial(disabled_gateway), one_trial(enabled_gateway)
    rps_disabled = rps_enabled = 0.0
    for _ in range(3):
        rps_disabled = max(rps_disabled, one_trial(disabled_gateway))
        rps_enabled = max(rps_enabled, one_trial(enabled_gateway))
    overhead_pct = max(0.0, (rps_disabled - rps_enabled) / rps_disabled * 100.0)
    print(
        f"\nBENCH metrics overhead: {rps_enabled:,.0f} req/s with metrics vs "
        f"{rps_disabled:,.0f} req/s without ({overhead_pct:.2f}% overhead)"
    )
    _RESULTS["metrics_overhead"] = {
        "requests_per_second_metrics_enabled": round(rps_enabled, 1),
        "requests_per_second_metrics_disabled": round(rps_disabled, 1),
        "overhead_pct": round(overhead_pct, 2),
    }
    # The acceptance target is < 5%; the hard gate is looser so shared-CI
    # timer noise cannot flake the suite on a non-regression.
    assert overhead_pct < 15.0


@pytest.mark.slow
def test_warm_vs_cold_request_latency(catalog_setup):
    """The tail-latency cliff the background warmer removes, quantified."""
    directory, split = catalog_setup
    catalog = ModelCatalog(directory, split.train)
    gateway = ServingGateway(catalog)
    rng = np.random.default_rng(9)
    users = rng.integers(0, NUM_USERS, size=256).astype(np.int64)

    # Warm path: residency maintained off-request by a warmer cycle.
    warmer = CatalogWarmer(catalog)
    warmer.run_once()
    for user in users:
        gateway.top_k(np.asarray([user]), k=TOP_K, model="gbgcn")
    warm = catalog.metrics.snapshot()["models"]["gbgcn"]["request_latency"]

    # Cold path: every request pays the artifact load + propagation in-line
    # (what serving without the warmer risks after every hot-swap/eviction).
    cold_metrics = MetricsRegistry()
    cold_catalog = ModelCatalog(directory, split.train, metrics=cold_metrics)
    cold_gateway = ServingGateway(cold_catalog)
    for user in users[:24]:
        cold_catalog.evict("gbgcn")
        cold_gateway.top_k(np.asarray([user]), k=TOP_K, model="gbgcn")
    cold = cold_metrics.snapshot()["models"]["gbgcn"]["request_latency"]

    print(
        f"\nBENCH warm vs cold p99: {warm['p99'] * 1000:.2f} ms warm vs "
        f"{cold['p99'] * 1000:.2f} ms cold "
        f"({cold['p99'] / max(warm['p99'], 1e-9):.0f}x cliff removed by the warmer)"
    )
    _RESULTS["warm_vs_cold_latency"] = {
        "model": "gbgcn",
        "warm_requests": warm["count"],
        "cold_requests": cold["count"],
        "warm_p50_ms": round(warm["p50"] * 1000, 3),
        "warm_p95_ms": round(warm["p95"] * 1000, 3),
        "warm_p99_ms": round(warm["p99"] * 1000, 3),
        "cold_p50_ms": round(cold["p50"] * 1000, 3),
        "cold_p95_ms": round(cold["p95"] * 1000, 3),
        "cold_p99_ms": round(cold["p99"] * 1000, 3),
    }
    # A warm request must be far below the cold-start cliff.
    assert warm["p99"] < cold["p99"]


@pytest.mark.slow
def test_write_bench_serving_json():
    """Persist the trajectory point (runs after the timing tests)."""
    if not _RESULTS:
        pytest.skip("no timings collected in this run")
    results = dict(_RESULTS)
    if OUTPUT_PATH.exists():
        # Other benchmarks (test_retrieval_scaling.py, test_worker_scaling.py)
        # write their own sections on their own cadence; rewriting the
        # catalog numbers must not drop them.
        try:
            previous = json.loads(OUTPUT_PATH.read_text())
            for section, value in previous.get("results", {}).items():
                results.setdefault(section, value)
        except (ValueError, OSError):
            pass
    payload = {
        "schema": "repro-serving-bench/v6",
        "config": {
            "num_users": NUM_USERS,
            "num_items": NUM_ITEMS,
            "num_behaviors": NUM_BEHAVIORS,
            "embedding_dim": EMBEDDING_DIM,
            "catalog_models": CATALOG_MODELS,
        },
        "results": results,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
