"""Artifact I/O timing smoke test (save/load of a serving-scale GBGCN).

Marked ``slow`` and skipped by default (set ``REPRO_RUN_SLOW=1`` to run).
Times the full persistence round trip at the 2000-user scale the serving
benchmarks use — ``save_model`` (state snapshot + atomic npz write) and
``load_model`` (header parse, fingerprint check, registry rebuild, weight
restore) — and records both in the BENCH output.  The asserted ceilings
are generous (an artifact round trip must stay interactive, not win races)
so the test only fails on a real regression.
"""

import time

import numpy as np
import pytest

from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.models import ModelSettings, build_model
from repro.persist import load_model, read_header, save_model

pytestmark = [pytest.mark.slow, pytest.mark.persist]


def _serving_scale_split(num_users=2000, num_items=1500, num_behaviors=10000, seed=11):
    """A quick-to-build random group-buying dataset at serving scale."""
    rng = np.random.default_rng(seed)
    initiators = rng.integers(0, num_users, size=num_behaviors)
    items = rng.integers(0, num_items, size=num_behaviors)
    behaviors = []
    for m, n in zip(initiators, items):
        num_participants = int(rng.integers(0, 3))
        participants = tuple(
            int(p) for p in rng.integers(0, num_users, size=num_participants) if p != m
        )
        behaviors.append(
            GroupBuyingBehavior(initiator=int(m), item=int(n), participants=participants, threshold=1)
        )
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, num_users, size=(3 * num_users, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(num_users, num_items, behaviors, edges, name="artifact-bench")
    return leave_one_out_split(dataset, seed=1)


def test_gbgcn_artifact_save_load_timing(tmp_path):
    split = _serving_scale_split()
    model = build_model("GBGCN", split.train, ModelSettings(embedding_dim=16))
    model.eval()
    users = np.arange(64, dtype=np.int64)
    expected = model.score_all_items(users)
    path = tmp_path / "gbgcn-2000u.npz"

    started = time.perf_counter()
    save_model(model, path)
    save_seconds = time.perf_counter() - started
    size_mb = path.stat().st_size / (1024 * 1024)

    started = time.perf_counter()
    header = read_header(path)
    header_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded = load_model(path, split.train)
    load_seconds = time.perf_counter() - started

    assert loaded.score_all_items(users).tobytes() == expected.tobytes()
    assert header.model_name == "GBGCN"
    print(
        f"\nBENCH artifact-io GBGCN 2000ux1500i dim=16: "
        f"save={save_seconds * 1000:.1f} ms  header-read={header_seconds * 1000:.1f} ms  "
        f"load={load_seconds * 1000:.1f} ms  size={size_mb:.2f} MiB"
    )
    # Regression guards, far above typical measurements.
    assert save_seconds < 10.0
    assert load_seconds < 30.0
