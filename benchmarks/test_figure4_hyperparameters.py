"""Benchmark: regenerate Figure 4 (role coefficient alpha, loss coefficient beta).

A reduced grid keeps the CPU cost manageable; the asserted shape follows
the paper: extreme alpha values do not win, and the best beta is positive
(the double-pairwise loss beats plain BPR, i.e. beta = 0).
"""

from repro.experiments import run_figure4

ALPHA_GRID = (0.1, 0.4, 0.6, 0.9)
BETA_GRID = (0.0, 0.05, 0.5)


def test_figure4_hyperparameter_sensitivity(benchmark, workload):
    result = benchmark.pedantic(
        lambda: run_figure4(workload=workload, alphas=ALPHA_GRID, betas=BETA_GRID),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())

    recalls_by_alpha = {point.value: point["Recall@10"] for point in result.alpha_points}
    best_alpha = result.best_alpha("Recall@10")
    benchmark.extra_info["best_alpha"] = best_alpha
    benchmark.extra_info["best_beta"] = result.best_beta("Recall@10")
    # Paper shape: interior alpha values are competitive — the extremes must
    # not dominate the interior grid points by a meaningful margin.
    best_interior = max(recalls_by_alpha[0.4], recalls_by_alpha[0.6])
    assert best_interior >= recalls_by_alpha[0.9] * 0.9
    assert best_interior >= recalls_by_alpha[0.1] * 0.9

    # Some positive beta should be at least competitive with plain BPR (beta=0).
    beta_zero = next(p["Recall@10"] for p in result.beta_points if p.value == 0.0)
    best_positive_beta = max(p["Recall@10"] for p in result.beta_points if p.value > 0.0)
    assert best_positive_beta >= beta_zero * 0.9
