"""Shared benchmark workload.

Every benchmark regenerates one table or figure of the paper on the same
prepared workload.  The scale is controlled by ``REPRO_EXPERIMENT_SCALE``
(tiny / quick / paper); the default keeps the full benchmark suite within a
few minutes on a laptop CPU while preserving the paper's qualitative shape.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, prepare_workload
from repro.utils import configure_logging


def bench_config() -> ExperimentConfig:
    """Benchmark-scale config.

    The default (``bench``) is the ``quick`` preset unchanged: its epoch
    budget is already the smallest one at which the SGD-fine-tuned GBGCN has
    converged enough for the paper's ordering to be about modeling rather
    than budget.  Use ``REPRO_EXPERIMENT_SCALE=tiny`` for a smoke run or
    ``paper`` for the Table II scale.
    """
    scale = os.environ.get("REPRO_EXPERIMENT_SCALE", "bench").lower()
    if scale == "tiny":
        return ExperimentConfig.tiny()
    if scale == "paper":
        return ExperimentConfig.paper()
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def workload():
    configure_logging()
    return prepare_workload(bench_config())


def pytest_collection_modifyitems(config, items):
    """Skip ``slow``-marked timing tests unless explicitly requested."""
    if os.environ.get("REPRO_RUN_SLOW") == "1":
        return
    skip_slow = pytest.mark.skip(reason="slow timing test; set REPRO_RUN_SLOW=1 to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
