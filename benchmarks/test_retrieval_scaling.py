"""Retrieval vs dense top-k scaling: 15k → 100k → 1M item catalogs.

The scaling claim behind ``repro.serving.retrieval``: a dense top-k request
is O(num_items · dim) per user, so per-request latency grows linearly with
the catalog; the IVF shortlist + exact-rescore path probes
``O(num_cells · dim)`` centroids and rescores a ~5% shortlist, so it pulls
ahead as the catalog grows.  This benchmark measures both paths on the same
MF model at three catalog sizes, records recall@10 against exact search at
each point, and writes the curve into ``BENCH_serving.json``
(``results.retrieval_scaling``, schema ``repro-serving-bench/v6``) next to
the catalog-serving numbers.

Run with ``REPRO_RUN_SLOW=1`` (the 1M point builds a 1000-cell k-means
index over a million item vectors — tens of seconds, off the tier-1 path).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.models import ModelSettings, build_model
from repro.serving import EmbeddingStore, TopKRecommender, build_index_for_model

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"

NUM_USERS = 2000
NUM_BEHAVIORS = 4000
EMBEDDING_DIM = 16
TOP_K = 10
#: (num_items, k-means iterations): fewer Lloyd iterations at the largest
#: scale keep the build inside a slow-lane budget without moving recall.
SCALES = [(15_000, 8), (100_000, 8), (1_000_000, 4)]
#: Users sampled for latency/recall measurement at each scale.
SAMPLE_USERS = 64

_CURVE = []


def _split_with_catalog(num_items, seed=23):
    rng = np.random.default_rng(seed)
    behaviors = [
        GroupBuyingBehavior(
            initiator=int(initiator),
            item=int(item),
            participants=(int((initiator + 1) % NUM_USERS),),
            threshold=1,
        )
        for initiator, item in zip(
            rng.integers(0, NUM_USERS, size=NUM_BEHAVIORS),
            rng.integers(0, num_items, size=NUM_BEHAVIORS),
        )
    ]
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, NUM_USERS, size=(NUM_USERS, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(
        NUM_USERS, num_items, behaviors, edges, name=f"retrieval-scale-{num_items}"
    )
    return leave_one_out_split(dataset, seed=1)


def _per_request_ms(recommender, users, repeats=3):
    """Median per-request latency (ms) over single-user requests."""
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        for user in users:
            recommender.recommend(np.asarray([user], dtype=np.int64), k=TOP_K)
        timings.append((time.perf_counter() - started) / users.size)
    return float(np.median(timings) * 1000.0)


def _recall_at_k(exact, approx, k=TOP_K):
    hits = 0
    for row in range(exact.items.shape[0]):
        threshold = exact.scores[row, k - 1]
        tolerance = 1e-9 * max(1.0, abs(threshold)) if np.isfinite(threshold) else 0.0
        hits += int(np.sum(approx.scores[row, :k] >= threshold - tolerance))
    return hits / (k * exact.items.shape[0])


def _plant_item_structure(model, num_items, seed=42):
    """Give the untrained MF model *clustered* item factors.

    Trained item embeddings carry category/popularity cluster structure —
    that structure is exactly what an IVF index exploits.  Freshly
    initialized i.i.d. Gaussian embeddings are the degenerate no-structure
    case (every direction's top items scatter uniformly over cells), so
    benchmarking on them would measure the wrong workload.  A Gaussian
    mixture (a few hundred "categories", tight within-category spread)
    matches the geometry retrieval sees in production.
    """
    rng = np.random.default_rng(seed)
    num_centers = max(50, int(round(num_items ** 0.5)) // 2)
    centers = rng.normal(size=(num_centers, EMBEDDING_DIM))
    assignment = rng.integers(0, num_centers, size=num_items)
    model.item_embedding.weight.data[:] = centers[assignment] + 0.15 * rng.normal(
        size=(num_items, EMBEDDING_DIM)
    )


@pytest.mark.slow
@pytest.mark.parametrize("num_items,iterations", SCALES)
def test_retrieval_scaling_point(num_items, iterations):
    split = _split_with_catalog(num_items)
    model = build_model(
        "MF", split.train, ModelSettings(embedding_dim=EMBEDDING_DIM), rng=np.random.default_rng(0)
    )
    _plant_item_structure(model, num_items)
    store = EmbeddingStore(model)

    build_started = time.perf_counter()
    from repro.serving.retrieval import RetrievalIndex

    item_factors = model.scoring_factors()[1]
    index = RetrievalIndex.build(item_factors, seed=0, iterations=iterations)
    build_seconds = time.perf_counter() - build_started

    users = np.random.default_rng(3).choice(NUM_USERS, size=SAMPLE_USERS, replace=False)
    dense = TopKRecommender(store, k=TOP_K, dataset=split.full)
    fast = TopKRecommender(store, k=TOP_K, dataset=split.full, retriever=index)

    exact = dense.recommend(users)
    approx = fast.recommend(users)
    recall = _recall_at_k(exact, approx)

    dense_ms = _per_request_ms(dense, users)
    retrieval_ms = _per_request_ms(fast, users)
    shortlist_fraction = float(
        np.mean([c.size for c in index.shortlist(model.scoring_factors()[0][users[:8]])])
        / num_items
    )

    point = {
        "num_items": num_items,
        "num_cells": index.num_cells,
        "nprobe": index.nprobe,
        "index_build_seconds": round(build_seconds, 3),
        "shortlist_fraction": round(shortlist_fraction, 4),
        "recall_at_10": round(recall, 4),
        "dense_request_ms": round(dense_ms, 4),
        "retrieval_request_ms": round(retrieval_ms, 4),
        "speedup": round(dense_ms / retrieval_ms, 2),
    }
    _CURVE.append(point)
    print(
        f"\nBENCH retrieval scaling {num_items:,} items: dense {dense_ms:.3f} ms vs "
        f"retrieval {retrieval_ms:.3f} ms per request "
        f"({point['speedup']}x, recall@10 {recall:.3f}, build {build_seconds:.1f}s)"
    )

    assert recall >= 0.95, f"recall@10 {recall:.3f} below the 0.95 gate at {num_items:,} items"
    if num_items >= 100_000:
        # The headline claim: past 100k items, shortlist-then-rescore beats
        # a dense per-request scan.
        assert retrieval_ms < dense_ms, (
            f"retrieval ({retrieval_ms:.3f} ms) should beat dense ({dense_ms:.3f} ms) "
            f"at {num_items:,} items"
        )


@pytest.mark.slow
def test_write_retrieval_scaling_into_bench_json():
    """Merge the curve into BENCH_serving.json (runs after the points)."""
    if not _CURVE:
        pytest.skip("no scaling points collected in this run")
    payload = {"schema": "repro-serving-bench/v6", "config": {}, "results": {}}
    if OUTPUT_PATH.exists():
        try:
            payload = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            pass
    payload["schema"] = "repro-serving-bench/v6"
    payload.setdefault("results", {})["retrieval_scaling"] = {
        "embedding_dim": EMBEDDING_DIM,
        "num_users": NUM_USERS,
        "top_k": TOP_K,
        "sample_users": SAMPLE_USERS,
        "model": "MF",
        "points": sorted(_CURVE, key=lambda point: point["num_items"]),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
