"""Throughput vs. worker count for the multi-process serving tier.

Measures ``WorkerPool`` request throughput at 1, 2 and 4 workers over the
same dir-layout (mmap-backed) artifacts, under two request profiles:

* **cpu-bound** — pure scoring, no artificial stall.  On a box with a
  single CPU this curve is expected to be flat (or slightly worse, from
  queue hops): worker processes cannot out-multiply the cores.
* **io-stall** — every request carries a fixed ``simulate_io_seconds``
  sleep, standing in for the per-request blocking IO a real deployment
  sees (feature fetches, remote stores).  Stalls overlap across
  processes, so this curve must scale: the 4-worker point is gated at
  >= 1.5x the 1-worker point regardless of core count.

Results land in ``BENCH_serving.json`` under ``results.worker_scaling``
(schema ``repro-serving-bench/v6``), alongside the single-process
serving and retrieval sections.  Slow-gated: ``REPRO_RUN_SLOW=1``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import GroupBuyingDataset, leave_one_out_split
from repro.data.schema import GroupBuyingBehavior, SocialEdge
from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, save_model
from repro.serving import WorkerPool

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"

NUM_USERS = 2000
NUM_ITEMS = 1500
NUM_BEHAVIORS = 10000
EMBEDDING_DIM = 16
TOP_K = 10

WORKER_COUNTS = [1, 2, 4]
IO_STALL_SECONDS = 0.003  # per-request synthetic blocking IO (3 ms)
BATCH_USERS = 48          # users per request
NUM_REQUESTS = 96         # timed requests per (workers, profile) point
WARMUP_REQUESTS = 8

_RESULTS = {}


def _bench_split():
    rng = np.random.default_rng(4242)
    initiators = rng.integers(0, NUM_USERS, size=NUM_BEHAVIORS)
    items = rng.integers(0, NUM_ITEMS, size=NUM_BEHAVIORS)
    behaviors = []
    for initiator, item in zip(initiators, items):
        count = int(rng.integers(0, 3))
        participants = tuple(
            int(p) for p in rng.integers(0, NUM_USERS, size=count) if p != initiator
        )
        behaviors.append(
            GroupBuyingBehavior(
                initiator=int(initiator), item=int(item), participants=participants, threshold=1
            )
        )
    edges = [
        SocialEdge(int(a), int(b))
        for a, b in rng.integers(0, NUM_USERS, size=(3 * NUM_USERS, 2))
        if a != b
    ]
    dataset = GroupBuyingDataset(NUM_USERS, NUM_ITEMS, behaviors, edges, name="worker-bench")
    return leave_one_out_split(dataset, seed=7)


@pytest.fixture(scope="module")
def pool_setup(tmp_path_factory):
    split = _bench_split()
    directory = tmp_path_factory.mktemp("worker-scaling")
    settings = ModelSettings(embedding_dim=EMBEDDING_DIM)
    model = build_model("MF", split.train, settings)
    save_model(model, directory / "mf.npyd", layout=LAYOUT_DIR)
    return directory, split


def _request_batches(split, count):
    rng = np.random.default_rng(99)
    return [
        rng.integers(0, split.train.num_users, size=BATCH_USERS) for _ in range(count)
    ]


def _measure(directory, split, workers, simulate_io_seconds):
    """req/s plus fleet latency percentiles for one (workers, profile) point."""
    batches = _request_batches(split, NUM_REQUESTS)
    with WorkerPool(
        directory,
        split.train,
        workers=workers,
        default_model="mf",
        default_k=TOP_K,
        request_timeout=120.0,
        simulate_io_seconds=simulate_io_seconds,
    ) as pool:
        pool.top_k_many(batches[:WARMUP_REQUESTS])
        start = time.perf_counter()
        results = pool.top_k_many(batches)
        elapsed = time.perf_counter() - start
        fleet = pool.fleet_metrics()
    assert len(results) == NUM_REQUESTS
    latency = fleet["totals"]["request_latency"]
    return {
        "req_s": NUM_REQUESTS / elapsed,
        "elapsed_s": elapsed,
        "fleet_p50_ms": latency["p50"] * 1000.0,
        "fleet_p99_ms": latency["p99"] * 1000.0,
    }


@pytest.mark.slow
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_worker_scaling_point(pool_setup, workers):
    directory, split = pool_setup
    cpu_bound = _measure(directory, split, workers, simulate_io_seconds=0.0)
    io_stall = _measure(directory, split, workers, simulate_io_seconds=IO_STALL_SECONDS)
    _RESULTS[workers] = {
        "workers": workers,
        "cpu_bound_req_s": cpu_bound["req_s"],
        "io_stall_req_s": io_stall["req_s"],
        "io_stall_fleet_p50_ms": io_stall["fleet_p50_ms"],
        "io_stall_fleet_p99_ms": io_stall["fleet_p99_ms"],
    }
    print(
        f"\nworkers={workers}: cpu-bound {cpu_bound['req_s']:.1f} req/s, "
        f"io-stall {io_stall['req_s']:.1f} req/s "
        f"(p50 {io_stall['fleet_p50_ms']:.2f} ms, p99 {io_stall['fleet_p99_ms']:.2f} ms)"
    )


@pytest.mark.slow
def test_io_stall_throughput_scales(pool_setup):
    """The headline gate: overlapping stalls buy >= 1.5x at 4 workers."""
    if set(WORKER_COUNTS) - set(_RESULTS):
        pytest.skip("scaling points did not all run in this session")
    base = _RESULTS[1]["io_stall_req_s"]
    top = _RESULTS[max(WORKER_COUNTS)]["io_stall_req_s"]
    speedup = top / base
    print(f"\nio-stall speedup at {max(WORKER_COUNTS)} workers: {speedup:.2f}x")
    assert speedup >= 1.5, (
        f"io-stall throughput at {max(WORKER_COUNTS)} workers is only {speedup:.2f}x "
        f"the single-worker baseline (gate: 1.5x)"
    )


@pytest.mark.slow
def test_write_worker_scaling_into_bench_json(pool_setup):
    """Merge the curve into BENCH_serving.json (runs after the points)."""
    if not _RESULTS:
        pytest.skip("no scaling points collected in this run")
    payload = {"schema": "repro-serving-bench/v6", "config": {}, "results": {}}
    if OUTPUT_PATH.exists():
        try:
            payload = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            pass
    payload["schema"] = "repro-serving-bench/v6"
    points = [_RESULTS[w] for w in sorted(_RESULTS)]
    base = points[0]["io_stall_req_s"]
    cpu_base = points[0]["cpu_bound_req_s"]
    for point in points:
        point["io_stall_speedup_vs_1"] = point["io_stall_req_s"] / base
        point["cpu_bound_speedup_vs_1"] = point["cpu_bound_req_s"] / cpu_base
    payload.setdefault("results", {})["worker_scaling"] = {
        "cpus": os.cpu_count(),
        "io_stall_ms": IO_STALL_SECONDS * 1000.0,
        "embedding_dim": EMBEDDING_DIM,
        "num_items": NUM_ITEMS,
        "num_users": NUM_USERS,
        "batch_users": BATCH_USERS,
        "requests_per_point": NUM_REQUESTS,
        "top_k": TOP_K,
        "model": "MF",
        "artifact_layout": "dir",
        "points": points,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
