"""Benchmark: data-sparsity study (the paper's stated future work).

Trains MF, GBMF and GBGCN on 50% and 100% of the training behaviors (same
test set, social network and candidates) and reports how each degrades.
The expected shape: every model loses quality when the log thins out, and
the friend-aware models (GBMF, GBGCN) retain more of their quality than
plain MF because part of their signal comes from the untouched social
network.
"""

from repro.analysis import run_sparsity_study


def test_sparsity_study(benchmark, workload):
    def run():
        return run_sparsity_study(
            workload.split,
            workload.evaluator,
            model_names=("MF", "GBMF", "GBGCN"),
            fractions=(0.5, 1.0),
            model_settings=workload.config.model_settings,
            training=workload.config.training,
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + study.format())

    for model_name in study.model_names():
        series = study.series(model_name)
        benchmark.extra_info[f"recall10_{model_name}_sparse"] = round(series[0]["Recall@10"], 4)
        benchmark.extra_info[f"recall10_{model_name}_dense"] = round(series[-1]["Recall@10"], 4)

    # Sanity: every point is a valid metric and the dense setting never has
    # fewer training behaviors than the sparse one.
    for model_name in study.model_names():
        series = study.series(model_name)
        assert series[0].num_train_behaviors < series[-1].num_train_behaviors
        assert all(0.0 <= point["Recall@10"] <= 1.0 for point in series)

    # Shape: the group-buying-aware models stay competitive with MF at the
    # sparse setting (they can lean on the social network).
    sparse_mf = study.series("MF")[0]["Recall@10"]
    sparse_gb = max(study.series("GBMF")[0]["Recall@10"], study.series("GBGCN")[0]["Recall@10"])
    assert sparse_gb >= 0.8 * sparse_mf
