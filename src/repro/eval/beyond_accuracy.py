"""Beyond-accuracy metrics: AUC, catalog coverage and popularity bias.

These complement the paper's Recall/NDCG numbers:

* :func:`auc_from_rank` — with one relevant item ranked against ``N``
  negatives, AUC reduces to the fraction of negatives scored below the
  positive; useful as a cutoff-free summary.
* :func:`catalog_coverage` — the share of the item catalog that ever
  appears in a top-``k`` list; group-buying recommenders that only push a
  handful of viral items score poorly here even when Recall looks fine.
* :func:`average_recommendation_popularity` — how popularity-biased the
  top-``k`` lists are, measured against training interaction counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from ..data.dataset import GroupBuyingDataset
from ..models.base import RecommenderModel

__all__ = [
    "auc_from_rank",
    "top_k_items",
    "catalog_coverage",
    "average_recommendation_popularity",
]


def auc_from_rank(rank: int, num_candidates: int) -> float:
    """AUC of one ranking task with a single positive.

    ``rank`` is the 0-based position of the positive among ``num_candidates``
    scored items; AUC is the fraction of the ``num_candidates - 1`` negatives
    ranked below it.
    """
    if num_candidates < 2:
        raise ValueError("need at least two candidates (one positive, one negative)")
    if not 0 <= rank < num_candidates:
        raise ValueError("rank must lie inside the candidate list")
    negatives = num_candidates - 1
    return float((negatives - rank) / negatives)


def top_k_items(
    model: RecommenderModel,
    user: int,
    k: int,
    num_items: int,
    exclude: Optional[Set[int]] = None,
) -> np.ndarray:
    """The model's top-``k`` item IDs for ``user`` over the full catalog."""
    if k < 1:
        raise ValueError("k must be positive")
    candidates = np.arange(num_items, dtype=np.int64)
    if exclude:
        mask = np.ones(num_items, dtype=bool)
        mask[list(exclude)] = False
        candidates = candidates[mask]
    scores = np.asarray(model.rank_scores(user, candidates), dtype=np.float64)
    k = min(k, candidates.size)
    order = np.argpartition(-scores, k - 1)[:k]
    order = order[np.argsort(-scores[order])]
    return candidates[order]


def catalog_coverage(
    model: RecommenderModel,
    users: Iterable[int],
    num_items: int,
    k: int = 10,
    exclude_per_user: Optional[Dict[int, Set[int]]] = None,
) -> float:
    """Fraction of the catalog recommended to at least one user in top-``k``."""
    model.eval()
    model.prepare_for_evaluation()
    recommended: Set[int] = set()
    for user in users:
        exclude = exclude_per_user.get(user) if exclude_per_user else None
        recommended.update(int(i) for i in top_k_items(model, int(user), k, num_items, exclude))
    model.train()
    if num_items == 0:
        return 0.0
    return len(recommended) / num_items


def average_recommendation_popularity(
    model: RecommenderModel,
    users: Iterable[int],
    train_dataset: GroupBuyingDataset,
    k: int = 10,
) -> float:
    """Mean training popularity of the items in the users' top-``k`` lists.

    High values relative to the catalog's mean popularity indicate the
    model mostly re-recommends already popular group-buying deals.
    """
    counts = np.zeros(train_dataset.num_items, dtype=np.float64)
    for behavior in train_dataset.behaviors:
        counts[behavior.item] += 1.0 + len(behavior.participants)

    model.eval()
    model.prepare_for_evaluation()
    popularity_values = []
    for user in users:
        items = top_k_items(model, int(user), k, train_dataset.num_items)
        popularity_values.append(counts[items].mean())
    model.train()
    if not popularity_values:
        return 0.0
    return float(np.mean(popularity_values))
