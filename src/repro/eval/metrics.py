"""Ranking metrics: Recall@K and NDCG@K (plus hit-rate/MRR helpers).

The paper's protocol ranks one held-out positive item against 999 sampled
negatives per test user, so Recall@K degenerates to "is the positive in
the top K" (0/1) and NDCG@K to ``1 / log2(rank + 2)`` if it is, 0 otherwise
— exactly the definitions used here.  Values are averaged over test users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = [
    "rank_of_positive",
    "recall_at_k",
    "ndcg_at_k",
    "reciprocal_rank",
    "MetricAccumulator",
]


def rank_of_positive(scores: np.ndarray, positive_index: int = 0) -> int:
    """Zero-based rank of the positive item given candidate ``scores``.

    Ties are broken pessimistically (ties rank the positive lower), which
    avoids over-crediting degenerate constant scorers.
    """
    scores = np.asarray(scores, dtype=np.float64)
    positive_score = scores[positive_index]
    better = np.sum(scores > positive_score)
    ties = np.sum(scores == positive_score) - 1
    return int(better + ties)


def recall_at_k(rank: int, k: int) -> float:
    """1.0 if the positive item's (0-based) rank is within the top ``k``."""
    if k <= 0:
        raise ValueError("k must be positive")
    return 1.0 if rank < k else 0.0


def ndcg_at_k(rank: int, k: int) -> float:
    """NDCG with a single relevant item: ``1/log2(rank+2)`` inside the top ``k``."""
    if k <= 0:
        raise ValueError("k must be positive")
    if rank >= k:
        return 0.0
    return float(1.0 / np.log2(rank + 2))


def reciprocal_rank(rank: int) -> float:
    """Reciprocal rank of the positive item (1-based)."""
    return float(1.0 / (rank + 1))


@dataclass
class MetricAccumulator:
    """Accumulates per-user ranks and reports the averaged metrics."""

    cutoffs: Sequence[int] = (3, 5, 10, 20)
    ranks: List[int] = field(default_factory=list)

    def add(self, rank: int) -> None:
        """Record the rank of one test user's positive item."""
        if rank < 0:
            raise ValueError("rank must be non-negative")
        self.ranks.append(int(rank))

    def extend(self, ranks: Iterable[int]) -> None:
        for rank in ranks:
            self.add(rank)

    @property
    def num_users(self) -> int:
        return len(self.ranks)

    def results(self) -> Dict[str, float]:
        """Averaged ``Recall@K`` / ``NDCG@K`` / ``MRR`` over recorded users."""
        if not self.ranks:
            return {f"Recall@{k}": 0.0 for k in self.cutoffs} | {f"NDCG@{k}": 0.0 for k in self.cutoffs} | {"MRR": 0.0}
        ranks = np.asarray(self.ranks)
        output: Dict[str, float] = {}
        for k in self.cutoffs:
            output[f"Recall@{k}"] = float(np.mean([recall_at_k(rank, k) for rank in ranks]))
        for k in self.cutoffs:
            output[f"NDCG@{k}"] = float(np.mean([ndcg_at_k(rank, k) for rank in ranks]))
        output["MRR"] = float(np.mean([reciprocal_rank(rank) for rank in ranks]))
        return output

    def per_user_metric(self, metric: str) -> np.ndarray:
        """Per-user values of one metric (used by the significance tests)."""
        if not self.ranks:
            return np.zeros(0)
        name, _, cutoff = metric.partition("@")
        ranks = np.asarray(self.ranks)
        if name.lower() == "recall":
            return np.asarray([recall_at_k(rank, int(cutoff)) for rank in ranks])
        if name.lower() == "ndcg":
            return np.asarray([ndcg_at_k(rank, int(cutoff)) for rank in ranks])
        if name.lower() == "mrr":
            return np.asarray([reciprocal_rank(rank) for rank in ranks])
        raise ValueError(f"unknown metric '{metric}'")
