"""Paired significance tests for metric comparisons (used for Table III).

The paper reports that GBGCN's improvement over the best baseline is
significant with p < 0.05; this module provides the paired t-test and the
Wilcoxon signed-rank test over per-user metric values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

__all__ = ["SignificanceResult", "paired_t_test", "wilcoxon_test", "improvement"]


@dataclass(frozen=True)
class SignificanceResult:
    """Statistic and p-value of a paired test."""

    statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Significance at the paper's 0.05 level."""
        return self.p_value < 0.05


def _validate(sample_a: np.ndarray, sample_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    sample_a = np.asarray(sample_a, dtype=np.float64)
    sample_b = np.asarray(sample_b, dtype=np.float64)
    if sample_a.shape != sample_b.shape:
        raise ValueError("paired samples must have the same shape")
    if sample_a.size < 2:
        raise ValueError("need at least two paired observations")
    return sample_a, sample_b


def paired_t_test(sample_a: np.ndarray, sample_b: np.ndarray) -> SignificanceResult:
    """Paired t-test of per-user metric values of two models."""
    sample_a, sample_b = _validate(sample_a, sample_b)
    statistic, p_value = stats.ttest_rel(sample_a, sample_b)
    if np.isnan(p_value):
        # Identical samples: no evidence of a difference.
        return SignificanceResult(statistic=0.0, p_value=1.0)
    return SignificanceResult(statistic=float(statistic), p_value=float(p_value))


def wilcoxon_test(sample_a: np.ndarray, sample_b: np.ndarray) -> SignificanceResult:
    """Wilcoxon signed-rank test of per-user metric values of two models."""
    sample_a, sample_b = _validate(sample_a, sample_b)
    differences = sample_a - sample_b
    if np.allclose(differences, 0.0):
        return SignificanceResult(statistic=0.0, p_value=1.0)
    statistic, p_value = stats.wilcoxon(sample_a, sample_b)
    return SignificanceResult(statistic=float(statistic), p_value=float(p_value))


def improvement(candidate: float, baseline: float) -> float:
    """Relative improvement in percent, as reported in the paper's tables."""
    if baseline == 0:
        return float("inf") if candidate > 0 else 0.0
    return 100.0 * (candidate - baseline) / abs(baseline)
