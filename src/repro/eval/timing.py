"""Training/testing time measurement (Table IV of the paper).

The paper reports per-epoch wall-clock training and testing time for every
method on the same machine.  :func:`measure_time_efficiency` times one (or
more) full training epochs and one full pass of the evaluation protocol
for a given model; the benchmark harness calls it for every method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..models.base import RecommenderModel
from ..optim import Optimizer
from ..utils.timer import Timer
from .protocol import LeaveOneOutEvaluator

__all__ = ["TimingResult", "measure_time_efficiency"]


@dataclass(frozen=True)
class TimingResult:
    """Per-epoch training and testing time, in seconds."""

    model_name: str
    train_seconds_per_epoch: float
    test_seconds_per_epoch: float

    def as_row(self) -> tuple:
        return (self.model_name, self.train_seconds_per_epoch, self.test_seconds_per_epoch)


def measure_time_efficiency(
    model: RecommenderModel,
    optimizer: Optimizer,
    batch_iterator,
    evaluator: LeaveOneOutEvaluator,
    num_epochs: int = 1,
) -> TimingResult:
    """Time ``num_epochs`` of training and evaluation for ``model``."""
    if num_epochs < 1:
        raise ValueError("num_epochs must be at least 1")
    timer = Timer()

    for _ in range(num_epochs):
        with timer.time("train_epoch"):
            for batch in batch_iterator:
                optimizer.zero_grad()
                loss = model.batch_loss(batch)
                loss.backward()
                optimizer.step()
            model.invalidate_cache()
        with timer.time("test_epoch"):
            evaluator.evaluate_test(model)

    return TimingResult(
        model_name=model.name,
        train_seconds_per_epoch=timer.mean("train_epoch"),
        test_seconds_per_epoch=timer.mean("test_epoch"),
    )
