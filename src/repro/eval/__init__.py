"""Evaluation protocol, ranking metrics, significance tests and timing."""

from .metrics import (
    MetricAccumulator,
    ndcg_at_k,
    rank_of_positive,
    recall_at_k,
    reciprocal_rank,
)
from .protocol import EvaluationResult, LeaveOneOutEvaluator
from .full_ranking import FullRankingEvaluator
from .significance import SignificanceResult, improvement, paired_t_test, wilcoxon_test
from .timing import TimingResult, measure_time_efficiency
from .bootstrap import ConfidenceInterval, bootstrap_confidence_interval, bootstrap_metric_table
from .beyond_accuracy import (
    auc_from_rank,
    average_recommendation_popularity,
    catalog_coverage,
    top_k_items,
)

__all__ = [
    "MetricAccumulator",
    "ndcg_at_k",
    "rank_of_positive",
    "recall_at_k",
    "reciprocal_rank",
    "EvaluationResult",
    "LeaveOneOutEvaluator",
    "FullRankingEvaluator",
    "SignificanceResult",
    "improvement",
    "paired_t_test",
    "wilcoxon_test",
    "TimingResult",
    "measure_time_efficiency",
    "ConfidenceInterval",
    "bootstrap_confidence_interval",
    "bootstrap_metric_table",
    "auc_from_rank",
    "average_recommendation_popularity",
    "catalog_coverage",
    "top_k_items",
]
