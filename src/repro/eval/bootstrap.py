"""Bootstrap confidence intervals for per-user ranking metrics.

The paper reports point estimates plus a paired significance test; for a
reproduction run on a different (synthetic) dataset it is more informative
to also report how wide the uncertainty band around each metric is, so a
"GBGCN beats GBMF by 3%" conclusion can be distinguished from noise at the
bench's small scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..utils.rng import make_rng

__all__ = ["ConfidenceInterval", "bootstrap_confidence_interval", "bootstrap_metric_table"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile-bootstrap confidence interval."""

    mean: float
    lower: float
    upper: float
    level: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return f"{self.mean:.4f} [{self.lower:.4f}, {self.upper:.4f}] @ {self.level:.0%}"


def bootstrap_confidence_interval(
    values: Sequence[float],
    level: float = 0.95,
    num_resamples: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the mean of per-user metric ``values``.

    Users are resampled with replacement ``num_resamples`` times; the
    ``level`` central percentile range of the resampled means forms the
    interval.
    """
    if not 0.0 < level < 1.0:
        raise ValueError("level must lie strictly between 0 and 1")
    if num_resamples < 1:
        raise ValueError("num_resamples must be positive")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")

    rng = make_rng(seed)
    resample_means = np.empty(num_resamples, dtype=np.float64)
    for index in range(num_resamples):
        draw = rng.integers(0, values.size, size=values.size)
        resample_means[index] = values[draw].mean()

    alpha = (1.0 - level) / 2.0
    lower, upper = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        mean=float(values.mean()), lower=float(lower), upper=float(upper), level=level
    )


def bootstrap_metric_table(
    per_user_values: Dict[str, Sequence[float]],
    level: float = 0.95,
    num_resamples: int = 1000,
    seed: int = 0,
) -> Dict[str, ConfidenceInterval]:
    """Confidence interval per metric name, from per-user metric arrays."""
    return {
        metric: bootstrap_confidence_interval(values, level=level, num_resamples=num_resamples, seed=seed)
        for metric, values in per_user_values.items()
    }
