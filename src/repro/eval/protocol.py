"""The leave-one-out evaluation protocol (Section IV-A2 of the paper).

For every test (or validation) user, the held-out positive item is ranked
against 999 items the user never interacted with; Recall@K and NDCG@K of
the resulting ranking are averaged over users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.negative_sampling import EvaluationCandidateSampler
from ..data.splits import DatasetSplit
from ..models.base import RecommenderModel
from .metrics import MetricAccumulator, rank_of_positive

__all__ = ["EvaluationResult", "LeaveOneOutEvaluator"]


@dataclass
class EvaluationResult:
    """Averaged metrics plus the per-user rank list for significance testing."""

    metrics: Dict[str, float]
    ranks: np.ndarray
    num_users: int

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


class LeaveOneOutEvaluator:
    """Evaluates any :class:`RecommenderModel` on a :class:`DatasetSplit`."""

    def __init__(
        self,
        split: DatasetSplit,
        num_negatives: int = 999,
        cutoffs=(3, 5, 10, 20),
        seed: int = 0,
    ) -> None:
        self.split = split
        self.cutoffs = tuple(cutoffs)
        # Candidates are sampled against the *full* dataset interactions so
        # that no sampled "negative" is actually a known positive.
        self.candidate_sampler = EvaluationCandidateSampler(
            split.full, num_negatives=num_negatives, seed=seed
        )

    def _evaluate_holdout(self, model: RecommenderModel, holdout: Dict) -> EvaluationResult:
        accumulator = MetricAccumulator(cutoffs=self.cutoffs)
        model.eval()
        model.prepare_for_evaluation()
        for user in sorted(holdout):
            behavior = holdout[user]
            candidates = self.candidate_sampler.candidates_for(user, behavior.item)
            scores = model.rank_scores(user, candidates)
            accumulator.add(rank_of_positive(scores, positive_index=0))
        model.train()
        return EvaluationResult(
            metrics=accumulator.results(),
            ranks=np.asarray(accumulator.ranks),
            num_users=accumulator.num_users,
        )

    def evaluate_test(self, model: RecommenderModel) -> EvaluationResult:
        """Evaluate on the test holdout."""
        return self._evaluate_holdout(model, self.split.test)

    def evaluate_validation(self, model: RecommenderModel) -> EvaluationResult:
        """Evaluate on the validation holdout (used for model selection)."""
        return self._evaluate_holdout(model, self.split.validation)
