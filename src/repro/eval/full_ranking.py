"""Full-ranking (all-item) evaluation protocol.

The paper follows the common sampled protocol: the held-out positive is
ranked against 999 sampled negatives.  Sampled metrics are known to be a
biased estimate of the full ranking; this evaluator ranks the positive
against *every* item the user has not interacted with, which is feasible at
the synthetic-dataset scales used in this reproduction and lets the
benchmark harness report both numbers side by side.

Two scoring paths are provided:

* the **batched path** (default) scores users in configurable blocks with
  :meth:`~repro.models.base.RecommenderModel.score_all_items` — one
  matrix-matrix product per block over the model's cached propagated
  embeddings — and excludes each user's observed items with a sparse
  row-slice mask instead of rebuilding a candidate array per user;
* the **per-user path** (``batch_size=None`` or
  :meth:`FullRankingEvaluator.evaluate_test_loop`) is the original
  reference implementation, kept as the oracle the batched path is
  regression-tested against.

Both paths produce identical ranks: scores are compared only *within* one
user's row, the observed-item exclusion sets are the same, and ties are
broken pessimistically in both.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np
import scipy.sparse as sp

from ..data.dataset import observed_item_matrix
from ..data.splits import DatasetSplit
from ..models.base import RecommenderModel
from .metrics import MetricAccumulator
from .protocol import EvaluationResult

__all__ = ["FullRankingEvaluator"]


class FullRankingEvaluator:
    """Ranks each held-out positive against the full unobserved item catalog."""

    def __init__(
        self,
        split: DatasetSplit,
        cutoffs=(3, 5, 10, 20),
        exclude_observed: bool = True,
        batch_size: Optional[int] = 256,
    ) -> None:
        """``batch_size`` controls the scoring block; ``None`` forces the
        legacy per-user reference path."""
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive (or None for the per-user path)")
        self.split = split
        self.cutoffs = tuple(cutoffs)
        self.exclude_observed = exclude_observed
        self.batch_size = batch_size
        # Observed sets come from the *full* dataset so items held out for
        # validation are not accidentally ranked as negatives of the test item.
        self._observed: Dict[int, Set[int]] = split.full.user_item_set(include_participants=True)
        self._observed_matrix: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------------
    # Shared structures
    # ------------------------------------------------------------------
    def _observed_csr(self) -> sp.csr_matrix:
        """Boolean ``users x items`` matrix of observed interactions (lazy)."""
        if self._observed_matrix is None:
            self._observed_matrix = observed_item_matrix(
                self._observed, self.split.full.num_users, self.split.full.num_items
            )
        return self._observed_matrix

    def _candidates(self, user: int, positive_item: int) -> np.ndarray:
        num_items = self.split.full.num_items
        if not self.exclude_observed:
            candidates = np.arange(num_items)
        else:
            observed = self._observed.get(user, set()) - {positive_item}
            if observed:
                mask = np.ones(num_items, dtype=bool)
                mask[list(observed)] = False
                candidates = np.flatnonzero(mask)
            else:
                candidates = np.arange(num_items)
        # The protocol expects the positive at index 0 and all other
        # candidates after it.
        others = candidates[candidates != positive_item]
        return np.concatenate([[positive_item], others]).astype(np.int64)

    # ------------------------------------------------------------------
    # Reference per-user path (the oracle)
    # ------------------------------------------------------------------
    def _evaluate_holdout_loop(self, model: RecommenderModel, holdout: Dict) -> EvaluationResult:
        accumulator = MetricAccumulator(cutoffs=self.cutoffs)
        model.eval()
        model.prepare_for_evaluation()
        for user in sorted(holdout):
            behavior = holdout[user]
            candidates = self._candidates(user, behavior.item)
            scores = np.asarray(model.rank_scores(user, candidates), dtype=np.float64)
            positive_score = scores[0]
            better = int(np.sum(scores > positive_score))
            ties = int(np.sum(scores == positive_score)) - 1
            accumulator.add(better + ties)
        model.train()
        return EvaluationResult(
            metrics=accumulator.results(),
            ranks=np.asarray(accumulator.ranks),
            num_users=accumulator.num_users,
        )

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def _evaluate_holdout_batched(self, model: RecommenderModel, holdout: Dict) -> EvaluationResult:
        accumulator = MetricAccumulator(cutoffs=self.cutoffs)
        model.eval()
        model.prepare_for_evaluation()
        users = np.asarray(sorted(holdout), dtype=np.int64)
        positives = np.asarray([holdout[int(user)].item for user in users], dtype=np.int64)
        observed_csr = self._observed_csr() if self.exclude_observed else None

        for start in range(0, users.size, self.batch_size):
            block_users = users[start : start + self.batch_size]
            block_positives = positives[start : start + self.batch_size]
            scores = np.asarray(model.score_all_items(block_users), dtype=np.float64)
            block_rows = np.arange(block_users.size)
            positive_scores = scores[block_rows, block_positives]

            if observed_csr is not None:
                excluded = observed_csr[block_users].toarray()
                # The positive itself is always ranked, even when observed.
                excluded[block_rows, block_positives] = False
                valid = ~excluded
                better = ((scores > positive_scores[:, None]) & valid).sum(axis=1)
                # The positive compares equal to itself, hence the -1.
                ties = ((scores == positive_scores[:, None]) & valid).sum(axis=1) - 1
            else:
                better = (scores > positive_scores[:, None]).sum(axis=1)
                ties = (scores == positive_scores[:, None]).sum(axis=1) - 1
            accumulator.extend((better + ties).tolist())

        model.train()
        return EvaluationResult(
            metrics=accumulator.results(),
            ranks=np.asarray(accumulator.ranks),
            num_users=accumulator.num_users,
        )

    def _evaluate_holdout(self, model: RecommenderModel, holdout: Dict) -> EvaluationResult:
        if self.batch_size is None:
            return self._evaluate_holdout_loop(model, holdout)
        return self._evaluate_holdout_batched(model, holdout)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def evaluate_test(self, model: RecommenderModel) -> EvaluationResult:
        """Evaluate on the test holdout against the full catalog."""
        return self._evaluate_holdout(model, self.split.test)

    def evaluate_validation(self, model: RecommenderModel) -> EvaluationResult:
        """Evaluate on the validation holdout against the full catalog."""
        return self._evaluate_holdout(model, self.split.validation)

    def evaluate_test_loop(self, model: RecommenderModel) -> EvaluationResult:
        """Reference per-user evaluation of the test holdout (the oracle)."""
        return self._evaluate_holdout_loop(model, self.split.test)

    def evaluate_validation_loop(self, model: RecommenderModel) -> EvaluationResult:
        """Reference per-user evaluation of the validation holdout."""
        return self._evaluate_holdout_loop(model, self.split.validation)
