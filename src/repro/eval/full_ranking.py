"""Full-ranking (all-item) evaluation protocol.

The paper follows the common sampled protocol: the held-out positive is
ranked against 999 sampled negatives.  Sampled metrics are known to be a
biased estimate of the full ranking; this evaluator ranks the positive
against *every* item the user has not interacted with, which is feasible at
the synthetic-dataset scales used in this reproduction and lets the
benchmark harness report both numbers side by side.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..data.splits import DatasetSplit
from ..models.base import RecommenderModel
from .metrics import MetricAccumulator
from .protocol import EvaluationResult

__all__ = ["FullRankingEvaluator"]


class FullRankingEvaluator:
    """Ranks each held-out positive against the full unobserved item catalog."""

    def __init__(
        self,
        split: DatasetSplit,
        cutoffs=(3, 5, 10, 20),
        exclude_observed: bool = True,
    ) -> None:
        self.split = split
        self.cutoffs = tuple(cutoffs)
        self.exclude_observed = exclude_observed
        # Observed sets come from the *full* dataset so items held out for
        # validation are not accidentally ranked as negatives of the test item.
        self._observed: Dict[int, Set[int]] = split.full.user_item_set(include_participants=True)

    def _candidates(self, user: int, positive_item: int) -> np.ndarray:
        num_items = self.split.full.num_items
        if not self.exclude_observed:
            candidates = np.arange(num_items)
        else:
            observed = self._observed.get(user, set()) - {positive_item}
            if observed:
                mask = np.ones(num_items, dtype=bool)
                mask[list(observed)] = False
                candidates = np.flatnonzero(mask)
            else:
                candidates = np.arange(num_items)
        # The protocol expects the positive at index 0 and all other
        # candidates after it.
        others = candidates[candidates != positive_item]
        return np.concatenate([[positive_item], others]).astype(np.int64)

    def _evaluate_holdout(self, model: RecommenderModel, holdout: Dict) -> EvaluationResult:
        accumulator = MetricAccumulator(cutoffs=self.cutoffs)
        model.eval()
        model.prepare_for_evaluation()
        for user in sorted(holdout):
            behavior = holdout[user]
            candidates = self._candidates(user, behavior.item)
            scores = np.asarray(model.rank_scores(user, candidates), dtype=np.float64)
            positive_score = scores[0]
            better = int(np.sum(scores > positive_score))
            ties = int(np.sum(scores == positive_score)) - 1
            accumulator.add(better + ties)
        model.train()
        return EvaluationResult(
            metrics=accumulator.results(),
            ranks=np.asarray(accumulator.ranks),
            num_users=accumulator.num_users,
        )

    def evaluate_test(self, model: RecommenderModel) -> EvaluationResult:
        """Evaluate on the test holdout against the full catalog."""
        return self._evaluate_holdout(model, self.split.test)

    def evaluate_validation(self, model: RecommenderModel) -> EvaluationResult:
        """Evaluate on the validation holdout against the full catalog."""
        return self._evaluate_holdout(model, self.split.validation)
