"""The :class:`GroupBuyingDataset` container.

Holds the three inputs of the problem formulation in Section II of the
paper — the behavior set ``B``, the social network ``S`` and the user/item
universes — and exposes the derived structures every model needs: the
success/failure split of ``B``, sparse matrices, per-user friend lists and
per-user interacted-item sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from .schema import GroupBuyingBehavior, SocialEdge

__all__ = ["GroupBuyingDataset", "observed_item_matrix"]


def observed_item_matrix(
    interactions: Dict[int, Set[int]], num_users: int, num_items: int
) -> sp.csr_matrix:
    """Boolean ``users x items`` membership matrix over an interaction dict.

    The shared building block for every vectorized observed-item lookup:
    batch negative sampling, the batched full-ranking evaluator's exclusion
    mask, and the serving layer's already-bought filter all row-slice this
    matrix instead of testing per-user Python sets.
    """
    rows = []
    cols = []
    for user, items in interactions.items():
        rows.extend([user] * len(items))
        cols.extend(items)
    data = np.ones(len(rows), dtype=bool)
    return sp.csr_matrix((data, (rows, cols)), shape=(num_users, num_items), dtype=bool)


class GroupBuyingDataset:
    """Behaviors ``B`` + social network ``S`` over ``P`` users and ``Q`` items."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        behaviors: Sequence[GroupBuyingBehavior],
        social_edges: Sequence[SocialEdge],
        name: str = "group-buying",
    ) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ValueError("the dataset must contain at least one user and one item")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.name = name
        self.behaviors: Tuple[GroupBuyingBehavior, ...] = tuple(behaviors)
        self.social_edges: Tuple[SocialEdge, ...] = tuple(dict.fromkeys(social_edges))
        self._validate()
        self._friends_cache: Optional[List[np.ndarray]] = None
        self._social_matrix_cache: Optional[sp.csr_matrix] = None
        #: Filled lazily by :func:`repro.persist.fingerprint.dataset_fingerprint`;
        #: safe to cache because behaviors/edges are immutable tuples.
        self._fingerprint_cache: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Validation and construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for behavior in self.behaviors:
            if behavior.initiator >= self.num_users:
                raise ValueError(f"initiator {behavior.initiator} out of range (P={self.num_users})")
            if behavior.item >= self.num_items:
                raise ValueError(f"item {behavior.item} out of range (Q={self.num_items})")
            for participant in behavior.participants:
                if participant >= self.num_users:
                    raise ValueError(f"participant {participant} out of range (P={self.num_users})")
        for edge in self.social_edges:
            if edge.user_b >= self.num_users:
                raise ValueError(f"social edge {edge.as_tuple()} out of range (P={self.num_users})")

    @classmethod
    def from_arrays(
        cls,
        num_users: int,
        num_items: int,
        initiators: Sequence[int],
        items: Sequence[int],
        participant_lists: Sequence[Sequence[int]],
        thresholds: Sequence[int],
        social_pairs: Sequence[Tuple[int, int]],
        name: str = "group-buying",
    ) -> "GroupBuyingDataset":
        """Build a dataset from parallel arrays (the on-disk format)."""
        behaviors = [
            GroupBuyingBehavior(initiator=int(m), item=int(n), participants=tuple(p), threshold=int(t))
            for m, n, p, t in zip(initiators, items, participant_lists, thresholds)
        ]
        edges = [SocialEdge(int(a), int(b)) for a, b in social_pairs]
        return cls(num_users, num_items, behaviors, edges, name=name)

    # ------------------------------------------------------------------
    # Success / failure split
    # ------------------------------------------------------------------
    @property
    def successful_behaviors(self) -> List[GroupBuyingBehavior]:
        """``B+``: behaviors that clinched."""
        return [b for b in self.behaviors if b.is_successful]

    @property
    def failed_behaviors(self) -> List[GroupBuyingBehavior]:
        """``B-``: behaviors that did not gather enough participants."""
        return [b for b in self.behaviors if not b.is_successful]

    @property
    def num_behaviors(self) -> int:
        return len(self.behaviors)

    @property
    def num_social_edges(self) -> int:
        return len(self.social_edges)

    # ------------------------------------------------------------------
    # Social network
    # ------------------------------------------------------------------
    def social_matrix(self) -> sp.csr_matrix:
        """The symmetric binary ``P x P`` matrix ``S`` from the paper."""
        if self._social_matrix_cache is None:
            if self.social_edges:
                row_idx = np.concatenate([[e.user_a for e in self.social_edges], [e.user_b for e in self.social_edges]])
                col_idx = np.concatenate([[e.user_b for e in self.social_edges], [e.user_a for e in self.social_edges]])
                values = np.ones(len(row_idx), dtype=np.float64)
                matrix = sp.coo_matrix(
                    (values, (row_idx, col_idx)), shape=(self.num_users, self.num_users)
                ).tocsr()
                matrix.data[:] = 1.0
            else:
                matrix = sp.csr_matrix((self.num_users, self.num_users), dtype=np.float64)
            self._social_matrix_cache = matrix
        return self._social_matrix_cache

    def friends_of(self, user: int) -> np.ndarray:
        """IDs of the user's friends in the social network."""
        return self.friend_lists()[user]

    def friend_lists(self) -> List[np.ndarray]:
        """Friend ID arrays for every user (cached)."""
        if self._friends_cache is None:
            adjacency: List[List[int]] = [[] for _ in range(self.num_users)]
            for edge in self.social_edges:
                adjacency[edge.user_a].append(edge.user_b)
                adjacency[edge.user_b].append(edge.user_a)
            self._friends_cache = [np.asarray(sorted(set(f)), dtype=np.int64) for f in adjacency]
        return self._friends_cache

    # ------------------------------------------------------------------
    # Interaction views
    # ------------------------------------------------------------------
    def initiator_item_pairs(self) -> np.ndarray:
        """``(num_behaviors, 2)`` array of (initiator, item) interactions."""
        if not self.behaviors:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray([(b.initiator, b.item) for b in self.behaviors], dtype=np.int64)

    def participant_item_pairs(self) -> np.ndarray:
        """``(sum |M_p|, 2)`` array of (participant, item) interactions."""
        pairs = [(p, b.item) for b in self.behaviors for p in b.participants]
        if not pairs:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)

    def user_item_set(self, include_participants: bool = True) -> Dict[int, Set[int]]:
        """Per-user set of interacted items (used to avoid false negatives)."""
        interactions: Dict[int, Set[int]] = {}
        for behavior in self.behaviors:
            interactions.setdefault(behavior.initiator, set()).add(behavior.item)
            if include_participants:
                for participant in behavior.participants:
                    interactions.setdefault(participant, set()).add(behavior.item)
        return interactions

    def items_of_initiator(self, user: int) -> Set[int]:
        """Items the user interacted with as an initiator."""
        return {b.item for b in self.behaviors if b.initiator == user}

    def behaviors_of_initiator(self) -> Dict[int, List[GroupBuyingBehavior]]:
        """Group the behavior list by initiator (used by the splitter)."""
        grouped: Dict[int, List[GroupBuyingBehavior]] = {}
        for behavior in self.behaviors:
            grouped.setdefault(behavior.initiator, []).append(behavior)
        return grouped

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def with_behaviors(self, behaviors: Sequence[GroupBuyingBehavior], name: Optional[str] = None) -> "GroupBuyingDataset":
        """Return a dataset with the same universe/social net but new behaviors."""
        return GroupBuyingDataset(
            num_users=self.num_users,
            num_items=self.num_items,
            behaviors=behaviors,
            social_edges=self.social_edges,
            name=name or self.name,
        )

    def __len__(self) -> int:
        return len(self.behaviors)

    def __repr__(self) -> str:
        return (
            f"GroupBuyingDataset(name={self.name!r}, users={self.num_users}, "
            f"items={self.num_items}, behaviors={self.num_behaviors}, "
            f"social_edges={self.num_social_edges})"
        )
