"""Scenario engine, part 1: streaming synthetic populations at scale.

``data/synthetic.py`` simulates the paper's causal structure faithfully but
pays for it with per-behavior Python loops, per-edge dataclass objects and a
global clinch-ratio calibration — fine at its 600-user default, hopeless at
the "millions of users" scale the serving stack (IVF retrieval, worker
pools, resilience) is built for.  This module is the scale-first sibling:
a **block-streaming, fully vectorized** generator whose structure is
*controllable* rather than simulated —

* **Zipf popularity skew** — items are chosen rank-by-popularity with a
  configurable tail exponent (``item_exponent``), the flash-sale-friendly
  head-heavy catalog the paper's group-buying setting implies;
* **clustered social graph** — a planted-partition wiring: every user
  belongs to community ``user % num_communities`` and a configurable share
  of friendships (``community_mix``) stays inside the community, giving the
  homophilous-cluster shape social recommenders exploit without ever
  touching an O(P²) similarity path;
* **initiator/participant role mix** — a seeded Bernoulli role per user
  (``initiator_fraction``) mirrors the paper's two-view design: only
  initiator-role users launch groups, everyone may join one;
* **latent affinity** — low-dimensional user/item factors (community-pulled
  for users) drive join decisions, so any sub-scale slice still carries
  collaborative-filtering signal a model can learn.

Everything is generated **in blocks** of ``block_size`` users/behaviors
with one independent, ``SeedSequence``-derived RNG stream per (component,
block): a 1M-user population is a sequence of bounded vectorized passes
(O(U + E + B·max_invited) total, never quadratic), and the result is
byte-identical for the same :class:`ScenarioConfig` across runs, processes
and ``spawn`` boundaries — :meth:`SyntheticPopulation.digest` is the
contract the golden-seed tests pin.

The population lives in flat numpy arrays (ragged participants via
indptr), not Python objects; :meth:`SyntheticPopulation.to_dataset`
materializes any *sub-scale* prefix slice as a regular
:class:`~repro.data.dataset.GroupBuyingDataset` for training, and
``repro.serving.loadgen`` turns the same population into timestamped
request traffic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior, SocialEdge

__all__ = [
    "ScenarioConfig",
    "SyntheticPopulation",
    "PopulationGenerator",
    "generate_population",
    "fit_zipf_exponent",
]

# Stream ids for per-(component, block) RNG derivation.  Appending to this
# list is safe; reordering or renumbering changes every digest.
_STREAM_GLOBAL = 0      # item factors, thresholds, community centroids
_STREAM_ROLES = 1       # per-user-block roles
_STREAM_LATENT = 2      # per-user-block latent factors
_STREAM_EDGES = 3       # per-user-block friendship stubs
_STREAM_BEHAVIORS = 4   # per-behavior-block launches
_STREAM_JOINS = 5       # per-behavior-block participant joins


def _rng(seed: int, *spawn_key: int) -> np.random.Generator:
    """An independent generator for one (component, block) cell.

    ``SeedSequence`` spawn keys are part of numpy's stability contract:
    the same ``(seed, spawn_key)`` yields the same stream on every
    platform and in every process, which is what makes block-parallel or
    cross-process generation byte-identical to the sequential run.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=spawn_key))


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf pmf over ranks ``0..n-1`` (rank 0 most popular)."""
    weights = np.power(np.arange(1, n + 1, dtype=np.float64), -exponent)
    return weights / weights.sum()


def fit_zipf_exponent(counts: np.ndarray, max_ranks: int = 1000) -> float:
    """Least-squares Zipf tail exponent of an empirical count vector.

    Sorts ``counts`` descending and fits ``log(count) ~ -a * log(rank)``
    over the non-zero head (at most ``max_ranks`` ranks), returning the
    estimated exponent ``a``.  Used by the property suite to verify the
    generated popularity skew tracks ``ScenarioConfig.item_exponent``.

    >>> rng = np.random.default_rng(0)
    >>> draws = rng.choice(500, size=20_000, p=_zipf_probabilities(500, 1.2))
    >>> 0.9 < fit_zipf_exponent(np.bincount(draws)) < 1.5
    True
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    counts = counts[counts > 0][:max_ranks]
    if counts.size < 3:
        raise ValueError("need at least 3 non-zero counts to fit a tail exponent")
    log_rank = np.log(np.arange(1, counts.size + 1, dtype=np.float64))
    log_count = np.log(counts)
    slope = np.polyfit(log_rank, log_count, deg=1)[0]
    return float(-slope)


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of a streaming synthetic population.

    Extensive counts (users, items, behaviors) set the scale; everything
    else is *intensive* structure that holds at any scale.  All randomness
    derives from ``seed`` via per-(component, block) ``SeedSequence``
    spawn keys, so ``block_size`` is part of the deterministic identity of
    the population (same config → byte-identical population).
    """

    num_users: int = 100_000
    num_items: int = 10_000
    num_behaviors: int = 200_000
    #: Planted-partition communities; user ``u`` belongs to ``u % num_communities``.
    num_communities: int = 50
    #: Mean friendships per user (each user proposes ``mean_friends / 2`` stubs).
    mean_friends: float = 8.0
    #: Probability a friendship stub stays inside the proposer's community.
    community_mix: float = 0.8
    #: Share of users with the initiator role (the paper's two-view mix).
    initiator_fraction: float = 0.3
    #: Zipf tail exponent of item popularity (launch-choice skew).
    item_exponent: float = 1.1
    #: Zipf tail exponent of initiator activity (who launches how often).
    activity_exponent: float = 0.8
    #: Latent dimensionality behind join decisions (CF signal strength).
    latent_dim: int = 8
    #: How strongly a user's latent vector is pulled to their community centroid.
    community_pull: float = 0.6
    #: Base join probability, modulated by latent affinity.
    join_probability: float = 0.5
    #: Affinity modulation amplitude (0 = joins ignore the latent space).
    affinity_gain: float = 0.25
    #: Per-item clinch threshold range (inclusive).
    min_threshold: int = 1
    max_threshold: int = 3
    #: Friends invited per launch (capped window of the friend list).
    max_invited: int = 10
    #: Users/behaviors generated per vectorized block.
    block_size: int = 100_000
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ValueError("need at least 2 users")
        if self.num_items < 1:
            raise ValueError("need at least 1 item")
        if self.num_behaviors < 1:
            raise ValueError("need at least 1 behavior")
        if not 1 <= self.num_communities <= self.num_users:
            raise ValueError(
                f"num_communities must be in [1, num_users], got {self.num_communities}"
            )
        if not 0.0 <= self.mean_friends < self.num_users:
            raise ValueError("mean_friends must be >= 0 and below num_users")
        if not 0.0 <= self.community_mix <= 1.0:
            raise ValueError("community_mix must be in [0, 1]")
        if not 0.0 <= self.initiator_fraction <= 1.0:
            raise ValueError("initiator_fraction must be in [0, 1]")
        if self.item_exponent < 0.0 or self.activity_exponent < 0.0:
            raise ValueError("Zipf exponents must be >= 0")
        if self.latent_dim < 1:
            raise ValueError("latent_dim must be >= 1")
        if not 0.0 < self.join_probability < 1.0:
            raise ValueError("join_probability must be strictly between 0 and 1")
        if self.min_threshold < 1 or self.max_threshold < self.min_threshold:
            raise ValueError("invalid threshold range")
        if self.max_invited < 1:
            raise ValueError("max_invited must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")

    @classmethod
    def small(cls, seed: int = 2021) -> "ScenarioConfig":
        """A unit-test-sized population (fractions of a second to generate)."""
        return cls(
            num_users=400,
            num_items=120,
            num_behaviors=1200,
            num_communities=8,
            block_size=128,
            seed=seed,
        )

    @classmethod
    def million_users(cls, seed: int = 2021) -> "ScenarioConfig":
        """The standing stress-rig scale: 1M users, head-heavy 50k-item catalog."""
        return cls(
            num_users=1_000_000,
            num_items=50_000,
            num_behaviors=2_000_000,
            num_communities=500,
            block_size=200_000,
            seed=seed,
        )

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Scale the extensive counts; intensive structure is preserved.

        Rejects factors that would push any count below its floor rather
        than silently clamping (the distortion ``BeibeiLikeConfig.scaled``
        historically allowed).
        """
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        num_users = int(round(self.num_users * factor))
        num_items = int(round(self.num_items * factor))
        num_behaviors = int(round(self.num_behaviors * factor))
        num_communities = min(self.num_communities, max(1, int(round(self.num_communities * factor))))
        if num_users < 2 or num_items < 1 or num_behaviors < 1:
            raise ValueError(
                f"factor {factor} scales the population below its floors "
                f"(users {num_users}, items {num_items}, behaviors {num_behaviors}); "
                f"build a small config explicitly instead"
            )
        if self.mean_friends >= num_users:
            raise ValueError(
                f"factor {factor} leaves mean_friends={self.mean_friends} "
                f">= num_users={num_users}; shrink mean_friends explicitly"
            )
        return replace(
            self,
            num_users=num_users,
            num_items=num_items,
            num_behaviors=num_behaviors,
            num_communities=num_communities,
        )


class SyntheticPopulation:
    """A generated population in flat arrays (no per-record Python objects).

    Produced by :class:`PopulationGenerator`.  Ragged participant lists are
    stored CSR-style (``participants_flat`` + ``participants_indptr``);
    the social graph is an ``(E, 2)`` array of unique undirected edges with
    ``edges[:, 0] < edges[:, 1]``.  All arrays use fixed dtypes so
    :meth:`digest` is platform-stable.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        roles: np.ndarray,
        edges: np.ndarray,
        initiators: np.ndarray,
        items: np.ndarray,
        thresholds: np.ndarray,
        participants_flat: np.ndarray,
        participants_indptr: np.ndarray,
    ) -> None:
        self.config = config
        self.roles = roles
        self.edges = edges
        self.initiators = initiators
        self.items = items
        self.thresholds = thresholds
        self.participants_flat = participants_flat
        self.participants_indptr = participants_indptr

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self.config.num_users

    @property
    def num_items(self) -> int:
        return self.config.num_items

    @property
    def num_behaviors(self) -> int:
        return int(self.initiators.size)

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def community(self) -> np.ndarray:
        """Community id per user (structural: ``user % num_communities``)."""
        return (
            np.arange(self.num_users, dtype=np.int64) % self.config.num_communities
        ).astype(np.int32)

    def participant_counts(self) -> np.ndarray:
        """Participants per behavior (``|M_p|``)."""
        return np.diff(self.participants_indptr)

    def success_mask(self) -> np.ndarray:
        """Which behaviors clinched (``|M_p| >= t_n``)."""
        return self.participant_counts() >= self.thresholds

    def item_frequencies(self) -> np.ndarray:
        """How often each item was launched (the empirical popularity skew)."""
        return np.bincount(self.items, minlength=self.num_items)

    def mean_degree(self) -> float:
        """Mean friendships per user."""
        return 2.0 * self.num_edges / self.num_users

    # ------------------------------------------------------------------
    # Determinism contract
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over the population's arrays and config identity.

        Byte-identical for the same :class:`ScenarioConfig` across runs,
        processes and ``spawn`` boundaries — the golden-seed determinism
        tests (and the ``WorkerPool`` replay path, which regenerates
        streams in spawned workers) pin this value.
        """
        sha = hashlib.sha256()
        sha.update(repr(self.config).encode())
        for array in (
            self.roles,
            self.edges,
            self.initiators,
            self.items,
            self.thresholds,
            self.participants_flat,
            self.participants_indptr,
        ):
            sha.update(np.ascontiguousarray(array).tobytes())
        return sha.hexdigest()

    # ------------------------------------------------------------------
    # Sub-scale materialization
    # ------------------------------------------------------------------
    def to_dataset(
        self,
        num_users: Optional[int] = None,
        num_items: Optional[int] = None,
        max_behaviors: Optional[int] = None,
        name: Optional[str] = None,
    ) -> GroupBuyingDataset:
        """Materialize a prefix slice as a :class:`GroupBuyingDataset`.

        The slice keeps users ``< num_users`` and items ``< num_items``:
        behaviors whose initiator or item falls outside are dropped,
        out-of-range participants are filtered from surviving behaviors,
        and only edges with both endpoints inside survive — so every
        slice, at any sub-scale, is a valid dataset (the property suite's
        invariant).  Object construction is O(slice), so training-sized
        slices of a million-user population stay cheap.
        """
        users = self.num_users if num_users is None else int(num_users)
        items = self.num_items if num_items is None else int(num_items)
        if not 1 <= users <= self.num_users:
            raise ValueError(f"num_users must be in [1, {self.num_users}], got {users}")
        if not 1 <= items <= self.num_items:
            raise ValueError(f"num_items must be in [1, {self.num_items}], got {items}")
        keep = np.flatnonzero((self.initiators < users) & (self.items < items))
        if max_behaviors is not None:
            keep = keep[: int(max_behaviors)]
        behaviors: List[GroupBuyingBehavior] = []
        flat = self.participants_flat
        indptr = self.participants_indptr
        for index in keep:
            participants = flat[indptr[index] : indptr[index + 1]]
            participants = participants[participants < users]
            behaviors.append(
                GroupBuyingBehavior(
                    initiator=int(self.initiators[index]),
                    item=int(self.items[index]),
                    participants=tuple(int(p) for p in participants),
                    threshold=int(self.thresholds[index]),
                )
            )
        inside = self.edges[(self.edges[:, 0] < users) & (self.edges[:, 1] < users)]
        social = [SocialEdge(int(a), int(b)) for a, b in inside]
        return GroupBuyingDataset(
            num_users=users,
            num_items=items,
            behaviors=behaviors,
            social_edges=social,
            name=name or f"scenario(seed={self.config.seed}, users={users}, items={items})",
        )

    def __repr__(self) -> str:
        return (
            f"SyntheticPopulation(users={self.num_users:,}, items={self.num_items:,}, "
            f"behaviors={self.num_behaviors:,}, edges={self.num_edges:,}, "
            f"seed={self.config.seed})"
        )


class PopulationGenerator:
    """Generates a :class:`SyntheticPopulation` block by block.

    Usage::

        population = PopulationGenerator(ScenarioConfig.million_users()).generate()
        dataset = population.to_dataset(num_users=2000, num_items=1500)

    Every pass is a bounded vectorized block: roles and latent factors per
    user block, friendship stubs per user block (deduplicated once,
    globally), launches per behavior block, joins per behavior block over
    a CSR adjacency.  Nothing is O(num_users²) or O(num_behaviors ·
    num_users).
    """

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        #: Block spans of the last :meth:`generate` call (observability).
        self.user_blocks_generated = 0
        self.behavior_blocks_generated = 0

    # ------------------------------------------------------------------
    # Block iteration
    # ------------------------------------------------------------------
    def _blocks(self, total: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(block_index, lo, hi)`` spans of ``block_size``."""
        size = self.config.block_size
        for block_index, lo in enumerate(range(0, total, size)):
            yield block_index, lo, min(lo + size, total)

    # ------------------------------------------------------------------
    # Per-component block passes
    # ------------------------------------------------------------------
    def _roles(self) -> np.ndarray:
        cfg = self.config
        roles = np.zeros(cfg.num_users, dtype=np.int8)
        for block, lo, hi in self._blocks(cfg.num_users):
            rng = _rng(cfg.seed, _STREAM_ROLES, block)
            roles[lo:hi] = rng.random(hi - lo) < cfg.initiator_fraction
            self.user_blocks_generated += 1
        if not roles.any():
            # A population with zero initiators cannot launch anything;
            # deterministically promote user 0 (matters only for tiny
            # populations or initiator_fraction ~ 0).
            roles[0] = 1
        return roles

    def _latent(self, centroids: np.ndarray) -> np.ndarray:
        cfg = self.config
        latent = np.empty((cfg.num_users, cfg.latent_dim), dtype=np.float32)
        for block, lo, hi in self._blocks(cfg.num_users):
            rng = _rng(cfg.seed, _STREAM_LATENT, block)
            noise = rng.normal(0.0, 1.0, size=(hi - lo, cfg.latent_dim))
            communities = np.arange(lo, hi, dtype=np.int64) % cfg.num_communities
            latent[lo:hi] = (
                cfg.community_pull * centroids[communities]
                + (1.0 - cfg.community_pull) * noise
            ).astype(np.float32)
        return latent

    def _community_member_count(self, communities: np.ndarray) -> np.ndarray:
        """Members of each community ``c``: ``{c, c+C, c+2C, ...} ∩ [0, U)``."""
        cfg = self.config
        return (cfg.num_users - communities - 1) // cfg.num_communities + 1

    def _edges(self) -> np.ndarray:
        """Planted-partition friendships: block stubs, one global dedup."""
        cfg = self.config
        chunks: List[np.ndarray] = []
        for block, lo, hi in self._blocks(cfg.num_users):
            rng = _rng(cfg.seed, _STREAM_EDGES, block)
            out_degree = rng.poisson(cfg.mean_friends / 2.0, size=hi - lo)
            src = np.repeat(np.arange(lo, hi, dtype=np.int64), out_degree)
            if src.size == 0:
                continue
            partners = np.empty(src.size, dtype=np.int64)
            intra = rng.random(src.size) < cfg.community_mix
            # Intra-community partner: the j-th member of the proposer's
            # community is c + j*C — O(1) addressing, no member lists.
            communities = src[intra] % cfg.num_communities
            counts = self._community_member_count(communities)
            member = np.floor(rng.random(communities.size) * counts).astype(np.int64)
            partners[intra] = communities + member * cfg.num_communities
            partners[~intra] = rng.integers(0, cfg.num_users, size=int((~intra).sum()))
            keep = partners != src  # no self-loops
            low = np.minimum(src[keep], partners[keep])
            high = np.maximum(src[keep], partners[keep])
            chunks.append(np.stack([low, high], axis=1))
        if not chunks:
            return np.zeros((0, 2), dtype=np.int64)
        stacked = np.concatenate(chunks, axis=0)
        # One global dedup over packed (a, b) keys: O(E log E), the most
        # expensive pass of the generator and still far from quadratic.
        keys = stacked[:, 0] * np.int64(cfg.num_users) + stacked[:, 1]
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        unique = np.ones(keys.size, dtype=bool)
        unique[1:] = keys[1:] != keys[:-1]
        return stacked[order[unique]]

    @staticmethod
    def _adjacency(edges: np.ndarray, num_users: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency (indptr, flat neighbor ids) from the edge array."""
        endpoints = np.concatenate([edges[:, 0], edges[:, 1]])
        neighbors = np.concatenate([edges[:, 1], edges[:, 0]])
        degree = np.bincount(endpoints, minlength=num_users)
        indptr = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        order = np.argsort(endpoints, kind="stable")
        return indptr, neighbors[order].astype(np.int64)

    def _launches(
        self, initiator_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-behavior (initiator, item) choices, block by block."""
        cfg = self.config
        activity = _zipf_probabilities(initiator_ids.size, cfg.activity_exponent)
        popularity = _zipf_probabilities(cfg.num_items, cfg.item_exponent)
        initiators = np.empty(cfg.num_behaviors, dtype=np.int64)
        items = np.empty(cfg.num_behaviors, dtype=np.int64)
        for block, lo, hi in self._blocks(cfg.num_behaviors):
            rng = _rng(cfg.seed, _STREAM_BEHAVIORS, block)
            picks = rng.choice(initiator_ids.size, size=hi - lo, p=activity)
            initiators[lo:hi] = initiator_ids[picks]
            items[lo:hi] = rng.choice(cfg.num_items, size=hi - lo, p=popularity)
            self.behavior_blocks_generated += 1
        return initiators, items

    def _joins(
        self,
        initiators: np.ndarray,
        items: np.ndarray,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        latent: np.ndarray,
        item_factors: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized participant sampling per behavior block.

        Each launch invites a circular window of at most ``max_invited``
        friends starting at a seeded offset (distinct by construction — no
        per-behavior dedup pass), and each invitee joins with a base
        probability modulated by their latent affinity to the item.
        """
        cfg = self.config
        counts_per_behavior = np.zeros(cfg.num_behaviors, dtype=np.int64)
        flat_chunks: List[np.ndarray] = []
        scale = 1.0 / np.sqrt(cfg.latent_dim)
        for block, lo, hi in self._blocks(cfg.num_behaviors):
            rng = _rng(cfg.seed, _STREAM_JOINS, block)
            block_initiators = initiators[lo:hi]
            degree = indptr[block_initiators + 1] - indptr[block_initiators]
            invited_counts = np.minimum(degree, cfg.max_invited)
            offsets = np.floor(rng.random(hi - lo) * np.maximum(degree, 1)).astype(np.int64)
            total = int(invited_counts.sum())
            if total == 0:
                continue
            behavior_of_invite = np.repeat(np.arange(hi - lo), invited_counts)
            starts = np.zeros(hi - lo, dtype=np.int64)
            np.cumsum(invited_counts[:-1], out=starts[1:])
            within = np.arange(total, dtype=np.int64) - starts[behavior_of_invite]
            position = (offsets[behavior_of_invite] + within) % degree[behavior_of_invite]
            invited = neighbors[indptr[block_initiators][behavior_of_invite] + position]
            affinity = (
                latent[invited].astype(np.float64)
                * item_factors[items[lo:hi][behavior_of_invite]].astype(np.float64)
            ).sum(axis=1) * scale
            probability = np.clip(
                cfg.join_probability + cfg.affinity_gain * np.tanh(affinity), 0.02, 0.98
            )
            joined = rng.random(total) < probability
            counts_per_behavior[lo:hi] = np.bincount(
                behavior_of_invite, weights=joined, minlength=hi - lo
            ).astype(np.int64)
            flat_chunks.append(invited[joined].astype(np.int32))
        indptr_out = np.zeros(cfg.num_behaviors + 1, dtype=np.int64)
        np.cumsum(counts_per_behavior, out=indptr_out[1:])
        flat = (
            np.concatenate(flat_chunks) if flat_chunks else np.zeros(0, dtype=np.int32)
        )
        return flat, indptr_out

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> SyntheticPopulation:
        """Generate the full population deterministically from the config."""
        cfg = self.config
        self.user_blocks_generated = 0
        self.behavior_blocks_generated = 0
        global_rng = _rng(cfg.seed, _STREAM_GLOBAL)
        centroids = global_rng.normal(0.0, 1.0, size=(cfg.num_communities, cfg.latent_dim))
        item_factors = global_rng.normal(0.0, 1.0, size=(cfg.num_items, cfg.latent_dim)).astype(
            np.float32
        )
        item_thresholds = global_rng.integers(
            cfg.min_threshold, cfg.max_threshold + 1, size=cfg.num_items
        ).astype(np.int16)

        roles = self._roles()
        latent = self._latent(centroids)
        edges = self._edges()
        indptr, neighbors = self._adjacency(edges, cfg.num_users)
        initiator_ids = np.flatnonzero(roles).astype(np.int64)
        initiators, items = self._launches(initiator_ids)
        participants_flat, participants_indptr = self._joins(
            initiators, items, indptr, neighbors, latent, item_factors
        )
        return SyntheticPopulation(
            config=cfg,
            roles=roles,
            edges=edges,
            initiators=initiators,
            items=items,
            thresholds=item_thresholds[items].astype(np.int16),
            participants_flat=participants_flat,
            participants_indptr=participants_indptr,
        )


def generate_population(config: Optional[ScenarioConfig] = None) -> SyntheticPopulation:
    """Convenience wrapper: generate a population from ``config`` (or defaults).

    >>> population = generate_population(ScenarioConfig.small(seed=7))
    >>> population.num_users, population.num_items
    (400, 120)
    >>> population.digest() == generate_population(ScenarioConfig.small(seed=7)).digest()
    True
    >>> dataset = population.to_dataset(num_users=100, num_items=40)
    >>> dataset.num_users, dataset.num_items
    (100, 40)
    """
    return PopulationGenerator(config).generate()
