"""Negative sampling for training and evaluation.

Two distinct samplers are needed:

* :class:`TrainingNegativeSampler` draws ``k`` unobserved items per
  observed behavior when constructing mini-batches (the paper uses a 1:1
  ratio).
* :class:`EvaluationCandidateSampler` draws the 999 unobserved items that
  are ranked together with the held-out test item (Section IV-A2).

Both samplers use *vectorized rejection sampling*: whole arrays of
candidates are drawn at once and filtered against the observed-interaction
structure with NumPy set operations, instead of testing candidates one by
one in a Python loop.  Batch membership tests go through a boolean CSR
``users x items`` matrix so a full mini-batch is resampled in a handful of
array operations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from ..utils.rng import make_rng
from .dataset import GroupBuyingDataset, observed_item_matrix

__all__ = ["TrainingNegativeSampler", "EvaluationCandidateSampler"]


def _ordered_unique(values: np.ndarray) -> np.ndarray:
    """Unique values of ``values`` in order of first occurrence."""
    _, first_positions = np.unique(values, return_index=True)
    return values[np.sort(first_positions)]


class TrainingNegativeSampler:
    """Samples unobserved items for (user, positive item) training pairs."""

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        num_items: Optional[int] = None,
        seed: int = 0,
        include_participants: bool = True,
    ) -> None:
        self.num_items = num_items or dataset.num_items
        self._interactions = dataset.user_item_set(include_participants=include_participants)
        self._rng = make_rng(seed)
        # The membership matrix spans the declared item universe even when it
        # is larger than the dataset's, so candidate lookups never go out of
        # bounds.
        self._matrix = observed_item_matrix(
            self._interactions, dataset.num_users, max(dataset.num_items, self.num_items)
        )
        #: Per-user observed count, clipped to the declared item universe so a
        #: smaller ``num_items`` override still detects exhausted users.
        self._observed_counts = np.zeros(dataset.num_users, dtype=np.int64)
        for user, items in self._interactions.items():
            self._observed_counts[user] = sum(1 for item in items if item < self.num_items)

    def observed_items(self, user: int) -> Set[int]:
        """Items the user has interacted with in the training data."""
        return self._interactions.get(user, set())

    def sample(self, user: int, count: int = 1) -> np.ndarray:
        """Draw ``count`` items the user has not interacted with."""
        observed = self._interactions.get(user, set())
        # Same (clipped) exhaustion criterion as ``sample_batch``: only
        # observed items inside the declared universe block sampling.
        if 0 <= user < self._observed_counts.size and self._observed_counts[user] >= self.num_items:
            raise ValueError(f"user {user} has interacted with every item; cannot sample negatives")
        observed_array = np.fromiter(observed, dtype=np.int64, count=len(observed))
        negatives = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            candidates = self._rng.integers(0, self.num_items, size=max(2 * (count - filled), 8))
            accepted = candidates[~np.isin(candidates, observed_array)][: count - filled]
            negatives[filled : filled + accepted.size] = accepted
            filled += accepted.size
        return negatives

    def sample_batch(self, users: Sequence[int], count: int = 1) -> np.ndarray:
        """One row of ``count`` negatives per user, resampled as one block.

        Rejection sampling over the whole ``(len(users), count)`` block: all
        still-unfilled cells draw a candidate in one call, and a single
        sparse-matrix lookup rejects the candidates their user has observed.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.size == 0:
            return np.zeros((0, count), dtype=np.int64)
        # Unknown user ids (outside the dataset universe) have no observed
        # items and sample freely, exactly like the per-user ``sample`` path.
        known = (users >= 0) & (users < self._observed_counts.size)
        exhausted = np.zeros(users.size, dtype=bool)
        exhausted[known] = self._observed_counts[users[known]] >= self.num_items
        if exhausted.any():
            user = int(users[int(np.argmax(exhausted))])
            raise ValueError(f"user {user} has interacted with every item; cannot sample negatives")

        negatives = np.empty((users.size, count), dtype=np.int64)
        pending_rows = np.repeat(np.arange(users.size), count)
        pending_cols = np.tile(np.arange(count), users.size)
        while pending_rows.size:
            candidates = self._rng.integers(0, self.num_items, size=pending_rows.size)
            rejected = np.zeros(pending_rows.size, dtype=bool)
            checkable = known[pending_rows]
            if checkable.any():
                rejected[checkable] = np.asarray(
                    self._matrix[users[pending_rows[checkable]], candidates[checkable]]
                ).ravel()
            negatives[pending_rows, pending_cols] = candidates
            pending_rows = pending_rows[rejected]
            pending_cols = pending_cols[rejected]
        return negatives


class EvaluationCandidateSampler:
    """Builds the 999-negative candidate list per test user.

    Candidate lists are sampled once (per seed) and cached so that every
    model is evaluated against exactly the same ranking task, as the paper
    requires for a fair comparison.
    """

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        num_negatives: int = 999,
        seed: int = 0,
        include_participants: bool = True,
    ) -> None:
        self.dataset = dataset
        self.num_negatives = num_negatives
        self.seed = seed
        self._interactions = dataset.user_item_set(include_participants=include_participants)
        self._cache: Dict[int, np.ndarray] = {}

    def candidates_for(self, user: int, positive_item: int) -> np.ndarray:
        """Return ``[positive_item, negative_1, ..., negative_K]`` for ``user``."""
        key = user
        if key not in self._cache:
            rng = make_rng((self.seed, user))
            observed = self._interactions.get(user, set())
            observed_array = np.fromiter(observed, dtype=np.int64, count=len(observed))
            available = self.dataset.num_items - len(observed)
            count = min(self.num_negatives, max(available - 1, 0))
            negatives = np.zeros(0, dtype=np.int64)
            while negatives.size < count:
                batch = rng.integers(
                    0, self.dataset.num_items, size=max(4 * (count - negatives.size), 16)
                )
                fresh = batch[~np.isin(batch, observed_array) & ~np.isin(batch, negatives)]
                negatives = np.concatenate([negatives, _ordered_unique(fresh)])[:count]
            self._cache[key] = negatives
        negatives = self._cache[key]
        negatives = negatives[negatives != positive_item]
        return np.concatenate([[positive_item], negatives]).astype(np.int64)
