"""Negative sampling for training and evaluation.

Two distinct samplers are needed:

* :class:`TrainingNegativeSampler` draws ``k`` unobserved items per
  observed behavior when constructing mini-batches (the paper uses a 1:1
  ratio).
* :class:`EvaluationCandidateSampler` draws the 999 unobserved items that
  are ranked together with the held-out test item (Section IV-A2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..utils.rng import make_rng
from .dataset import GroupBuyingDataset

__all__ = ["TrainingNegativeSampler", "EvaluationCandidateSampler"]


class TrainingNegativeSampler:
    """Samples unobserved items for (user, positive item) training pairs."""

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        num_items: Optional[int] = None,
        seed: int = 0,
        include_participants: bool = True,
    ) -> None:
        self.num_items = num_items or dataset.num_items
        self._interactions = dataset.user_item_set(include_participants=include_participants)
        self._rng = make_rng(seed)

    def observed_items(self, user: int) -> Set[int]:
        """Items the user has interacted with in the training data."""
        return self._interactions.get(user, set())

    def sample(self, user: int, count: int = 1) -> np.ndarray:
        """Draw ``count`` items the user has not interacted with."""
        observed = self._interactions.get(user, set())
        if len(observed) >= self.num_items:
            raise ValueError(f"user {user} has interacted with every item; cannot sample negatives")
        negatives = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            candidates = self._rng.integers(0, self.num_items, size=max(2 * (count - filled), 8))
            for candidate in candidates:
                if int(candidate) in observed:
                    continue
                negatives[filled] = candidate
                filled += 1
                if filled == count:
                    break
        return negatives

    def sample_batch(self, users: Sequence[int], count: int = 1) -> np.ndarray:
        """Vectorized helper: one row of ``count`` negatives per user."""
        return np.stack([self.sample(int(user), count) for user in users])


class EvaluationCandidateSampler:
    """Builds the 999-negative candidate list per test user.

    Candidate lists are sampled once (per seed) and cached so that every
    model is evaluated against exactly the same ranking task, as the paper
    requires for a fair comparison.
    """

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        num_negatives: int = 999,
        seed: int = 0,
        include_participants: bool = True,
    ) -> None:
        self.dataset = dataset
        self.num_negatives = num_negatives
        self.seed = seed
        self._interactions = dataset.user_item_set(include_participants=include_participants)
        self._cache: Dict[int, np.ndarray] = {}

    def candidates_for(self, user: int, positive_item: int) -> np.ndarray:
        """Return ``[positive_item, negative_1, ..., negative_K]`` for ``user``."""
        key = user
        if key not in self._cache:
            rng = make_rng((self.seed, user))
            observed = self._interactions.get(user, set())
            available = self.dataset.num_items - len(observed)
            count = min(self.num_negatives, max(available - 1, 0))
            negatives: List[int] = []
            seen: Set[int] = set(observed)
            while len(negatives) < count:
                batch = rng.integers(0, self.dataset.num_items, size=max(4 * (count - len(negatives)), 16))
                for candidate in batch:
                    candidate = int(candidate)
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                    negatives.append(candidate)
                    if len(negatives) == count:
                        break
            self._cache[key] = np.asarray(negatives, dtype=np.int64)
        negatives = self._cache[key]
        negatives = negatives[negatives != positive_item]
        return np.concatenate([[positive_item], negatives]).astype(np.int64)
