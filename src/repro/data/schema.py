"""Core record types for group-buying behavioral data.

The paper (Section II) denotes one group-buying behavior as a triad
``b = <m_i, n, M_p>``: the initiator user, the target item and the set of
participants.  Each item carries a success threshold ``t_n``; a behavior is
successful when ``|M_p| >= t_n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

__all__ = ["GroupBuyingBehavior", "SocialEdge"]


@dataclass(frozen=True)
class GroupBuyingBehavior:
    """One group-buying behavior ``b = <m_i, n, M_p>`` with its threshold.

    Attributes
    ----------
    initiator:
        ID of the user who launched the group (``m_i``).
    item:
        ID of the target item (``n``).
    participants:
        IDs of users who joined the group (``M_p``), excluding the initiator.
    threshold:
        Minimum number of participants ``t_n`` required for the group to
        clinch.  The paper notes this is platform-set per item.
    """

    initiator: int
    item: int
    participants: Tuple[int, ...]
    threshold: int = 1

    def __post_init__(self) -> None:
        if self.initiator < 0:
            raise ValueError("initiator ID must be non-negative")
        if self.item < 0:
            raise ValueError("item ID must be non-negative")
        if self.threshold < 1:
            raise ValueError("threshold must be at least 1")
        participants = tuple(sorted(set(int(p) for p in self.participants)))
        if self.initiator in participants:
            raise ValueError("the initiator cannot also be a participant")
        if any(p < 0 for p in participants):
            raise ValueError("participant IDs must be non-negative")
        object.__setattr__(self, "participants", participants)

    @property
    def is_successful(self) -> bool:
        """Whether the group clinched (enough participants joined)."""
        return len(self.participants) >= self.threshold

    @property
    def group_size(self) -> int:
        """Number of users involved, counting the initiator."""
        return 1 + len(self.participants)

    @property
    def members(self) -> Tuple[int, ...]:
        """All involved users: the initiator followed by the participants."""
        return (self.initiator,) + self.participants

    def with_participants(self, participants: Iterable[int]) -> "GroupBuyingBehavior":
        """Return a copy of this behavior with a different participant set."""
        return GroupBuyingBehavior(
            initiator=self.initiator,
            item=self.item,
            participants=tuple(participants),
            threshold=self.threshold,
        )


@dataclass(frozen=True)
class SocialEdge:
    """An undirected friendship ``(user_a, user_b)`` in the social network."""

    user_a: int
    user_b: int

    def __post_init__(self) -> None:
        if self.user_a == self.user_b:
            raise ValueError("self-loops are not allowed in the social network")
        if self.user_a < 0 or self.user_b < 0:
            raise ValueError("user IDs must be non-negative")
        low, high = sorted((self.user_a, self.user_b))
        object.__setattr__(self, "user_a", low)
        object.__setattr__(self, "user_b", high)

    def as_tuple(self) -> Tuple[int, int]:
        """Return the normalized ``(low, high)`` pair."""
        return (self.user_a, self.user_b)

    def involves(self, user: int) -> bool:
        """Whether ``user`` is one of the two endpoints."""
        return user == self.user_a or user == self.user_b
