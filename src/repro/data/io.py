"""Serialization of group-buying datasets.

The authors released their dataset as text files; this module mirrors that
style with a simple, human-readable on-disk layout so users can plug in the
real Beibei dump (or any other group-buying log) without code changes:

* ``meta.json``        — ``{"num_users": P, "num_items": Q, "name": ...}``
* ``behaviors.tsv``    — ``initiator<TAB>item<TAB>threshold<TAB>p1,p2,...``
* ``social.tsv``       — ``user_a<TAB>user_b``
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior, SocialEdge

__all__ = ["save_dataset", "load_dataset"]

_META_FILE = "meta.json"
_BEHAVIORS_FILE = "behaviors.tsv"
_SOCIAL_FILE = "social.tsv"


def save_dataset(dataset: GroupBuyingDataset, directory: Union[str, Path]) -> Path:
    """Write ``dataset`` to ``directory`` (created if missing); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta = {
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "name": dataset.name,
    }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))

    behavior_lines: List[str] = []
    for behavior in dataset.behaviors:
        participants = ",".join(str(p) for p in behavior.participants)
        behavior_lines.append(f"{behavior.initiator}\t{behavior.item}\t{behavior.threshold}\t{participants}")
    (directory / _BEHAVIORS_FILE).write_text("\n".join(behavior_lines) + ("\n" if behavior_lines else ""))

    social_lines = [f"{edge.user_a}\t{edge.user_b}" for edge in dataset.social_edges]
    (directory / _SOCIAL_FILE).write_text("\n".join(social_lines) + ("\n" if social_lines else ""))
    return directory


def load_dataset(directory: Union[str, Path]) -> GroupBuyingDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"missing {meta_path}")
    meta = json.loads(meta_path.read_text())

    behaviors: List[GroupBuyingBehavior] = []
    behaviors_path = directory / _BEHAVIORS_FILE
    if behaviors_path.exists():
        for line in behaviors_path.read_text().splitlines():
            if not line.strip():
                continue
            initiator, item, threshold, participants = line.split("\t")
            participant_ids = tuple(int(p) for p in participants.split(",") if p != "")
            behaviors.append(
                GroupBuyingBehavior(
                    initiator=int(initiator),
                    item=int(item),
                    participants=participant_ids,
                    threshold=int(threshold),
                )
            )

    edges: List[SocialEdge] = []
    social_path = directory / _SOCIAL_FILE
    if social_path.exists():
        for line in social_path.read_text().splitlines():
            if not line.strip():
                continue
            user_a, user_b = line.split("\t")
            edges.append(SocialEdge(int(user_a), int(user_b)))

    return GroupBuyingDataset(
        num_users=int(meta["num_users"]),
        num_items=int(meta["num_items"]),
        behaviors=behaviors,
        social_edges=edges,
        name=str(meta.get("name", directory.name)),
    )
