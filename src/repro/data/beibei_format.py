"""Reader/writer for the authors' released dataset layout.

The paper publishes its (ID-remapped) Beibei group-buying log at
https://github.com/Sweetnow/group-buying-recommendation.  That release uses
plain JSON-lines text files rather than this library's TSV layout
(:mod:`repro.data.io`):

* ``group_buying.jsonl`` — one JSON record per behavior::

      {"initiator": 12, "item": 345, "participants": [7, 19], "success": true}

  ``threshold`` is optional; when missing it is reconstructed from the
  ``success`` flag (``len(participants)`` for successful behaviors,
  ``len(participants) + 1`` for failed ones), which preserves the
  success/failure split exactly even though the platform's true per-item
  thresholds are not published.

* ``social_network.jsonl`` — one JSON adjacency record per user::

      {"user": 12, "friends": [7, 19, 23]}

Both loaders are tolerant of blank lines and infer the user/item universe
sizes when they are not given explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior, SocialEdge

__all__ = [
    "BEHAVIORS_FILENAME",
    "SOCIAL_FILENAME",
    "load_beibei_format",
    "save_beibei_format",
]

BEHAVIORS_FILENAME = "group_buying.jsonl"
SOCIAL_FILENAME = "social_network.jsonl"


def _reconstruct_threshold(record: Dict) -> int:
    """Threshold of one behavior record, derived from ``success`` if missing."""
    if "threshold" in record:
        threshold = int(record["threshold"])
        if threshold < 1:
            raise ValueError(f"invalid threshold {threshold} in record {record}")
        return threshold
    participants = record.get("participants", [])
    if bool(record.get("success", len(participants) > 0)):
        return max(len(participants), 1)
    return len(participants) + 1


def _parse_behavior(line: str, line_number: int) -> GroupBuyingBehavior:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"line {line_number}: not valid JSON: {error}") from error
    if not isinstance(record, dict) or "initiator" not in record or "item" not in record:
        raise ValueError(f"line {line_number}: behavior records need 'initiator' and 'item' keys")
    return GroupBuyingBehavior(
        initiator=int(record["initiator"]),
        item=int(record["item"]),
        participants=tuple(int(p) for p in record.get("participants", [])),
        threshold=_reconstruct_threshold(record),
    )


def _parse_social(line: str, line_number: int) -> Tuple[int, List[int]]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"line {line_number}: not valid JSON: {error}") from error
    if not isinstance(record, dict) or "user" not in record:
        raise ValueError(f"line {line_number}: social records need a 'user' key")
    return int(record["user"]), [int(f) for f in record.get("friends", [])]


def load_beibei_format(
    directory: Union[str, Path],
    num_users: Optional[int] = None,
    num_items: Optional[int] = None,
    name: Optional[str] = None,
) -> GroupBuyingDataset:
    """Load a dataset stored in the released JSON-lines layout.

    ``num_users`` / ``num_items`` default to one past the largest ID seen,
    which matches the released dump (IDs are contiguous after remapping).
    """
    directory = Path(directory)
    behaviors_path = directory / BEHAVIORS_FILENAME
    social_path = directory / SOCIAL_FILENAME
    if not behaviors_path.exists():
        raise FileNotFoundError(f"missing {behaviors_path}")

    behaviors: List[GroupBuyingBehavior] = []
    for line_number, line in enumerate(behaviors_path.read_text().splitlines(), start=1):
        if line.strip():
            behaviors.append(_parse_behavior(line, line_number))

    edge_set: Set[Tuple[int, int]] = set()
    if social_path.exists():
        for line_number, line in enumerate(social_path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            user, friends = _parse_social(line, line_number)
            for friend in friends:
                if friend == user:
                    continue
                edge_set.add((min(user, friend), max(user, friend)))
    edges = [SocialEdge(a, b) for a, b in sorted(edge_set)]

    max_user = max(
        [b.initiator for b in behaviors]
        + [p for b in behaviors for p in b.participants]
        + [e.user_b for e in edges]
        + [0]
    )
    max_item = max([b.item for b in behaviors] + [0])

    return GroupBuyingDataset(
        num_users=num_users if num_users is not None else max_user + 1,
        num_items=num_items if num_items is not None else max_item + 1,
        behaviors=behaviors,
        social_edges=edges,
        name=name or directory.name,
    )


def save_beibei_format(dataset: GroupBuyingDataset, directory: Union[str, Path]) -> Path:
    """Write ``dataset`` in the released JSON-lines layout; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    behavior_lines = [
        json.dumps(
            {
                "initiator": behavior.initiator,
                "item": behavior.item,
                "participants": list(behavior.participants),
                "threshold": behavior.threshold,
                "success": behavior.is_successful,
            }
        )
        for behavior in dataset.behaviors
    ]
    (directory / BEHAVIORS_FILENAME).write_text(
        "\n".join(behavior_lines) + ("\n" if behavior_lines else "")
    )

    friends = dataset.friend_lists()
    social_lines = [
        json.dumps({"user": user, "friends": friends[user].tolist()})
        for user in range(dataset.num_users)
        if friends[user].size
    ]
    (directory / SOCIAL_FILENAME).write_text(
        "\n".join(social_lines) + ("\n" if social_lines else "")
    )
    return directory
