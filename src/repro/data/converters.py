"""Conversions of group-buying behaviors into baseline-compatible formats.

Section IV-A1 of the paper describes two adaptations of the behavioral log:

* For collaborative-filtering and social-recommendation baselines the
  behaviors are flattened into pure user-item interactions, either keeping
  only the initiator-item pairs (``oi`` — the ``MF(oi)`` row of Table III)
  or treating both initiator-item and participant-item pairs as
  interactions (the unmarked rows).
* For group-recommendation baselines (AGREE, SIGR) each initiator together
  with the users who did group buying with them forms a fixed group, and
  each successful behavior becomes one activity of that group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior

__all__ = [
    "InteractionConversion",
    "to_user_item_interactions",
    "interaction_matrix",
    "FixedGroupDataset",
    "to_fixed_groups",
]


@dataclass
class InteractionConversion:
    """Flattened user-item interactions derived from group-buying behaviors."""

    num_users: int
    num_items: int
    #: ``(num_interactions, 2)`` array of (user, item) pairs, deduplicated.
    pairs: np.ndarray
    mode: str

    @property
    def num_interactions(self) -> int:
        return int(self.pairs.shape[0])

    def user_items(self) -> Dict[int, Set[int]]:
        """Per-user item sets."""
        mapping: Dict[int, Set[int]] = {}
        for user, item in self.pairs:
            mapping.setdefault(int(user), set()).add(int(item))
        return mapping

    def matrix(self) -> sp.csr_matrix:
        """Binary user-item interaction matrix."""
        return interaction_matrix(self.pairs, self.num_users, self.num_items)


def to_user_item_interactions(dataset: GroupBuyingDataset, mode: str = "both") -> InteractionConversion:
    """Flatten behaviors into user-item pairs.

    ``mode='oi'`` keeps only initiator-item interactions (conversion 1 in
    the paper); ``mode='both'`` also includes participant-item interactions
    (conversion 2, which the paper shows works much better).
    """
    if mode not in ("oi", "both"):
        raise ValueError("mode must be 'oi' or 'both'")
    pairs: Set[Tuple[int, int]] = set()
    for behavior in dataset.behaviors:
        pairs.add((behavior.initiator, behavior.item))
        if mode == "both":
            for participant in behavior.participants:
                pairs.add((participant, behavior.item))
    array = (
        np.asarray(sorted(pairs), dtype=np.int64) if pairs else np.zeros((0, 2), dtype=np.int64)
    )
    return InteractionConversion(
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        pairs=array,
        mode=mode,
    )


def interaction_matrix(pairs: np.ndarray, num_users: int, num_items: int) -> sp.csr_matrix:
    """Build a binary CSR user-item matrix from (user, item) pairs."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return sp.csr_matrix((num_users, num_items), dtype=np.float64)
    values = np.ones(pairs.shape[0], dtype=np.float64)
    matrix = sp.coo_matrix((values, (pairs[:, 0], pairs[:, 1])), shape=(num_users, num_items)).tocsr()
    matrix.data[:] = 1.0
    return matrix


@dataclass
class FixedGroupDataset:
    """Group-recommendation view: fixed groups and their item interactions.

    ``group_of_user[u]`` is the group index representing user ``u`` as an
    initiator (the paper replaces each test user with "the group
    corresponding to the user" at evaluation time).
    """

    num_groups: int
    num_users: int
    num_items: int
    #: Members of each group; the first member is always the defining initiator.
    group_members: List[np.ndarray]
    #: ``(num_activities, 2)`` array of (group, item) interactions.
    group_item_pairs: np.ndarray
    #: Maps an initiating user ID to their group index.
    group_of_user: Dict[int, int]

    def members_of(self, group: int) -> np.ndarray:
        return self.group_members[group]

    def group_for_user(self, user: int) -> int:
        """Group index of a user; falls back to a singleton group mapping."""
        return self.group_of_user.get(user, -1)


def to_fixed_groups(dataset: GroupBuyingDataset, successful_only: bool = True) -> FixedGroupDataset:
    """Convert behaviors into the fixed-group format for AGREE / SIGR.

    Each user who ever initiated a behavior defines one group consisting of
    that user plus everyone who ever did group buying with them.  Each
    (successful, by default) behavior becomes one group-item activity of
    the initiator's group.
    """
    companions: Dict[int, Set[int]] = {}
    activities: List[Tuple[int, int]] = []
    behaviors: Sequence[GroupBuyingBehavior] = dataset.behaviors

    for behavior in behaviors:
        companions.setdefault(behavior.initiator, set()).update(behavior.participants)

    initiators = sorted(companions)
    group_of_user = {user: index for index, user in enumerate(initiators)}
    group_members = [
        np.asarray([user] + sorted(companions[user]), dtype=np.int64) for user in initiators
    ]

    for behavior in behaviors:
        if successful_only and not behavior.is_successful:
            continue
        activities.append((group_of_user[behavior.initiator], behavior.item))

    pairs = (
        np.asarray(sorted(set(activities)), dtype=np.int64)
        if activities
        else np.zeros((0, 2), dtype=np.int64)
    )
    return FixedGroupDataset(
        num_groups=len(initiators),
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        group_members=group_members,
        group_item_pairs=pairs,
        group_of_user=group_of_user,
    )
