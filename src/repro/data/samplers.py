"""Alternative negative samplers.

The paper samples training negatives uniformly (Section III-C2).  Uniform
sampling is cheap but over-represents long-tail items; popularity-weighted
sampling is the standard alternative and is provided here as a drop-in
replacement for :class:`~repro.data.negative_sampling.TrainingNegativeSampler`
(the ablation benches compare the two).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from ..utils.rng import make_rng
from .dataset import GroupBuyingDataset

__all__ = ["PopularityNegativeSampler", "item_popularity"]


def item_popularity(dataset: GroupBuyingDataset, include_participants: bool = True) -> np.ndarray:
    """Per-item interaction counts over the behavior log."""
    counts = np.zeros(dataset.num_items, dtype=np.float64)
    for behavior in dataset.behaviors:
        counts[behavior.item] += 1.0
        if include_participants:
            counts[behavior.item] += len(behavior.participants)
    return counts


class PopularityNegativeSampler:
    """Samples negatives proportionally to ``popularity ** exponent``.

    ``exponent = 0`` recovers uniform sampling; ``exponent = 1`` samples
    exactly by popularity; the word2vec-style ``0.75`` is a common middle
    ground that makes negatives "harder" (popular items the user still did
    not interact with) without starving the tail entirely.

    The class mirrors the :class:`TrainingNegativeSampler` interface
    (``observed_items`` / ``sample`` / ``sample_batch``) so batch iterators
    accept either interchangeably.
    """

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        exponent: float = 0.75,
        smoothing: float = 1.0,
        seed: int = 0,
        include_participants: bool = True,
    ) -> None:
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.num_items = dataset.num_items
        self.exponent = exponent
        self._interactions: Dict[int, Set[int]] = dataset.user_item_set(
            include_participants=include_participants
        )
        weights = (item_popularity(dataset, include_participants) + smoothing) ** exponent
        total = weights.sum()
        if total <= 0:
            raise ValueError("all item weights are zero; increase smoothing")
        self._probabilities = weights / total
        self._rng = make_rng(seed)

    def observed_items(self, user: int) -> Set[int]:
        """Items the user has interacted with in the training data."""
        return self._interactions.get(user, set())

    def sample(self, user: int, count: int = 1) -> np.ndarray:
        """Draw ``count`` popularity-weighted items the user never interacted with."""
        observed = self._interactions.get(user, set())
        if len(observed) >= self.num_items:
            raise ValueError(f"user {user} has interacted with every item; cannot sample negatives")
        negatives = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            candidates = self._rng.choice(
                self.num_items, size=max(2 * (count - filled), 8), p=self._probabilities
            )
            for candidate in candidates:
                if int(candidate) in observed:
                    continue
                negatives[filled] = candidate
                filled += 1
                if filled == count:
                    break
        return negatives

    def sample_batch(self, users: Sequence[int], count: int = 1) -> np.ndarray:
        """One row of ``count`` negatives per user."""
        return np.stack([self.sample(int(user), count) for user in users])
