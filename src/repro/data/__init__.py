"""Group-buying data model, synthetic Beibei-like generator and utilities."""

from .schema import GroupBuyingBehavior, SocialEdge
from .dataset import GroupBuyingDataset, observed_item_matrix
from .synthetic import (
    BeibeiLikeConfig,
    BeibeiLikeGenerator,
    calibrate_join_bias,
    generate_dataset,
    success_probability,
)
from .scenario import (
    PopulationGenerator,
    ScenarioConfig,
    SyntheticPopulation,
    fit_zipf_exponent,
    generate_population,
)
from .splits import DatasetSplit, leave_one_out_split
from .negative_sampling import EvaluationCandidateSampler, TrainingNegativeSampler
from .samplers import PopularityNegativeSampler, item_popularity
from .converters import (
    FixedGroupDataset,
    InteractionConversion,
    interaction_matrix,
    to_fixed_groups,
    to_user_item_interactions,
)
from .stats import DatasetStatistics, compute_statistics
from .io import load_dataset, save_dataset
from .beibei_format import load_beibei_format, save_beibei_format
from .validation import ValidationIssue, ValidationReport, assert_valid, validate_dataset
from .transforms import (
    IdMapping,
    filter_min_interactions,
    remap_ids,
    restrict_to_users,
    subsample_behaviors,
)

__all__ = [
    "GroupBuyingBehavior",
    "SocialEdge",
    "GroupBuyingDataset",
    "BeibeiLikeConfig",
    "BeibeiLikeGenerator",
    "calibrate_join_bias",
    "success_probability",
    "generate_dataset",
    "ScenarioConfig",
    "SyntheticPopulation",
    "PopulationGenerator",
    "generate_population",
    "fit_zipf_exponent",
    "observed_item_matrix",
    "DatasetSplit",
    "leave_one_out_split",
    "EvaluationCandidateSampler",
    "TrainingNegativeSampler",
    "PopularityNegativeSampler",
    "item_popularity",
    "FixedGroupDataset",
    "InteractionConversion",
    "interaction_matrix",
    "to_fixed_groups",
    "to_user_item_interactions",
    "DatasetStatistics",
    "compute_statistics",
    "load_dataset",
    "save_dataset",
    "load_beibei_format",
    "save_beibei_format",
    "ValidationIssue",
    "ValidationReport",
    "assert_valid",
    "validate_dataset",
    "IdMapping",
    "filter_min_interactions",
    "remap_ids",
    "restrict_to_users",
    "subsample_behaviors",
]
