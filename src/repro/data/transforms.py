"""Dataset transforms: filtering, ID remapping and subsampling.

The paper "simply filtered out users and items with few interactions as a
widely-used manner" before training (Section IV-A1).  These transforms make
that preprocessing reproducible on any group-buying log, and provide the
subsampling used to build the sparsity-study workloads (the paper lists
data sparsity as its main future-work axis).

All transforms are pure: they return a new :class:`GroupBuyingDataset` and
never mutate the input.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..utils.rng import make_rng
from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior, SocialEdge

__all__ = [
    "IdMapping",
    "filter_min_interactions",
    "remap_ids",
    "subsample_behaviors",
    "restrict_to_users",
]


@dataclass(frozen=True)
class IdMapping:
    """Mapping from original IDs to the compacted IDs of a remapped dataset."""

    user_map: Dict[int, int]
    item_map: Dict[int, int]

    @property
    def num_users(self) -> int:
        return len(self.user_map)

    @property
    def num_items(self) -> int:
        return len(self.item_map)

    def original_user(self, new_id: int) -> int:
        """Inverse lookup of one remapped user ID."""
        for original, remapped in self.user_map.items():
            if remapped == new_id:
                return original
        raise KeyError(new_id)

    def original_item(self, new_id: int) -> int:
        """Inverse lookup of one remapped item ID."""
        for original, remapped in self.item_map.items():
            if remapped == new_id:
                return original
        raise KeyError(new_id)


def _interaction_counts(behaviors: Sequence[GroupBuyingBehavior]) -> Tuple[Counter, Counter]:
    """Per-user and per-item interaction counts (initiator + participant roles)."""
    user_counts: Counter = Counter()
    item_counts: Counter = Counter()
    for behavior in behaviors:
        user_counts[behavior.initiator] += 1
        item_counts[behavior.item] += 1 + len(behavior.participants)
        for participant in behavior.participants:
            user_counts[participant] += 1
    return user_counts, item_counts


def filter_min_interactions(
    dataset: GroupBuyingDataset,
    min_user_interactions: int = 2,
    min_item_interactions: int = 2,
    max_iterations: int = 50,
) -> GroupBuyingDataset:
    """Iteratively drop behaviors of rare users/items (k-core style filtering).

    A behavior survives when its initiator has at least
    ``min_user_interactions`` interactions *and* its item has at least
    ``min_item_interactions`` interactions, counted over the surviving
    behaviors.  Dropping a behavior lowers other counts, so the filter
    iterates until a fixed point (or ``max_iterations``).

    The user/item universes (``num_users`` / ``num_items``) are kept; use
    :func:`remap_ids` afterwards to compact them.
    """
    if min_user_interactions < 0 or min_item_interactions < 0:
        raise ValueError("minimum interaction counts must be non-negative")

    behaviors: List[GroupBuyingBehavior] = list(dataset.behaviors)
    for _ in range(max_iterations):
        user_counts, item_counts = _interaction_counts(behaviors)
        kept = [
            behavior
            for behavior in behaviors
            if user_counts[behavior.initiator] >= min_user_interactions
            and item_counts[behavior.item] >= min_item_interactions
        ]
        if len(kept) == len(behaviors):
            break
        behaviors = kept

    return dataset.with_behaviors(behaviors, name=f"{dataset.name}|min-interactions")


def remap_ids(dataset: GroupBuyingDataset) -> Tuple[GroupBuyingDataset, IdMapping]:
    """Compact IDs so that only users/items that actually occur remain.

    Users occurring anywhere (initiator, participant or social edge) and
    items occurring in any behavior are kept, renumbered contiguously in
    ascending order of their original IDs (the same "ID remapping" the
    paper applied to protect user privacy).  Social edges between two
    dropped users are removed.
    """
    used_users: Set[int] = set()
    used_items: Set[int] = set()
    for behavior in dataset.behaviors:
        used_users.add(behavior.initiator)
        used_users.update(behavior.participants)
        used_items.add(behavior.item)
    for edge in dataset.social_edges:
        used_users.add(edge.user_a)
        used_users.add(edge.user_b)

    user_map = {original: new for new, original in enumerate(sorted(used_users))}
    item_map = {original: new for new, original in enumerate(sorted(used_items))}
    mapping = IdMapping(user_map=user_map, item_map=item_map)

    behaviors = [
        GroupBuyingBehavior(
            initiator=user_map[behavior.initiator],
            item=item_map[behavior.item],
            participants=tuple(user_map[p] for p in behavior.participants),
            threshold=behavior.threshold,
        )
        for behavior in dataset.behaviors
    ]
    edges = [
        SocialEdge(user_map[edge.user_a], user_map[edge.user_b])
        for edge in dataset.social_edges
        if edge.user_a in user_map and edge.user_b in user_map
    ]

    remapped = GroupBuyingDataset(
        num_users=max(len(user_map), 1),
        num_items=max(len(item_map), 1),
        behaviors=behaviors,
        social_edges=edges,
        name=f"{dataset.name}|remapped",
    )
    return remapped, mapping


def subsample_behaviors(
    dataset: GroupBuyingDataset,
    fraction: float,
    seed: int = 0,
    preserve_success_ratio: bool = True,
) -> GroupBuyingDataset:
    """Keep a random ``fraction`` of the behaviors (social network untouched).

    With ``preserve_success_ratio`` the successful and failed behaviors are
    subsampled separately, so the clinch ratio of the subsample matches the
    original dataset — important for sparsity studies, where changing the
    ratio would confound sparsity with loss composition.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    rng = make_rng(seed)

    def pick(behaviors: Sequence[GroupBuyingBehavior]) -> List[GroupBuyingBehavior]:
        if not behaviors:
            return []
        count = max(1, int(round(fraction * len(behaviors))))
        indices = rng.choice(len(behaviors), size=count, replace=False)
        return [behaviors[i] for i in sorted(indices)]

    if preserve_success_ratio:
        kept = pick(dataset.successful_behaviors) + pick(dataset.failed_behaviors)
    else:
        kept = pick(list(dataset.behaviors))

    return dataset.with_behaviors(kept, name=f"{dataset.name}|{fraction:.0%}")


def restrict_to_users(
    dataset: GroupBuyingDataset,
    users: Sequence[int],
    drop_outside_participants: bool = True,
) -> GroupBuyingDataset:
    """Keep only behaviors initiated by ``users`` (and their social edges).

    Participants outside the user set are either dropped from the
    participant lists (default) or kept as-is.  Useful for building
    cold-start / per-segment evaluation sets.
    """
    allowed = set(int(u) for u in users)
    for user in allowed:
        if user < 0 or user >= dataset.num_users:
            raise ValueError(f"user {user} outside the dataset's universe")

    behaviors: List[GroupBuyingBehavior] = []
    for behavior in dataset.behaviors:
        if behavior.initiator not in allowed:
            continue
        participants = behavior.participants
        if drop_outside_participants:
            participants = tuple(p for p in participants if p in allowed)
        behaviors.append(behavior.with_participants(participants))

    edges = [
        edge
        for edge in dataset.social_edges
        if edge.user_a in allowed and edge.user_b in allowed
    ]
    return GroupBuyingDataset(
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        behaviors=behaviors,
        social_edges=edges,
        name=f"{dataset.name}|restricted",
    )
