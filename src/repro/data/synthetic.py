"""Synthetic Beibei-like group-buying data generator.

The paper evaluates on a proprietary dump of the Beibei platform
(Table II: 190,080 users, 30,782 items, 748,233 social links, 932,896
behaviors of which 721,605 clinched).  That dump cannot be shipped here, so
this module synthesizes a dataset with the *same schema and the same causal
structure* the paper relies on:

* users and items live in a shared latent-preference space, so
  collaborative-filtering signal exists (MF-style models can learn);
* users have role-specific preference offsets, so initiator-view and
  participant-view interests genuinely differ (the effect GBGCN's
  multi-view design exploits);
* the social network is homophilous (friends are closer in latent space),
  so social-recommendation signal exists;
* participants join a launched group with probability driven by their own
  interest in the item *plus* the initiator's social influence, so whether
  a group clinches depends on exactly the factors GBGCN models;
* failed behaviors (too few participants) are retained with their
  initiator, providing the strong-negative signal used by the
  double-pairwise loss;
* the share of behaviors that clinch is *calibrated* to Table II's 77.4%
  (``target_success_ratio``), so the strong-negative minority exists at
  every generator scale, from the unit-test world to the paper-scale one.

The default configuration is laptop-sized; ``BeibeiLikeConfig.paper_scale``
returns the Table II scale for users who want a full-size run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..utils.rng import make_rng
from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior, SocialEdge

__all__ = [
    "BeibeiLikeConfig",
    "BeibeiLikeGenerator",
    "generate_dataset",
    "success_probability",
    "calibrate_join_bias",
]

#: Table II clinch ratio: 721,605 successful out of 932,896 behaviors.
_TABLE2_SUCCESS_RATIO = 721_605 / 932_896


def success_probability(logits: np.ndarray, threshold: int, bias: float = 0.0) -> float:
    """Probability that at least ``threshold`` invitees join.

    Each invitee joins independently with probability
    ``sigmoid(logit + bias)``; the number of joiners therefore follows a
    Poisson-binomial distribution, whose upper tail is computed exactly by
    dynamic programming (the invite list is small, at most
    ``BeibeiLikeConfig.max_invited`` entries).
    """
    logits = np.asarray(logits, dtype=np.float64)
    if threshold <= 0:
        return 1.0
    if logits.size < threshold:
        return 0.0
    probabilities = 1.0 / (1.0 + np.exp(-(logits + bias)))
    distribution = np.zeros(logits.size + 1, dtype=np.float64)
    distribution[0] = 1.0
    for p in probabilities:
        distribution[1:] = distribution[1:] * (1.0 - p) + distribution[:-1] * p
        distribution[0] *= 1.0 - p
    return float(distribution[threshold:].sum())


def calibrate_join_bias(
    logit_sets: Sequence[np.ndarray],
    thresholds: Sequence[int],
    target_success_ratio: float,
    search_range: Tuple[float, float] = (-10.0, 10.0),
    iterations: int = 48,
) -> float:
    """Find the join-bias whose expected clinch ratio matches the target.

    The expected clinch ratio is monotonically increasing in the bias, so a
    plain bisection suffices.  When the target is unreachable (for example
    because many initiators have fewer friends than the item threshold) the
    closest achievable end of the search range is returned.
    """
    if not 0.0 < target_success_ratio < 1.0:
        raise ValueError("target_success_ratio must lie strictly between 0 and 1")
    if not logit_sets:
        return 0.0

    def expected_ratio(bias: float) -> float:
        return float(
            np.mean(
                [
                    success_probability(logits, threshold, bias)
                    for logits, threshold in zip(logit_sets, thresholds)
                ]
            )
        )

    low, high = search_range
    if expected_ratio(high) <= target_success_ratio:
        return high
    if expected_ratio(low) >= target_success_ratio:
        return low
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if expected_ratio(mid) < target_success_ratio:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


@dataclass(frozen=True)
class BeibeiLikeConfig:
    """Configuration of the synthetic group-buying world.

    The defaults are sized to train every model in the paper in seconds on
    a CPU while keeping all the qualitative structure of the Beibei data.
    """

    num_users: int = 600
    num_items: int = 200
    num_behaviors: int = 3000
    latent_dim: int = 8
    #: Average number of friends per user (Beibei: ~7.9 = 2*748k/190k).
    mean_friends: float = 8.0
    #: Strength of latent-space homophily when wiring the social network.
    homophily: float = 3.0
    #: Exponent of the power-law user-activity distribution.
    activity_exponent: float = 1.1
    #: Softmax temperature when initiators choose items (lower = peakier).
    item_choice_temperature: float = 0.6
    #: Offset added to the participant-join logit.  Used verbatim when
    #: ``target_success_ratio`` is ``None``; otherwise it is replaced by the
    #: calibrated bias.
    join_bias: float = 0.4
    #: Calibrate the join bias so this fraction of behaviors is expected to
    #: clinch (Table II: ~0.774).  Set to ``None`` to use ``join_bias`` as-is.
    target_success_ratio: Optional[float] = _TABLE2_SUCCESS_RATIO
    #: Weight of the initiator's social influence in the join probability.
    influence_weight: float = 1.2
    #: Weight of the participant's own interest in the join probability.
    interest_weight: float = 1.5
    #: Role divergence: how far participant-role preferences drift from
    #: initiator-role preferences (0 = identical roles).
    role_divergence: float = 0.6
    #: How much an initiator weighs their friends' interests when choosing
    #: which item to launch (0 = purely their own taste).
    friend_anticipation: float = 0.5
    #: Range of per-item clinch thresholds ``t_n`` (inclusive).
    min_threshold: int = 1
    max_threshold: int = 3
    #: Maximum number of friends invited to one group.
    max_invited: int = 10
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.num_users < 10:
            raise ValueError("need at least 10 users to form a social network")
        if self.num_items < 2:
            raise ValueError("need at least 2 items")
        if self.num_behaviors < 1:
            raise ValueError("need at least one behavior")
        if not (0 < self.mean_friends < self.num_users):
            raise ValueError("mean_friends must be positive and below num_users")
        if self.min_threshold < 1 or self.max_threshold < self.min_threshold:
            raise ValueError("invalid threshold range")
        if self.target_success_ratio is not None and not (0.0 < self.target_success_ratio < 1.0):
            raise ValueError("target_success_ratio must lie strictly between 0 and 1")

    @classmethod
    def paper_scale(cls, seed: int = 2021) -> "BeibeiLikeConfig":
        """The Table II scale (expensive; hours of CPU for full training)."""
        return cls(
            num_users=190_080,
            num_items=30_782,
            num_behaviors=932_896,
            mean_friends=2 * 748_233 / 190_080,
            seed=seed,
        )

    @classmethod
    def small(cls, seed: int = 2021) -> "BeibeiLikeConfig":
        """A tiny configuration for unit tests."""
        return cls(num_users=80, num_items=40, num_behaviors=400, mean_friends=6.0, seed=seed)

    #: ``scaled`` rejects factors that would leave the absolute knobs
    #: structurally distorting: a "scaled-down" world where ``mean_friends``
    #: exceeds this share of the population is a near-clique, not a smaller
    #: version of the original social network.
    _SCALED_MAX_FRIEND_SHARE = 0.2

    def scaled(self, factor: float) -> "BeibeiLikeConfig":
        """Uniformly scale users/items/behaviors by ``factor``.

        Only the extensive counts scale; the intensive knobs
        (``mean_friends``, thresholds, ``max_invited``) are preserved —
        mean degree and group size are per-user/per-group properties that
        should *not* grow with the population (Beibei's own mean degree is
        ~8 at 190k users).  Because they are preserved, a factor that
        pushes any count below its validity floor, or shrinks the
        population until the absolute knobs distort its structure
        (``mean_friends`` above 20% of the users — a near-clique), now
        raises ``ValueError`` instead of silently clamping to an
        unrelated configuration.
        """
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        num_users = int(self.num_users * factor)
        num_items = int(self.num_items * factor)
        num_behaviors = int(self.num_behaviors * factor)
        if num_users < 10 or num_items < 2 or num_behaviors < 1:
            raise ValueError(
                f"factor {factor} scales the dataset below its validity floors "
                f"(users {num_users} < 10, items {num_items} < 2, or behaviors "
                f"{num_behaviors} < 1); use BeibeiLikeConfig.small() or an "
                f"explicit config instead"
            )
        if self.mean_friends > self._SCALED_MAX_FRIEND_SHARE * num_users:
            raise ValueError(
                f"factor {factor} leaves mean_friends={self.mean_friends} above "
                f"{self._SCALED_MAX_FRIEND_SHARE:.0%} of the scaled population "
                f"({num_users} users) — a near-clique, not a scaled-down Beibei; "
                f"lower mean_friends explicitly before scaling"
            )
        return replace(
            self,
            num_users=num_users,
            num_items=num_items,
            num_behaviors=num_behaviors,
        )


class BeibeiLikeGenerator:
    """Generates a :class:`GroupBuyingDataset` from a :class:`BeibeiLikeConfig`."""

    def __init__(self, config: Optional[BeibeiLikeConfig] = None) -> None:
        self.config = config or BeibeiLikeConfig()

    # ------------------------------------------------------------------
    # Latent structure
    # ------------------------------------------------------------------
    def _latent_factors(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """User/item latent factors plus role-specific user offsets.

        Returns ``(user_init, user_part, item_factors, influence)`` where
        ``user_init`` drives launching decisions, ``user_part`` drives
        joining decisions and ``influence`` is a per-user scalar social
        influence strength.
        """
        cfg = self.config
        base_users = rng.normal(0.0, 1.0, size=(cfg.num_users, cfg.latent_dim))
        role_shift = rng.normal(0.0, cfg.role_divergence, size=(cfg.num_users, cfg.latent_dim))
        user_init = base_users
        user_part = base_users + role_shift
        item_factors = rng.normal(0.0, 1.0, size=(cfg.num_items, cfg.latent_dim))
        influence = rng.gamma(shape=2.0, scale=0.5, size=cfg.num_users)
        return user_init, user_part, item_factors, influence

    def _social_network(self, rng: np.random.Generator, user_init: np.ndarray) -> List[SocialEdge]:
        """Wire a homophilous social network with the configured mean degree."""
        cfg = self.config
        num_edges_target = int(cfg.num_users * cfg.mean_friends / 2)
        edges: Set[Tuple[int, int]] = set()

        # Normalize latent vectors once so homophily scores are bounded.
        normalized = user_init / np.maximum(np.linalg.norm(user_init, axis=1, keepdims=True), 1e-12)

        # Candidate-pair sampling: propose random pairs, accept with a
        # probability that grows with latent similarity.  This yields a
        # homophilous graph without the O(P^2) cost of a full similarity
        # matrix at paper scale.
        max_attempts = num_edges_target * 30
        attempts = 0
        while len(edges) < num_edges_target and attempts < max_attempts:
            attempts += 1
            user_a = int(rng.integers(cfg.num_users))
            user_b = int(rng.integers(cfg.num_users))
            if user_a == user_b:
                continue
            pair = (min(user_a, user_b), max(user_a, user_b))
            if pair in edges:
                continue
            similarity = float(normalized[user_a] @ normalized[user_b])
            accept_probability = 1.0 / (1.0 + np.exp(-cfg.homophily * similarity))
            if rng.random() < accept_probability:
                edges.add(pair)

        # Guarantee no isolated users: attach every friendless user to their
        # nearest (most similar) neighbor among a random candidate pool.
        degree = np.zeros(cfg.num_users, dtype=np.int64)
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        for user in np.where(degree == 0)[0]:
            pool = rng.choice(cfg.num_users, size=min(50, cfg.num_users), replace=False)
            pool = pool[pool != user]
            similarities = normalized[pool] @ normalized[user]
            best = int(pool[int(np.argmax(similarities))])
            pair = (min(user, best), max(user, best))
            edges.add(pair)
            degree[user] += 1
            degree[best] += 1

        return [SocialEdge(a, b) for a, b in sorted(edges)]

    # ------------------------------------------------------------------
    # Behavior simulation
    # ------------------------------------------------------------------
    def _sample_initiators(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one initiator per behavior from a power-law activity profile."""
        cfg = self.config
        activity = rng.pareto(cfg.activity_exponent, size=cfg.num_users) + 1.0
        probabilities = activity / activity.sum()
        return rng.choice(cfg.num_users, size=cfg.num_behaviors, p=probabilities)

    def _choose_item(
        self,
        rng: np.random.Generator,
        initiator: int,
        user_init: np.ndarray,
        friend_part_mean: np.ndarray,
        item_factors: np.ndarray,
        popularity_logit: np.ndarray,
    ) -> int:
        """Initiators pick items by softmax over own + friends' interest.

        The paper's premise is that a sensible initiator anticipates their
        friends' interests before launching; mixing the friends' mean
        participant-role interest into the choice plants exactly the signal
        that friend-aware models (GBMF, GBGCN) are designed to exploit.
        """
        cfg = self.config
        own = item_factors @ user_init[initiator]
        friends = item_factors @ friend_part_mean[initiator]
        scores = (1.0 - cfg.friend_anticipation) * own + cfg.friend_anticipation * friends
        scores = scores + popularity_logit
        scores = scores / cfg.item_choice_temperature
        scores -= scores.max()
        probabilities = np.exp(scores)
        probabilities /= probabilities.sum()
        return int(rng.choice(cfg.num_items, p=probabilities))

    def _invite_friends(self, rng: np.random.Generator, friends: np.ndarray) -> np.ndarray:
        """Choose which friends the initiator shares the group with."""
        cfg = self.config
        if friends.size == 0:
            return friends
        if friends.size > cfg.max_invited:
            return rng.choice(friends, size=cfg.max_invited, replace=False)
        return friends

    def _join_logits(
        self,
        initiator: int,
        item: int,
        invited: np.ndarray,
        user_part: np.ndarray,
        item_factors: np.ndarray,
        influence: np.ndarray,
    ) -> np.ndarray:
        """Per-invitee join logits from interest + social influence (no bias)."""
        cfg = self.config
        if invited.size == 0:
            return np.zeros(0, dtype=np.float64)
        interest = item_factors[item] @ user_part[invited].T / np.sqrt(cfg.latent_dim)
        return (
            cfg.interest_weight * interest
            + cfg.influence_weight * (influence[initiator] - 1.0)
        )

    def _resolve_join_bias(self, logit_sets: List[np.ndarray], thresholds: List[int]) -> float:
        """The bias actually used when sampling joins.

        Either the configured ``join_bias`` (when no target is requested) or
        the bias calibrated so the expected clinch ratio matches
        ``target_success_ratio``.
        """
        cfg = self.config
        if cfg.target_success_ratio is None:
            return cfg.join_bias
        return calibrate_join_bias(logit_sets, thresholds, cfg.target_success_ratio)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> GroupBuyingDataset:
        """Generate the full synthetic dataset deterministically from the seed."""
        cfg = self.config
        rng = make_rng(cfg.seed)
        user_init, user_part, item_factors, influence = self._latent_factors(rng)
        social_edges = self._social_network(rng, user_init)

        friend_lists: List[List[int]] = [[] for _ in range(cfg.num_users)]
        for edge in social_edges:
            friend_lists[edge.user_a].append(edge.user_b)
            friend_lists[edge.user_b].append(edge.user_a)
        friend_arrays = [np.asarray(friends, dtype=np.int64) for friends in friend_lists]

        popularity_logit = rng.normal(0.0, 0.5, size=cfg.num_items)
        initiators = self._sample_initiators(rng)
        thresholds = rng.integers(cfg.min_threshold, cfg.max_threshold + 1, size=cfg.num_items)

        # Mean participant-role interest vector of each user's friends; users
        # without friends fall back to their own vector.
        friend_part_mean = np.array(
            [
                user_part[friends].mean(axis=0) if friends.size else user_part[user]
                for user, friends in enumerate(friend_arrays)
            ]
        )

        # Pass 1: decide who launches what and which friends get invited,
        # recording the bias-free join logits so the clinch ratio can be
        # calibrated globally before any join is sampled.
        chosen_items: List[int] = []
        invited_sets: List[np.ndarray] = []
        logit_sets: List[np.ndarray] = []
        behavior_thresholds: List[int] = []
        for initiator in initiators:
            initiator = int(initiator)
            item = self._choose_item(
                rng, initiator, user_init, friend_part_mean, item_factors, popularity_logit
            )
            invited = self._invite_friends(rng, friend_arrays[initiator])
            logits = self._join_logits(initiator, item, invited, user_part, item_factors, influence)
            chosen_items.append(item)
            invited_sets.append(invited)
            logit_sets.append(logits)
            behavior_thresholds.append(int(thresholds[item]))

        join_bias = self._resolve_join_bias(logit_sets, behavior_thresholds)

        # Pass 2: sample the actual joins with the resolved bias.
        behaviors: List[GroupBuyingBehavior] = []
        for initiator, item, invited, logits, threshold in zip(
            initiators, chosen_items, invited_sets, logit_sets, behavior_thresholds
        ):
            if invited.size:
                probabilities = 1.0 / (1.0 + np.exp(-(logits + join_bias)))
                joined_mask = rng.random(invited.size) < probabilities
                participants = tuple(int(u) for u in invited[joined_mask])
            else:
                participants = ()
            behaviors.append(
                GroupBuyingBehavior(
                    initiator=int(initiator),
                    item=item,
                    participants=participants,
                    threshold=threshold,
                )
            )

        return GroupBuyingDataset(
            num_users=cfg.num_users,
            num_items=cfg.num_items,
            behaviors=behaviors,
            social_edges=social_edges,
            name=f"beibei-like(seed={cfg.seed})",
        )


def generate_dataset(config: Optional[BeibeiLikeConfig] = None) -> GroupBuyingDataset:
    """Convenience wrapper: generate a dataset from ``config`` (or defaults)."""
    return BeibeiLikeGenerator(config).generate()
