"""Dataset validation.

Real group-buying logs (the Beibei dump the paper uses, or any production
export a user plugs into this library) routinely contain glitches: IDs out
of range, participants who are not actually friends of the initiator,
duplicate behaviors, users that never appear in the social network.  The
:class:`GroupBuyingDataset` constructor rejects only the errors that would
crash the models; this module performs the *semantic* checks and reports
them without refusing to build the dataset, so data problems surface before
they silently distort experiment results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from .dataset import GroupBuyingDataset

__all__ = ["ValidationIssue", "ValidationReport", "validate_dataset", "assert_valid"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a dataset."""

    #: Machine-readable category, e.g. ``"participant-not-friend"``.
    code: str
    #: Human-readable description with the offending IDs.
    message: str
    #: ``"error"`` for problems that will distort results, ``"warning"``
    #: for oddities worth knowing about.
    severity: str = "error"

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All issues found by :func:`validate_dataset`."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not self.errors

    def add(self, code: str, message: str, severity: str = "error") -> None:
        self.issues.append(ValidationIssue(code=code, message=message, severity=severity))

    def summary(self) -> str:
        if not self.issues:
            return "dataset OK: no issues found"
        lines = [f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"]
        lines.extend(str(issue) for issue in self.issues)
        return "\n".join(lines)


def validate_dataset(
    dataset: GroupBuyingDataset,
    require_participants_are_friends: bool = True,
    max_reported_per_code: int = 20,
) -> ValidationReport:
    """Run all semantic checks on ``dataset`` and return the report.

    Checks performed:

    * ``participant-not-friend`` — a participant joined a group launched by
      someone who is not their friend in ``S`` (the paper's data model says
      participants come from the initiator's social network).
    * ``duplicate-behavior`` — the exact same (initiator, item,
      participants) triple appears more than once (warning: repeat
      purchases are possible, but a high count usually indicates a join
      bug in the export).
    * ``empty-social-network`` — there are behaviors but no social edges.
    * ``no-failed-behaviors`` / ``no-successful-behaviors`` — one side of
      the success split is empty, which silently disables part of the
      double-pairwise loss (warning).
    * ``isolated-initiator`` — an initiator has no friends at all, so no
      group they launch can ever clinch (warning).
    * ``unused-item-range`` — a large share of the item universe never
      appears in any behavior (warning; usually means IDs were not
      remapped after filtering).
    """
    report = ValidationReport()
    per_code_counts: Counter = Counter()

    def add_limited(code: str, message: str, severity: str = "error") -> None:
        per_code_counts[code] += 1
        if per_code_counts[code] <= max_reported_per_code:
            report.add(code, message, severity)

    friends = dataset.friend_lists()
    friend_sets = [set(f.tolist()) for f in friends]

    if dataset.behaviors and not dataset.social_edges:
        report.add("empty-social-network", "behaviors exist but the social network is empty")

    if require_participants_are_friends:
        for index, behavior in enumerate(dataset.behaviors):
            for participant in behavior.participants:
                if participant not in friend_sets[behavior.initiator]:
                    add_limited(
                        "participant-not-friend",
                        f"behavior #{index}: participant {participant} is not a friend "
                        f"of initiator {behavior.initiator}",
                    )

    seen_triples: Counter = Counter(
        (b.initiator, b.item, b.participants) for b in dataset.behaviors
    )
    for (initiator, item, participants), count in seen_triples.items():
        if count > 1:
            add_limited(
                "duplicate-behavior",
                f"(initiator={initiator}, item={item}, participants={participants}) "
                f"appears {count} times",
                severity="warning",
            )

    if dataset.behaviors:
        if not dataset.failed_behaviors:
            report.add(
                "no-failed-behaviors",
                "every behavior clinched; the failed-behavior half of the "
                "double-pairwise loss will never fire",
                severity="warning",
            )
        if not dataset.successful_behaviors:
            report.add(
                "no-successful-behaviors",
                "no behavior clinched; participant-view interactions are empty",
                severity="warning",
            )

    isolated_initiators = sorted(
        {b.initiator for b in dataset.behaviors if not friend_sets[b.initiator]}
    )
    for user in isolated_initiators[:max_reported_per_code]:
        report.add(
            "isolated-initiator",
            f"user {user} launches groups but has no friends; none can clinch",
            severity="warning",
        )

    used_items = {b.item for b in dataset.behaviors}
    if dataset.behaviors and len(used_items) < 0.5 * dataset.num_items:
        report.add(
            "unused-item-range",
            f"only {len(used_items)} of {dataset.num_items} items appear in behaviors; "
            "consider remapping IDs after filtering",
            severity="warning",
        )

    # Note truncation so users know the counts are lower bounds.
    for code, count in per_code_counts.items():
        if count > max_reported_per_code:
            report.add(
                code,
                f"... and {count - max_reported_per_code} more '{code}' issue(s) not listed",
                severity="warning",
            )
    return report


def assert_valid(dataset: GroupBuyingDataset, **kwargs) -> None:
    """Raise ``ValueError`` when :func:`validate_dataset` finds any error."""
    report = validate_dataset(dataset, **kwargs)
    if not report.ok:
        raise ValueError(f"dataset validation failed:\n{report.summary()}")
