"""Dataset statistics in the format of Table II of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..utils.tables import format_table
from .dataset import GroupBuyingDataset

__all__ = ["DatasetStatistics", "compute_statistics"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The counters reported in Table II plus a few derived ratios."""

    num_users: int
    num_items: int
    num_social_interactions: int
    num_behaviors: int
    num_successful: int
    num_failed: int
    mean_participants: float
    mean_friends: float

    @property
    def success_ratio(self) -> float:
        """Fraction of behaviors that clinched (Beibei: ~0.774)."""
        return self.num_successful / self.num_behaviors if self.num_behaviors else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "#Users": self.num_users,
            "#Items": self.num_items,
            "#Social Interactions": self.num_social_interactions,
            "#Group-buying Behaviors": self.num_behaviors,
            "#Successful": self.num_successful,
            "#Failed": self.num_failed,
            "Success ratio": round(self.success_ratio, 4),
            "Mean participants per behavior": round(self.mean_participants, 4),
            "Mean friends per user": round(self.mean_friends, 4),
        }

    def format(self) -> str:
        """Render as a two-column table (the shape of Table II)."""
        rows = [(key, value) for key, value in self.as_dict().items()]
        return format_table(["Statistic", "Value"], rows)


def compute_statistics(dataset: GroupBuyingDataset) -> DatasetStatistics:
    """Compute Table II-style statistics for ``dataset``."""
    successful = dataset.successful_behaviors
    failed = dataset.failed_behaviors
    participants_per_behavior = [len(b.participants) for b in dataset.behaviors]
    friend_counts = [len(f) for f in dataset.friend_lists()]
    return DatasetStatistics(
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_social_interactions=dataset.num_social_edges,
        num_behaviors=dataset.num_behaviors,
        num_successful=len(successful),
        num_failed=len(failed),
        mean_participants=float(np.mean(participants_per_behavior)) if participants_per_behavior else 0.0,
        mean_friends=float(np.mean(friend_counts)) if friend_counts else 0.0,
    )
