"""Leave-one-out train / validation / test splitting.

Following the paper's evaluation protocol (Section IV-A2): for every user
with enough group-buying behaviors as an initiator, one behavior is held
out for testing and one (taken from the remaining training behaviors) for
validation; everything else is used for training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..utils.rng import make_rng
from .dataset import GroupBuyingDataset
from .schema import GroupBuyingBehavior

__all__ = ["DatasetSplit", "leave_one_out_split"]


@dataclass
class DatasetSplit:
    """Train/validation/test views over one :class:`GroupBuyingDataset`."""

    full: GroupBuyingDataset
    train: GroupBuyingDataset
    validation: Dict[int, GroupBuyingBehavior]
    test: Dict[int, GroupBuyingBehavior]

    @property
    def num_test_users(self) -> int:
        return len(self.test)

    @property
    def num_validation_users(self) -> int:
        return len(self.validation)

    def describe(self) -> Dict[str, int]:
        """Summary counts useful for logging."""
        return {
            "train_behaviors": self.train.num_behaviors,
            "validation_users": self.num_validation_users,
            "test_users": self.num_test_users,
        }


def leave_one_out_split(
    dataset: GroupBuyingDataset,
    seed: int = 0,
    min_behaviors_for_test: int = 3,
    holdout_successful_only: bool = True,
) -> DatasetSplit:
    """Split ``dataset`` with the leave-one-out protocol of the paper.

    Parameters
    ----------
    dataset:
        The full behavior log.
    seed:
        Seed for choosing which behavior of each user is held out.
    min_behaviors_for_test:
        Users with fewer behaviors than this keep everything in training
        (mirrors the paper's filtering of users with few interactions).
    holdout_successful_only:
        The recommendation target is "launch a *successful* group", so by
        default only successful behaviors are eligible as test/validation
        items; failed behaviors always stay in training where the
        double-pairwise loss consumes them.
    """
    rng = make_rng(seed)
    grouped = dataset.behaviors_of_initiator()

    train: List[GroupBuyingBehavior] = []
    validation: Dict[int, GroupBuyingBehavior] = {}
    test: Dict[int, GroupBuyingBehavior] = {}

    for user in sorted(grouped):
        behaviors = list(grouped[user])
        eligible_indices = [
            index
            for index, behavior in enumerate(behaviors)
            if behavior.is_successful or not holdout_successful_only
        ]
        if len(behaviors) < min_behaviors_for_test or len(eligible_indices) < 2:
            train.extend(behaviors)
            continue

        held_out = rng.choice(eligible_indices, size=2, replace=False)
        test_index, validation_index = int(held_out[0]), int(held_out[1])
        test[user] = behaviors[test_index]
        validation[user] = behaviors[validation_index]
        train.extend(
            behavior
            for index, behavior in enumerate(behaviors)
            if index not in (test_index, validation_index)
        )

    train_dataset = dataset.with_behaviors(train, name=f"{dataset.name}/train")
    return DatasetSplit(full=dataset, train=train_dataset, validation=validation, test=test)
