"""RAISE-001 — serving entry points fail typed, never with bare builtins.

Descends from the input-validation work (PR 4/PR 8): a bare ``KeyError``
or ``IndexError`` escaping a gateway/catalog/pool entry point loses
*which request and which model* were at fault, and — worse — reads as an
internal bug to callers who must distinguish "you sent a bad model name"
(:class:`~repro.serving.catalog.UnknownCatalogModelError`) from "the
serving side is degraded" (:class:`~repro.serving.errors.ServingUnavailableError`).
Public entry points in ``serving/gateway.py``, ``serving/catalog.py``
and ``serving/workers.py`` must raise the typed taxonomy; typed
subclasses that *inherit* the builtin (``UnknownCatalogModelError`` is a
``KeyError``) keep ``except KeyError`` callers working.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import Finding, LintContext, Rule, SourceFile

__all__ = ["RULE_RAISE"]

_SCOPED_FILES = ("serving/gateway.py", "serving/catalog.py", "serving/workers.py")
_BARE = {"KeyError", "IndexError"}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _bare_raises(func: ast.AST, source: SourceFile) -> List[Finding]:
    findings = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        if name in _BARE:
            findings.append(
                source.finding(
                    node,
                    RULE_RAISE,
                    f"public serving entry point raises bare {name}",
                )
            )
    return findings


def _check(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    if source.rel not in _SCOPED_FILES:
        return []
    findings: List[Finding] = []
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(
            node.name
        ):
            findings.extend(_bare_raises(node, source))
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_public(member.name):
                    findings.extend(_bare_raises(member, source))
    return findings


RULE_RAISE = Rule(
    id="RAISE-001",
    title="serving entry points raise typed errors",
    hint=(
        "raise the typed taxonomy instead: ServingError subtypes from "
        "serving/errors.py, or CatalogError/UnknownCatalogModelError (which "
        "subclass the builtin so broad excepts keep working)"
    ),
    check=_check,
    rationale=(
        "a bare KeyError/IndexError from deep inside the score path loses "
        "which request and model were at fault (PR 4's boundary-validation bug)"
    ),
)
