"""LOCK-001 / FORK-001 — the lock hierarchy and the fork-safety protocol.

**LOCK-001** enforces docs/ARCHITECTURE.md's documented ordering
statically::

    CatalogEntry.load_lock (10)  →  ModelCatalog._lock (20)  →  MetricsRegistry._lock (30)

Acquire left before right, never the reverse.  The checker resolves lock
expressions in ``with`` items and ``.acquire()`` calls against the
:data:`LOCK_HIERARCHY` table and flags any *lexically nested* acquisition
whose rank is ≤ an enclosing one (equal rank on a different lock is a
self-deadlock risk too; re-entering the same RLock is fine).  Lexical
analysis cannot see cross-function chains — the runtime watchdog
(:mod:`repro.lint.lockwatch`) covers those under the stress/chaos storms.
Descends from PR 7's fork deadlock postmortem, where an undocumented
ordering was the root cause.

**FORK-001** enforces PR 7's fork-safety protocol: any ``serving/`` class
that stores a ``threading.Lock/RLock/Condition`` on ``self`` inherits
that lock *in whatever state a forking thread left it* — so it must
implement ``_reinit_after_fork_in_child()`` and register with
``forksafe.protect(self)``, or the first post-fork request deadlocks on a
lock whose owner does not exist in the child.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..engine import Finding, LintContext, Rule, SourceFile
from .common import ImportMap, dotted_name

__all__ = ["RULE_LOCK", "RULE_FORK", "LOCK_HIERARCHY"]

#: (attribute name, required logical path or None=any, rank, label).
#: Higher rank = acquired later (innermost).  Keep in lockstep with
#: docs/ARCHITECTURE.md and lockwatch.DEFAULT_HIERARCHY.
LOCK_HIERARCHY: Tuple[Tuple[str, Optional[str], int, str], ...] = (
    ("load_lock", None, 10, "CatalogEntry.load_lock"),
    ("_lock", "serving/catalog.py", 20, "ModelCatalog._lock"),
    ("_lock", "serving/metrics.py", 30, "MetricsRegistry._lock"),
)

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "threading.Condition"}


def _resolve_lock(expr: ast.AST, source: SourceFile) -> Optional[Tuple[int, str]]:
    name = dotted_name(expr)
    if name is None:
        return None
    attr = name.split(".")[-1]
    for table_attr, rel, rank, label in LOCK_HIERARCHY:
        if attr == table_attr and (rel is None or source.rel == rel):
            return rank, label
    return None


def _order_findings(
    held: List[Tuple[int, str]],
    new: Tuple[int, str],
    node: ast.AST,
    source: SourceFile,
) -> List[Finding]:
    findings = []
    for rank, label in held:
        if rank > new[0]:
            findings.append(
                source.finding(
                    node,
                    RULE_LOCK,
                    f"lock-order inversion: acquiring {new[1]} (rank {new[0]}) "
                    f"while holding {label} (rank {rank})",
                )
            )
        elif rank == new[0] and label != new[1]:
            findings.append(
                source.finding(
                    node,
                    RULE_LOCK,
                    f"same-rank lock nesting: acquiring {new[1]} while "
                    f"holding {label} (rank {rank}) risks ABBA deadlock",
                )
            )
    return findings


def _walk_order(
    node: ast.AST,
    held: List[Tuple[int, str]],
    source: SourceFile,
    findings: List[Finding],
) -> None:
    """Dispatch ``node`` itself, tracking the lexically held lock set."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        # A nested def's body runs at call time, not under the enclosing
        # with — start it with an empty held-set.
        held = []
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        acquired: List[Tuple[int, str]] = []
        for item in node.items:
            resolved = _resolve_lock(item.context_expr, source)
            if resolved is not None:
                findings.extend(
                    _order_findings(held + acquired, resolved, item.context_expr, source)
                )
                acquired.append(resolved)
        held = held + acquired
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "acquire":
            resolved = _resolve_lock(node.func.value, source)
            if resolved is not None:
                findings.extend(_order_findings(held, resolved, node, source))
    for child in ast.iter_child_nodes(node):
        _walk_order(child, held, source, findings)


def _check_lock(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    _walk_order(source.tree, [], source, findings)
    return findings


RULE_LOCK = Rule(
    id="LOCK-001",
    title="respect the documented lock hierarchy",
    hint=(
        "acquire in documented order: CatalogEntry.load_lock -> "
        "ModelCatalog._lock -> MetricsRegistry._lock (docs/ARCHITECTURE.md, "
        "'Concurrency & observability'); restructure so the outer lock is "
        "released first, or take both in hierarchy order"
    ),
    check=_check_lock,
    rationale=(
        "PR 7's fork deadlock and PR 5's cold-start races were both "
        "ordering bugs; the hierarchy is the contract that prevents them"
    ),
)


def _forksafe_protect_names(tree: ast.Module) -> set:
    """Local names that are ``forksafe.protect`` via any import form."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "forksafe" or module.endswith(".forksafe"):
                for alias in node.names:
                    if alias.name == "protect":
                        names.add(alias.asname or "protect")
    return names


def _check_fork(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    if not source.in_packages("serving", "training") or source.rel.endswith(
        "serving/forksafe.py"
    ):
        return []
    imports = ImportMap(source.tree)
    protect_aliases = _forksafe_protect_names(source.tree)
    findings: List[Finding] = []
    for klass in [n for n in ast.walk(source.tree) if isinstance(n, ast.ClassDef)]:
        lock_attrs: List[str] = []
        has_reinit = False
        has_protect = False
        for node in ast.walk(klass):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "_reinit_after_fork_in_child":
                    has_reinit = True
            elif isinstance(node, ast.Assign) or isinstance(node, ast.AnnAssign):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and dotted_name(value.func) is not None
                    and imports.resolve(dotted_name(value.func)) in _LOCK_FACTORIES
                ):
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            lock_attrs.append(target.attr)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and (
                    name.split(".")[-2:] == ["forksafe", "protect"]
                    or name in protect_aliases
                ):
                    has_protect = True
        if not lock_attrs:
            continue
        missing = []
        if not has_reinit:
            missing.append("does not define _reinit_after_fork_in_child()")
        if not has_protect:
            missing.append("never calls forksafe.protect(self)")
        if missing:
            attrs = ", ".join(sorted(set(lock_attrs)))
            findings.append(
                source.finding(
                    klass,
                    RULE_FORK,
                    f"class {klass.name} stores lock attribute(s) {attrs} but "
                    + " and ".join(missing),
                )
            )
    return findings


RULE_FORK = Rule(
    id="FORK-001",
    title="lock-owning serving classes follow the fork-safety protocol",
    hint=(
        "implement _reinit_after_fork_in_child() (replace the locks, forget "
        "dead threads) and call forksafe.protect(self) from __init__ — see "
        "serving/forksafe.py"
    ),
    check=_check_fork,
    rationale=(
        "PR 7: a fork copies every lock in whatever state a concurrent "
        "thread left it; an unregistered lock deadlocks the child's first request"
    ),
)
