"""The registered checkers — one invariant per rule, one shipped bug per
invariant (see each rule's ``rationale``)."""

from __future__ import annotations

from typing import Tuple

from ..engine import Rule
from .clock import RULE_CLOCK
from .exports import RULE_EXPORT
from .io import ATOMIC_HELPERS, RULE_IO
from .locks import LOCK_HIERARCHY, RULE_FORK, RULE_LOCK
from .raises import RULE_RAISE
from .rng import RULE_RNG

__all__ = [
    "ALL_RULES",
    "RULE_RNG",
    "RULE_CLOCK",
    "RULE_LOCK",
    "RULE_FORK",
    "RULE_RAISE",
    "RULE_IO",
    "RULE_EXPORT",
    "LOCK_HIERARCHY",
    "ATOMIC_HELPERS",
]

#: Registry order == report order for same-location findings.
ALL_RULES: Tuple[Rule, ...] = (
    RULE_RNG,
    RULE_CLOCK,
    RULE_LOCK,
    RULE_FORK,
    RULE_RAISE,
    RULE_IO,
    RULE_EXPORT,
)
