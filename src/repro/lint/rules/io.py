"""IO-001 — artifact bytes reach disk only through the atomic helpers.

Descends from PR 2/PR 5: a reader (catalog scan, warmer cycle, sibling
process) can observe a half-written artifact unless every write goes
tmp-file → ``fsync`` → ``os.replace``.  Inside ``persist/`` the only
functions allowed to open files for writing are the atomic helpers in
:data:`ATOMIC_HELPERS`; everything else must route through them, so a
torn artifact is structurally impossible rather than reviewed for.

Flagged: write/append-mode ``open``, ``os.open`` with create/write
flags, ``Path.write_text``/``write_bytes``, ``np.save*`` and
``json.dump`` — anywhere in ``persist/`` outside an atomic helper.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..engine import Finding, LintContext, Rule, SourceFile
from .common import ImportMap, dotted_name

__all__ = ["RULE_IO", "ATOMIC_HELPERS"]

#: Functions (by name) allowed to perform raw writes: the tmp+fsync+
#: replace primitives themselves.  Writes inside functions *nested in*
#: one of these (e.g. a ``build(tmp)`` callback defined inside
#: ``_write_dir_artifact``) are covered too.
ATOMIC_HELPERS = frozenset(
    {
        "_atomic_replace_write",
        "_atomic_replace_dir",
        "_atomic_write_npz",
        "_write_dir_artifact",
    }
)

_WRITE_MODES = set("wax+")
_OS_OPEN_WRITE_FLAGS = {"O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND", "O_TRUNC"}


def _literal_mode(call: ast.Call) -> Optional[str]:
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value if isinstance(keyword.value.value, str) else None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        value = call.args[1].value
        return value if isinstance(value, str) else None
    return None


def _flags_write(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = dotted_name(sub)
        if name is not None and name.split(".")[-1] in _OS_OPEN_WRITE_FLAGS:
            return True
    return False


def _write_call(call: ast.Call, imports: ImportMap) -> Optional[str]:
    """Describe the raw-write call, or None when it is not one."""
    local = dotted_name(call.func)
    if local is None:
        return None
    canonical = imports.resolve(local)
    leaf = canonical.split(".")[-1]
    if canonical == "open" or leaf == "open" and canonical in ("open", "io.open"):
        mode = _literal_mode(call)
        if mode is not None and _WRITE_MODES & set(mode):
            return f"open(..., {mode!r})"
        return None
    if canonical == "os.open":
        if len(call.args) >= 2 and _flags_write(call.args[1]):
            return "os.open(..., O_WRONLY/O_CREAT/...)"
        return None
    if leaf in ("write_text", "write_bytes"):
        return f".{leaf}(...)"
    if canonical in ("numpy.save", "numpy.savez", "numpy.savez_compressed", "json.dump"):
        return f"{local}(...)"
    return None


def _walk(
    node: ast.AST,
    inside_helper: bool,
    imports: ImportMap,
    source: SourceFile,
    findings: List[Finding],
) -> None:
    for child in ast.iter_child_nodes(node):
        helper = inside_helper
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            helper = inside_helper or child.name in ATOMIC_HELPERS
        elif isinstance(child, ast.Call) and not inside_helper:
            description = _write_call(child, imports)
            if description is not None:
                findings.append(
                    source.finding(
                        child,
                        RULE_IO,
                        f"non-atomic write {description} outside the atomic helpers",
                    )
                )
        _walk(child, helper, imports, source, findings)


def _check(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    if not source.in_packages("persist"):
        return []
    imports = ImportMap(source.tree)
    findings: List[Finding] = []
    _walk(source.tree, False, imports, source, findings)
    return findings


RULE_IO = Rule(
    id="IO-001",
    title="persist/ writes go through tmp+fsync+os.replace",
    hint=(
        "route the bytes through persist.artifact._atomic_replace_write / "
        "_atomic_replace_dir so a crash or concurrent reader can never "
        "observe a torn artifact"
    ),
    check=_check,
    rationale=(
        "PR 5's TOCTOU: a scan raced a non-atomic publish and loaded a "
        "half-written artifact; atomic replace is the only safe publish path"
    ),
)
