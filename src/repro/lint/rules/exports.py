"""EXPORT-001 — package ``__init__`` re-exports cannot drift.

``src/repro/serving/__init__.py`` keeps growing: every PR adds classes
to ``__all__`` and re-imports them from submodules.  Nothing catches the
silent failure modes — an ``__all__`` entry whose import was dropped in
a refactor (``from x import *`` consumers crash), or a re-export of a
name a submodule no longer defines (an ImportError that only fires at
package import time, far from the edit).  This rule checks, for every
``__init__.py``:

* each name in ``__all__`` is actually bound in the module (defined,
  assigned, or imported);
* each ``from .submodule import name`` resolves — when the submodule is
  part of the scanned tree, ``name`` must be a real top-level binding
  there (or the name of a nested submodule).

Modules using ``from x import *`` from an unscanned module are skipped
for the ``__all__`` direction (their bindings cannot be resolved
statically).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..engine import Finding, LintContext, Rule, SourceFile, top_level_bindings

__all__ = ["RULE_EXPORT"]


def _all_entries(tree: ast.Module) -> Optional[List[ast.Constant]]:
    """Constants listed in a top-level ``__all__`` list/tuple, if static."""
    entries: Optional[List[ast.Constant]] = None
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    found = list(value.elts)
                    entries = found if entries is None else entries + found
                else:
                    return None  # dynamic __all__ — cannot check statically
    return entries


def _resolve_import_module(
    source: SourceFile, node: ast.ImportFrom
) -> Optional[str]:
    """Dotted module (relative to the package root) an ImportFrom targets."""
    if node.level == 0:
        module = node.module or ""
        if module == "repro":
            return ""
        if module.startswith("repro."):
            return module[len("repro.") :]
        return None  # external absolute import
    package = source.module  # for __init__.py this IS the package
    if not source.is_package_init:
        package = package.rpartition(".")[0]
    parts = package.split(".") if package else []
    up = node.level - 1
    if up > len(parts):
        return None
    base = parts[: len(parts) - up]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _module_binds(
    context: LintContext, module: str, name: str
) -> Optional[bool]:
    """Does ``module`` bind ``name``?  None = module not scanned."""
    target = context.module_file(module)
    if target is None:
        return None
    if name in top_level_bindings(target.tree):
        return True
    # ``from . import submodule`` / re-export of a nested module.
    return context.has_module(f"{module}.{name}" if module else name)


def _star_sources_unresolved(source: SourceFile, context: LintContext) -> bool:
    for node in source.tree.body:
        if isinstance(node, ast.ImportFrom) and any(a.name == "*" for a in node.names):
            module = _resolve_import_module(source, node)
            if module is None or not context.has_module(module):
                return True
    return False


def _star_bindings(source: SourceFile, context: LintContext) -> Set[str]:
    names: Set[str] = set()
    for node in source.tree.body:
        if isinstance(node, ast.ImportFrom) and any(a.name == "*" for a in node.names):
            module = _resolve_import_module(source, node)
            if module is not None:
                target = context.module_file(module)
                if target is not None:
                    names.update(top_level_bindings(target.tree))
    return names


def _check(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    if not source.is_package_init:
        return []
    findings: List[Finding] = []

    # Direction 1: __all__ names resolve to real bindings.
    entries = _all_entries(source.tree)
    if entries is not None and not _star_sources_unresolved(source, context):
        bound = top_level_bindings(source.tree) | _star_bindings(source, context)
        for entry in entries:
            name = entry.value
            if name not in bound and not context.has_module(
                f"{source.module}.{name}" if source.module else name
            ):
                findings.append(
                    source.finding(
                        entry,
                        RULE_EXPORT,
                        f"__all__ names {name!r} but the module never binds it",
                    )
                )

    # Direction 2: every re-import from a scanned module resolves there.
    for node in source.tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        module = _resolve_import_module(source, node)
        if module is None:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            binds = _module_binds(context, module, alias.name)
            if binds is False:
                findings.append(
                    source.finding(
                        node,
                        RULE_EXPORT,
                        f"re-export of {alias.name!r} from {module or 'repro'!r}, "
                        f"which does not define it",
                    )
                )
    return findings


RULE_EXPORT = Rule(
    id="EXPORT-001",
    title="package __init__ exports resolve",
    hint=(
        "every __all__ entry must be bound in the __init__ and every "
        "re-imported name must still exist in its source module — fix the "
        "import or prune the stale export"
    ),
    check=_check,
    rationale=(
        "serving/__init__.py grows every PR; a stale export only explodes "
        "at package import time, far from the refactor that caused it"
    ),
)
