"""Shared AST helpers for the ``repro.lint`` checkers."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

__all__ = ["dotted_name", "ImportMap"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None (calls, subscripts...)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """What each local name refers to, from a module's import statements.

    ``import numpy as np`` → ``np`` resolves to ``numpy``;
    ``from time import time as now`` → ``now`` resolves to ``time.time``.
    Only top-level and nested imports are tracked — good enough for lint
    rules that need to know whether ``random`` *is* the stdlib module.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name != "*":
                        self.aliases[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def resolve(self, local_dotted: str) -> str:
        """Expand the leading segment through the import aliases."""
        head, _, rest = local_dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return local_dotted
        return f"{target}.{rest}" if rest else target

    def names_for(self, canonical: str) -> Set[str]:
        """Local names that resolve to the given canonical dotted prefix."""
        return {
            local
            for local, target in self.aliases.items()
            if target == canonical or target.startswith(canonical + ".")
        }
