"""RNG-001 — no global-state randomness anywhere in ``src/``.

Descends from the scenario engine's byte-identical ``digest()`` contract
(PR 9): every stochastic component takes an explicit seeded
``np.random.default_rng`` / ``SeedSequence`` stream, so one call into
numpy's *legacy global* API (``np.random.seed``, ``np.random.rand``...)
or the stdlib's module-level ``random.*`` functions silently couples
unrelated components through hidden process-wide state and breaks
reproducibility for everything downstream.

Allowed: ``np.random.default_rng`` / ``SeedSequence`` and the generator
*class* names (``Generator``, ``BitGenerator``, the bit-generator
implementations) which appear in annotations; instance-based
``random.Random(seed)`` / ``random.SystemRandom()`` (their state is
owned, not global).  Everything else on ``np.random`` or the stdlib
``random`` module is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import Finding, LintContext, Rule, SourceFile
from .common import ImportMap, dotted_name

__all__ = ["RULE_RNG"]

#: np.random names that do not touch the hidden global BitGenerator.
_NUMPY_ALLOWED = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: stdlib random attributes that construct owned instances.
_STDLIB_ALLOWED = {"Random", "SystemRandom"}

_HINT = (
    "thread an explicit seeded np.random.default_rng(seed) / SeedSequence "
    "stream through instead (see utils/rng.py); instance-based "
    "random.Random(seed) is fine"
)


def _check(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    imports = ImportMap(source.tree)
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.Attribute, ast.Name)):
            local = dotted_name(node)
            if local is None or not isinstance(node.ctx, ast.Load):
                continue
            canonical = imports.resolve(local)
            parts = canonical.split(".")
            if len(parts) >= 3 and parts[0] in ("numpy", "np") and parts[1] == "random":
                # Only the access one level below numpy.random decides;
                # np.random.Generator.foo annotates, np.random.rand draws.
                leaf = parts[2]
                if leaf not in _NUMPY_ALLOWED:
                    findings.append(
                        source.finding(
                            node,
                            RULE_RNG,
                            f"global-state numpy randomness: {canonical}",
                        )
                    )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] not in _STDLIB_ALLOWED
                and imports.resolve(parts[0]) == "random"
                and local.split(".")[0] in imports.aliases
            ):
                findings.append(
                    source.finding(
                        node,
                        RULE_RNG,
                        f"module-level stdlib randomness: {canonical}",
                    )
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module in ("numpy.random", "random"):
                allowed = _NUMPY_ALLOWED if node.module == "numpy.random" else _STDLIB_ALLOWED
                for alias in node.names:
                    if alias.name != "*" and alias.name not in allowed:
                        findings.append(
                            source.finding(
                                node,
                                RULE_RNG,
                                f"imports global-state randomness: "
                                f"from {node.module} import {alias.name}",
                            )
                        )
    # Deduplicate nested Attribute chains (np.random.rand visits both the
    # full chain and its np.random prefix — prefix resolves short, skip).
    return findings


RULE_RNG = Rule(
    id="RNG-001",
    title="no global-state randomness",
    hint=_HINT,
    check=_check,
    rationale=(
        "the scenario engine's byte-identical digest() contracts (PR 9) "
        "hold only while every random draw comes from an owned, seeded stream"
    ),
)
