"""CLOCK-001 — wall-clock reads are banned where durations are measured.

Descends from the resilience layer (PR 8): deadlines, latency
histograms, breaker cool-downs and replay schedules are all computed as
*differences of clock reads*, and ``time.time()`` can step backwards
(NTP slew, manual clock set), turning a 5 ms request into a negative
latency or an immortal deadline.  Inside ``serving/``, ``training/`` and
``persist/`` every duration must come from ``time.monotonic()`` /
``time.perf_counter()``.

Legitimate wall-clock reads exist — comparing against *external*
wall-clock data such as file mtimes — and carry the pragma with the
reason spelled out; ``persist/artifact.py``'s stale-tmp sweep is the
exemplar.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import Finding, LintContext, Rule, SourceFile
from .common import ImportMap, dotted_name

__all__ = ["RULE_CLOCK"]

_SCOPED_PACKAGES = ("serving", "training", "persist")


def _check(source: SourceFile, context: LintContext) -> Iterable[Finding]:
    if not source.in_packages(*_SCOPED_PACKAGES):
        return []
    imports = ImportMap(source.tree)
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        local = dotted_name(node.func)
        if local is None:
            continue
        if imports.resolve(local) == "time.time":
            findings.append(
                source.finding(
                    node,
                    RULE_CLOCK,
                    "wall-clock time.time() in duration/deadline territory",
                )
            )
    return findings


RULE_CLOCK = Rule(
    id="CLOCK-001",
    title="monotonic clocks only for durations and deadlines",
    hint=(
        "use time.monotonic() or time.perf_counter(); if the read really "
        "compares against external wall-clock data (file mtimes, event "
        "timestamps), say so in a '# repro: allow(CLOCK-001) -- reason' pragma"
    ),
    check=_check,
    rationale=(
        "PR 8's deadline/latency machinery measures differences of clock "
        "reads; a stepping wall clock corrupts every one of them"
    ),
)
