"""CLI: ``python -m repro.lint [paths] [--json] [--rules IDS] [--list-rules]``.

Exit codes are script-friendly and stable:

* ``0`` — clean (no findings),
* ``1`` — findings reported,
* ``2`` — usage error (unknown path, unknown rule id, bad arguments).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import LintUsageError, run_lint
from .report import render_json, render_text
from .rules import ALL_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _default_paths() -> List[Path]:
    # Prefer the conventional src/ checkout root; fall back to the
    # installed package directory so the CLI works from anywhere.
    src = Path("src")
    if src.is_dir():
        return [src]
    return [Path(__file__).resolve().parent.parent]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: src/)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-diffable JSON report"
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule ids (e.g. RNG-001,LOCK-001)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:  # argparse uses 2 for usage errors already
        return int(exit_.code or 0)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            if rule.rationale:
                print(f"           {rule.rationale}")
        return EXIT_CLEAN

    select = None
    if args.rules:
        select = [part.strip() for part in args.rules.split(",") if part.strip()]
    paths = args.paths or _default_paths()
    try:
        report = run_lint(ALL_RULES, paths, select=select)
    except LintUsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except SyntaxError as error:
        print(f"cannot parse {error.filename}: {error}", file=sys.stderr)
        return EXIT_USAGE

    print(render_json(report) if args.json else render_text(report))
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
