"""Rule-registry engine for ``repro.lint`` — parse, check, suppress, report.

The engine owns everything rule-agnostic: walking the requested paths,
parsing every ``.py`` file once with :mod:`ast`, computing each file's
*logical path* (its location inside the ``repro`` package, which is what
rules scope on), parsing suppression pragmas, running every registered
:class:`Rule`, and filtering findings a valid pragma covers.

Suppression pragma grammar::

    # repro: allow(RULE-ID[, RULE-ID...]) -- reason text

The reason is **mandatory**: a pragma without one (or naming a rule id
the engine does not know) does not suppress anything and instead raises
its own ``PRAGMA-001`` finding, so an unexplained exemption can never
land silently.  A pragma suppresses matching findings on its own line;
written on a comment-only line it covers the next line instead, for
statements too long to share a line with their justification.

Rules are pure functions ``(SourceFile, LintContext) -> findings``: the
engine hands them one parsed file plus a context holding *every* parsed
file, so cross-file rules (``EXPORT-001`` resolving re-exports against
the source module) need no IO of their own.  Nothing here ever imports
the code under analysis — the whole pass is static.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Pragma",
    "SourceFile",
    "LintContext",
    "Rule",
    "LintReport",
    "LintUsageError",
    "PRAGMA_RULE_ID",
    "parse_pragmas",
    "make_source_file",
    "collect_files",
    "run_lint",
    "lint_text",
]

#: Engine-level rule id for malformed suppression pragmas (reason missing
#: or unknown rule id).  Not a registered checker: the engine itself
#: emits these, so they can never be switched off by rule selection.
PRAGMA_RULE_ID = "PRAGMA-001"

#: Only well-formed rule-id lists parse as pragmas at all — prose that
#: *describes* the grammar (``allow(RULE-ID)`` in docstrings) does not.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[A-Z]+-\d{3}(?:\s*,\s*[A-Z]+-\d{3})*)\s*\)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


class LintUsageError(Exception):
    """Bad invocation (missing path, unknown rule id) — CLI exit code 2."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: display path (as scanned), posix separators
    line: int
    rule: str
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow(...)`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str  #: empty string means the mandatory reason is missing
    own_line: bool  #: pragma is the whole line → it covers the *next* line

    def covers(self, line: int) -> bool:
        return line == (self.line + 1 if self.own_line else self.line)


@dataclass
class SourceFile:
    """One parsed source file plus the metadata rules scope on."""

    path: Path  #: real filesystem path
    display: str  #: path as reported in findings (posix)
    rel: str  #: logical path inside the ``repro`` package, e.g. ``serving/catalog.py``
    text: str
    tree: ast.Module
    pragmas: List[Pragma] = field(default_factory=list)

    @property
    def module(self) -> str:
        """Dotted module name relative to the package root (``""`` = root)."""
        rel = self.rel
        if rel.endswith("/__init__.py"):
            rel = rel[: -len("/__init__.py")]
        elif rel == "__init__.py":
            return ""
        elif rel.endswith(".py"):
            rel = rel[: -len(".py")]
        return rel.replace("/", ".")

    @property
    def is_package_init(self) -> bool:
        return self.rel == "__init__.py" or self.rel.endswith("/__init__.py")

    def in_packages(self, *prefixes: str) -> bool:
        """True when the file lives under any of the given top packages."""
        return any(
            self.rel == p or self.rel.startswith(p.rstrip("/") + "/") for p in prefixes
        )

    def finding(self, node_or_line, rule: "Rule", message: str, hint: Optional[str] = None) -> Finding:
        line = node_or_line if isinstance(node_or_line, int) else node_or_line.lineno
        return Finding(
            path=self.display,
            line=line,
            rule=rule.id,
            message=message,
            hint=rule.hint if hint is None else hint,
        )


@dataclass(frozen=True)
class Rule:
    """A registered checker: identity, docs, and the check callable."""

    id: str
    title: str
    hint: str
    check: Callable[["SourceFile", "LintContext"], Iterable[Finding]]
    #: one-line provenance — the shipped bug this rule descends from
    rationale: str = ""


class LintContext:
    """Everything a rule may need beyond its own file."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)
        self._by_module: Dict[str, SourceFile] = {f.module: f for f in self.files}

    def module_file(self, module: str) -> Optional[SourceFile]:
        return self._by_module.get(module)

    def has_module(self, module: str) -> bool:
        return module in self._by_module

    def module_bindings(self, module: str) -> Optional[Set[str]]:
        """Top-level names bound in ``module``, or None if it was not scanned."""
        source = self._by_module.get(module)
        if source is None:
            return None
        return top_level_bindings(source.tree)


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding]
    files_scanned: int
    suppressed: int
    rules_run: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings


def top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, imports, assigns)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks still bind names.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, ast.Import):
                    for alias in sub.names:
                        names.add((alias.asname or alias.name).split(".")[0])
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        names.update(_target_names(target))
    return names


def _target_names(target: ast.AST) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    return set()


def parse_pragmas(text: str) -> List[Pragma]:
    """Extract every ``# repro: allow(...)`` pragma with its coverage line."""
    pragmas: List[Pragma] = []
    for number, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        own_line = line.strip().startswith("#")
        pragmas.append(Pragma(line=number, rules=rules, reason=reason, own_line=own_line))
    return pragmas


def logical_rel(path: Path) -> str:
    """Path inside the ``repro`` package (rules scope on this).

    ``src/repro/serving/catalog.py`` → ``serving/catalog.py``.  Files not
    under a ``repro`` directory keep their path relative to the deepest
    scanned root — fixture trees rely on this to *simulate* package
    placement (``fixtures/bad/serving/x.py`` scans as ``serving/x.py``
    when the fixture root is the scan root).
    """
    parts = path.as_posix().split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        rel = "/".join(parts[anchor + 1 :])
        if rel:
            return rel
    return path.name


def make_source_file(
    path: Path, display: Optional[str] = None, rel: Optional[str] = None
) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(
        path=path,
        display=display if display is not None else path.as_posix(),
        rel=rel if rel is not None else logical_rel(path),
        text=text,
        tree=tree,
        pragmas=parse_pragmas(text),
    )


def collect_files(paths: Sequence[Path], root: Optional[Path] = None) -> List[SourceFile]:
    """Parse every ``.py`` under ``paths`` (files or directories).

    When ``root`` is given, logical paths are computed relative to it
    instead of being anchored on a ``repro`` path component — this is how
    fixture trees masquerade as package code.  Without ``root``, scanning
    a directory that has no ``repro`` component anchors logical paths at
    that directory, so ``python -m repro.lint some/tree`` scopes rules the
    same way an explicit root would.
    """
    files: List[SourceFile] = []
    for given in paths:
        if not given.exists():
            raise LintUsageError(f"path does not exist: {given}")
        members = [given] if given.is_file() else sorted(given.rglob("*.py"))
        for member in members:
            if member.suffix != ".py":
                continue
            if root is not None:
                rel = member.relative_to(root).as_posix()
            elif "repro" not in member.as_posix().split("/") and given.is_dir():
                rel = member.relative_to(given).as_posix()
            else:
                rel = logical_rel(member)
            files.append(make_source_file(member, rel=rel))
    return files


def _pragma_findings(source: SourceFile, known_rules: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for pragma in source.pragmas:
        problems = []
        for rule_id in pragma.rules:
            if rule_id not in known_rules:
                problems.append(f"names unknown rule id {rule_id!r}")
        if not pragma.reason:
            problems.append("is missing the mandatory '-- reason' justification")
        for problem in problems:
            findings.append(
                Finding(
                    path=source.display,
                    line=pragma.line,
                    rule=PRAGMA_RULE_ID,
                    message=f"suppression pragma {problem}",
                    hint="write '# repro: allow(RULE-ID) -- why this exemption is correct'",
                )
            )
    return findings


def _pragma_valid(pragma: Pragma, known_rules: Set[str]) -> bool:
    return bool(pragma.reason) and bool(pragma.rules) and all(
        r in known_rules for r in pragma.rules
    )


def run_lint(
    rules: Sequence[Rule],
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run ``rules`` (optionally narrowed to ``select`` ids) over ``paths``."""
    known = {rule.id for rule in rules}
    if select is not None:
        unknown = sorted(set(select) - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule id(s): {', '.join(unknown)}; known: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.id in set(select)]
    files = collect_files(paths, root=root)
    context = LintContext(files)
    findings: List[Finding] = []
    suppressed = 0
    for source in files:
        raw: List[Finding] = []
        for rule in rules:
            raw.extend(rule.check(source, context))
        # Invalid pragmas never suppress; every valid one may.
        valid = [p for p in source.pragmas if _pragma_valid(p, known)]
        for finding in raw:
            if any(
                finding.rule in p.rules and p.covers(finding.line) for p in valid
            ):
                suppressed += 1
            else:
                findings.append(finding)
        findings.extend(_pragma_findings(source, known))
    findings.sort()
    return LintReport(
        findings=findings,
        files_scanned=len(files),
        suppressed=suppressed,
        rules_run=[rule.id for rule in rules],
    )


def lint_text(
    rules: Sequence[Rule], text: str, rel: str, display: str = "<memory>"
) -> List[Finding]:
    """Check an in-memory snippet as if it lived at logical path ``rel``.

    Test helper: fixture tests and rule unit tests use this to place a
    snippet anywhere in the package without touching the filesystem.
    Pragma semantics match :func:`run_lint` exactly.
    """
    tree = ast.parse(text, filename=display)
    source = SourceFile(
        path=Path(display),
        display=display,
        rel=rel,
        text=text,
        tree=tree,
        pragmas=parse_pragmas(text),
    )
    context = LintContext([source])
    known = {rule.id for rule in rules}
    valid = [p for p in source.pragmas if _pragma_valid(p, known)]
    findings = []
    for rule in rules:
        for finding in rule.check(source, context):
            if not any(
                finding.rule in p.rules and p.covers(finding.line) for p in valid
            ):
                findings.append(finding)
    findings.extend(_pragma_findings(source, known))
    return sorted(findings)
