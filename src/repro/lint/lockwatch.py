"""Runtime lock-order watchdog — the dynamic half of LOCK-001.

The static checker sees *lexically* nested acquisitions; real inversions
usually hide across call boundaries (a metrics callback re-entering the
catalog, a warmer cycle touching an entry lock while holding the
registry lock).  This module wraps live locks in order-checking proxies:
every acquisition is checked against the acquiring **thread's** currently
held chain, and any acquisition whose rank is ≤ an already-held rank
(same-instance RLock re-entry excepted) is recorded — and, by default,
raised — as a :class:`LockOrderViolation` *at the acquisition site*,
with both lock names and the thread's full chain in the message.  That
turns a latent ABBA deadlock (which only manifests under exactly the
wrong interleaving) into a deterministic failure on *any* interleaving
that merely attempts the wrong order.

The stress (``-m stress``) and chaos (``-m chaos``) suites arm a
watchdog over the catalog/metrics stack they storm, so the documented
hierarchy::

    CatalogEntry.load_lock (10)  →  ModelCatalog._lock (20)  →  MetricsRegistry._lock (30)

is exercised under 8-thread fault storms on every tier-1 run.

Usage::

    watchdog = LockOrderWatchdog()
    watchdog.watch_catalog(catalog)     # _lock + every entry's load_lock
    watchdog.watch_metrics(metrics)
    ... run traffic ...
    watchdog.assert_clean()             # no inversions observed
    watchdog.unwatch_all()              # restore the raw locks

A proxy forwards ``acquire``/``release``/context-manager use to the
wrapped lock unchanged, so instrumented code needs no modification; a
failed/timed-out ``acquire`` is never counted as held.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "LockOrderViolation",
    "WatchedLock",
    "LockOrderWatchdog",
    "DEFAULT_HIERARCHY",
]

#: Documented rank per lock role; higher = innermost / acquired later.
#: Keep in lockstep with docs/ARCHITECTURE.md and the static
#: LOCK_HIERARCHY table in :mod:`repro.lint.rules.locks`.
DEFAULT_HIERARCHY: Dict[str, int] = {
    "CatalogEntry.load_lock": 10,
    "ModelCatalog._lock": 20,
    "MetricsRegistry._lock": 30,
}


class LockOrderViolation(RuntimeError):
    """A thread attempted to acquire locks against the documented order."""


class WatchedLock:
    """Order-checking proxy around one lock (Lock or RLock).

    The proxy checks *before* blocking: an inversion is reported even on
    interleavings where the raw acquire would have succeeded, which is
    the whole point — the bug is the attempted order, not the outcome.
    """

    def __init__(self, inner: Any, watchdog: "LockOrderWatchdog", label: str, rank: int):
        self._inner = inner
        self._watchdog = watchdog
        self.label = label
        self.rank = rank

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watchdog._check_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchdog._push(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watchdog._pop(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def locked(self) -> bool:  # Lock only; RLock lacks it on older pythons
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if inner_locked is not None else False

    def __repr__(self) -> str:
        return f"WatchedLock({self.label!r}, rank={self.rank}, inner={self._inner!r})"


class LockOrderWatchdog:
    """Records per-thread acquisition chains and flags hierarchy inversions.

    ``raise_on_violation=True`` (default) raises at the faulty acquire —
    the violating thread gets the traceback.  Either way every violation
    is appended to :attr:`violations`, so a suite that swallows worker
    exceptions still fails on :meth:`assert_clean`.
    """

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.violations: List[str] = []
        self._violations_lock = threading.Lock()
        self._tls = threading.local()
        self._instrumented: List[Tuple[Any, str, Any]] = []
        #: Total acquisitions checked (observability: proves the watched
        #: locks actually carried the traffic the suite claims).
        self.checked = 0

    # -- chain bookkeeping (all per-thread, hence unlocked) -------------
    def _chain(self) -> List[WatchedLock]:
        chain = getattr(self._tls, "chain", None)
        if chain is None:
            chain = self._tls.chain = []
        return chain

    def _check_acquire(self, lock: WatchedLock) -> None:
        self.checked += 1  # benign race: diagnostic counter only
        chain = self._chain()
        for held in chain:
            if held is lock:
                continue  # RLock re-entry of the same instance is legal
            if held.rank >= lock.rank:
                self._record(lock, held, chain)
                break

    def _push(self, lock: WatchedLock) -> None:
        self._chain().append(lock)

    def _pop(self, lock: WatchedLock) -> None:
        chain = self._chain()
        for index in range(len(chain) - 1, -1, -1):
            if chain[index] is lock:
                del chain[index]
                return

    def _record(
        self, lock: WatchedLock, held: WatchedLock, chain: List[WatchedLock]
    ) -> None:
        order = " -> ".join(f"{c.label}({c.rank})" for c in chain)
        message = (
            f"lock-order inversion in thread {threading.current_thread().name!r}: "
            f"acquiring {lock.label} (rank {lock.rank}) while holding "
            f"{held.label} (rank {held.rank}); full chain: [{order}] -> "
            f"{lock.label}({lock.rank})"
        )
        with self._violations_lock:
            self.violations.append(message)
        if self.raise_on_violation:
            raise LockOrderViolation(message)

    # -- instrumentation -------------------------------------------------
    def wrap(self, inner: Any, label: str, rank: Optional[int] = None) -> WatchedLock:
        """Wrap a raw lock; rank defaults to the documented hierarchy."""
        if rank is None:
            rank = DEFAULT_HIERARCHY[label]
        return WatchedLock(inner, self, label, rank)

    def instrument(
        self, obj: Any, attr: str, label: str, rank: Optional[int] = None
    ) -> WatchedLock:
        """Replace ``obj.<attr>`` with a watched proxy (reversible)."""
        inner = getattr(obj, attr)
        if isinstance(inner, WatchedLock):
            return inner
        watched = self.wrap(inner, label, rank)
        setattr(obj, attr, watched)
        self._instrumented.append((obj, attr, inner))
        return watched

    def watch_catalog(self, catalog: Any) -> None:
        """Watch a ModelCatalog's ``_lock`` and every entry's ``load_lock``.

        Entries created by later ``scan()`` calls are not auto-watched;
        call again after a scan to cover them.  Quiesce the catalog first
        (instrumentation itself takes no locks).
        """
        self.instrument(catalog, "_lock", "ModelCatalog._lock")
        for name, entry in catalog.entries.items():
            self.instrument(
                entry,
                "load_lock",
                f"CatalogEntry.load_lock[{name}]",
                DEFAULT_HIERARCHY["CatalogEntry.load_lock"],
            )

    def watch_metrics(self, metrics: Any) -> None:
        """Watch a MetricsRegistry's ``_lock`` (the innermost rank)."""
        self.instrument(metrics, "_lock", "MetricsRegistry._lock")

    def watch_stack(self, catalog: Any = None, metrics: Any = None) -> "LockOrderWatchdog":
        if catalog is not None:
            self.watch_catalog(catalog)
            if metrics is None:
                metrics = getattr(catalog, "metrics", None)
        if metrics is not None:
            self.watch_metrics(metrics)
        return self

    def unwatch_all(self) -> None:
        """Restore every instrumented attribute to its raw lock."""
        while self._instrumented:
            obj, attr, inner = self._instrumented.pop()
            current = getattr(obj, attr, None)
            if isinstance(current, WatchedLock):
                setattr(obj, attr, inner)

    # -- verdicts --------------------------------------------------------
    def assert_clean(self) -> None:
        """Raise with every recorded inversion if any were observed."""
        with self._violations_lock:
            if self.violations:
                raise LockOrderViolation(
                    f"{len(self.violations)} lock-order inversion(s) observed:\n"
                    + "\n".join(self.violations)
                )

    def __enter__(self) -> "LockOrderWatchdog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unwatch_all()
