"""Text and JSON reporters for ``repro.lint`` runs."""

from __future__ import annotations

import json

from .engine import LintReport

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bump when the JSON shape changes, so CI can diff findings across runs.
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    lines = [finding.format() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"{len(report.findings)} {noun} in {report.files_scanned} files "
        f"({report.suppressed} suppressed by pragma; "
        f"rules: {', '.join(report.rules_run)})"
    )
    if report.clean:
        summary = (
            f"clean: 0 findings in {report.files_scanned} files "
            f"({report.suppressed} suppressed by pragma)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "clean": report.clean,
            "files_scanned": report.files_scanned,
            "suppressed": report.suppressed,
            "rules_run": report.rules_run,
            "findings": [finding.as_dict() for finding in report.findings],
        },
        indent=2,
        sort_keys=True,
    )
