"""``repro.lint`` — the serving stack's unwritten rules, machine-enforced.

Eight PRs of concurrency, fork-safety, determinism and atomic-IO work
accumulated invariants that used to live only in docs/ARCHITECTURE.md
prose and reviewers' heads.  Each has already produced a shipped bug
when violated by hand; this package turns them into checkers:

========== ==================================================================
RNG-001    no global-state randomness — seeded ``default_rng``/``SeedSequence``
           streams only (the scenario digests depend on it)
CLOCK-001  monotonic clocks for durations/deadlines in serving/, training/,
           persist/ — ``time.time()`` steps and corrupts every difference
LOCK-001   the documented lock hierarchy (load_lock → catalog._lock →
           metrics._lock), statically for lexical nests and dynamically via
           :mod:`repro.lint.lockwatch` under the stress/chaos storms
FORK-001   lock-owning serving classes implement
           ``_reinit_after_fork_in_child`` and register with forksafe
RAISE-001  gateway/catalog/pool entry points raise the typed taxonomy,
           never bare ``KeyError``/``IndexError``
IO-001     persist/ bytes reach disk only through tmp+fsync+``os.replace``
EXPORT-001 package ``__init__`` ``__all__``/re-exports actually resolve
========== ==================================================================

Run it::

    python -m repro.lint src             # text report, exit 1 on findings
    python -m repro.lint --json src      # machine-diffable findings

Exemptions are in-line and must be justified::

    # repro: allow(CLOCK-001) -- compares against file mtimes (wall clock)

A pragma without a reason is itself a finding (``PRAGMA-001``), so the
exemption ledger stays honest.  The tier-1 conformance test
(``tests/lint/test_codebase_conformance.py``) runs the full registry
over ``src/`` on every bare ``pytest`` run — a violation anywhere in the
tree fails CI, not review.
"""

from __future__ import annotations

from .engine import (
    Finding,
    LintContext,
    LintReport,
    LintUsageError,
    Pragma,
    Rule,
    SourceFile,
    lint_text,
    run_lint,
)
from .lockwatch import (
    DEFAULT_HIERARCHY,
    LockOrderViolation,
    LockOrderWatchdog,
    WatchedLock,
)
from .report import render_json, render_text
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "LintReport",
    "LintUsageError",
    "Pragma",
    "Rule",
    "SourceFile",
    "run_lint",
    "lint_text",
    "render_text",
    "render_json",
    "LockOrderWatchdog",
    "LockOrderViolation",
    "WatchedLock",
    "DEFAULT_HIERARCHY",
]
