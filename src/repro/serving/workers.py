"""Multi-process serving tier: a pool of gateway worker processes.

One Python process can only push numpy's GIL-free matmuls so far; the
next scaling axis is processes.  :class:`WorkerPool` runs N **spawn**-
context worker processes, each owning a full single-process serving stack
(:class:`~repro.serving.catalog.ModelCatalog` +
:class:`~repro.serving.gateway.ServingGateway`) over one shared artifact
directory.  Publish ``layout="dir"`` artifacts
(:func:`repro.persist.save_model`) into that directory and every worker
memory-maps the same weight files — one page-cache copy for the whole
fleet instead of N private heaps.

Design notes:

* **spawn, not fork.**  Workers are started from a clean interpreter, so
  they inherit no locks, no daemon threads, and no partially-initialized
  serving state.  (The ``fork`` path is *also* made safe by
  :mod:`repro.serving.forksafe` — but safety-after-fork is a recovery
  mechanism, not an architecture.)
* **Per-worker queues in both directions — no lock shared between
  siblings.**  Every ``multiprocessing`` queue hides an IPC lock, and a
  worker SIGKILLed while holding one (mid-``put`` on a reply, or parked
  in ``get`` — which holds the reader lock *while waiting*) leaves that
  lock held forever.  With a shared reply queue one crash therefore
  wedges the whole fleet; with per-worker queues a crash can only
  corrupt the dead worker's own pair.  The parent round-robins requests
  to per-worker request queues (so it always knows which worker owns
  which request) and waits on all reply-queue pipes at once via
  ``multiprocessing.connection.wait`` — the same pattern
  ``concurrent.futures.process`` uses.
* **Crash respawn replaces the queues, not just the process.**  A
  crashed worker is detected (its process dies) and its slot gets a
  fresh process *and* fresh queues (the old pair may hold dead locks or
  half-written pickles); everything outstanding on the slot — taken or
  still queued — is resubmitted under new request ids.  A request whose
  resubmission *also* crashes the replacement is declared poison and
  fails with :class:`WorkerCrashError` instead of crash-looping the
  slot; duplicate replies after a resubmission race are ignored.
* **Fleet-wide metrics.**  Each worker snapshots its own
  :class:`~repro.serving.metrics.MetricsRegistry`;
  :meth:`WorkerPool.fleet_metrics` merges them through the histograms'
  raw bucket counts (:meth:`MetricsRegistry.merge_snapshots`), so the
  pool reports one true p50/p95/p99, not an average of averages.

Usage (see also ``examples/serving_workers.py``) — publish mmap-able
artifacts, start the pool, serve, read one fleet-wide metrics view:

>>> import tempfile
>>> import numpy as np
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model
>>> from repro.serving import WorkerPool
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> directory = Path(tempfile.mkdtemp())
>>> _ = save_model(build_model("MF", split.train), directory / "mf.npyd", layout="dir")
>>> with WorkerPool(directory, split.train, workers=2, default_model="mf") as pool:
...     result = pool.top_k(np.arange(4), k=3)
...     fleet = pool.fleet_metrics()
>>> result.items.shape
(4, 3)
>>> fleet["workers"], fleet["totals"]["requests"]
(2, 1)

The parent-side API is intentionally synchronous and serialized (one
internal lock): the pool is a throughput device — parallelism comes from
the workers overlapping *execution*, pipelined via :meth:`top_k_many` —
not a concurrency device for parent threads.

``simulate_io_seconds`` makes every worker sleep that long per request
before scoring.  It exists for load testing: it emulates a downstream
stall (feature-store fetch, remote storage read) that a real deployment
would have, which is exactly the component of request time that worker
processes overlap.  The scaling benchmark records curves with and
without it, labeled as such; it is never on by default.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.dataset import GroupBuyingDataset
from . import forksafe
from .errors import DeadlineExceededError, OverloadedError
from .faults import FaultPlan
from .metrics import MetricsRegistry
from .resilience import Deadline, ResiliencePolicy
from .topk import TopKResult

__all__ = ["WorkerPool", "WorkerPoolError", "WorkerCrashError"]


class WorkerPoolError(RuntimeError):
    """The pool cannot serve: startup failure, shutdown state, or timeout."""


class WorkerCrashError(WorkerPoolError):
    """A worker process died and the request could not be completed."""


@dataclass
class _WorkerConfig:
    """Everything a spawn worker needs to build its serving stack (picklable)."""

    directory: str
    dataset: GroupBuyingDataset
    default_model: Optional[str]
    default_k: int
    resident_budget: Optional[int]
    warm: bool
    simulate_io_seconds: float
    policy: Optional[ResiliencePolicy] = None
    fault_plan: Optional[FaultPlan] = None


def _worker_main(index: int, config: _WorkerConfig, request_queue, reply_queue) -> None:
    """Worker process body: build a serving stack, answer until sentinel.

    Module-level (not a closure) because the spawn context imports and
    pickles it.  Every reply is tagged: lifecycle messages carry the
    worker index, request replies carry the request id.
    """
    from .catalog import ModelCatalog
    from .faults import fault_point, install_plan
    from .gateway import ServingGateway

    try:
        catalog = ModelCatalog(
            config.directory,
            config.dataset,
            default_k=config.default_k,
            resident_budget=config.resident_budget,
        )
        gateway = ServingGateway(
            catalog,
            default_model=config.default_model,
            policy=config.policy,
            # The parent owns the pool's deadline_exceeded counter: it
            # counts every expiry exactly once when it raises — whether it
            # noticed the expiry itself or a worker's typed reply told it.
            # The worker gateway still *enforces* deadlines, silently.
            record_deadline_metrics=False,
        )
        if config.warm:
            catalog.warm_all()
        reply_queue.put(("ready", index, list(catalog.names)))
    except BaseException:
        reply_queue.put(("init_error", index, traceback.format_exc()))
        return
    # The fault plan arms only after startup succeeded: chaos targets the
    # *serving* phase deterministically, not a racy mix with warm-up IO.
    if config.fault_plan is not None:
        install_plan(config.fault_plan)
    while True:
        message = request_queue.get()
        if message is None:
            reply_queue.put(("stopped", index, None))
            return
        kind, rid, payload = message
        try:
            # Chaos hook: "error" rules reply typed, "stall" rules emulate
            # a hung worker (the parent's deadline/timeout must cope), and
            # "kill" rules SIGKILL this process mid-request (the parent's
            # crash respawn must cope).
            fault_point("worker.request", kind)
            if kind == "top_k":
                users, k, model, request_deadline = payload
                if request_deadline is not None and request_deadline.expired:
                    # The parent has abandoned (or is about to abandon)
                    # this request; reply typed without the cost of a
                    # pointless serve.  The parent owns the deadline
                    # counter, so the fleet view counts it exactly once.
                    raise DeadlineExceededError(
                        "deadline expired before the worker dequeued the request"
                    )
                if config.simulate_io_seconds > 0.0:
                    # Emulated downstream stall (see module docstring).
                    time.sleep(config.simulate_io_seconds)
                result = gateway.top_k(
                    np.asarray(users), k=k, model=model, deadline=request_deadline
                )
                reply_queue.put(("result", rid, result))
            elif kind == "metrics":
                reply_queue.put(("metrics", rid, gateway.metrics.snapshot()))
            else:
                reply_queue.put(("error", rid, ValueError(f"unknown request kind {kind!r}")))
        except Exception as error:
            reply_queue.put(("error", rid, error))


class _WorkerHandle:
    """Parent-side bookkeeping for one worker slot.

    The slot outlives any single process: a crash replaces ``process``
    *and* both queues (module docstring), but the slot keeps its index,
    its respawn count, and its place in the round-robin.
    """

    __slots__ = ("index", "process", "request_queue", "reply_queue", "respawns", "stopped")

    def __init__(self, index: int, request_queue, reply_queue) -> None:
        self.index = index
        self.process = None
        self.request_queue = request_queue
        self.reply_queue = reply_queue
        self.respawns = 0
        self.stopped = False


class WorkerPool:
    """N spawn-context serving processes over one artifact directory.

    Parameters mirror the single-process stack where they overlap:
    ``directory``/``dataset``/``default_model``/``default_k``/
    ``resident_budget`` are forwarded to each worker's
    :class:`~repro.serving.catalog.ModelCatalog` and
    :class:`~repro.serving.gateway.ServingGateway`.  Pool-specific knobs:

    ``workers``
        Process count.  On a machine with C cores, CPU-bound throughput
        tops out near C workers; IO-stalled workloads scale past it.
    ``warm``
        Cold-start every model during worker startup (default), so the
        first request never pays a load.
    ``start_timeout`` / ``request_timeout``
        Seconds to wait for all workers to report ready / for one
        request's reply before raising :class:`WorkerPoolError`.
    ``max_respawns``
        Per-slot crash budget.  A dying worker is replaced and its
        in-flight requests are resubmitted; a slot that keeps dying
        exhausts the budget and the pool fails loudly.
    ``simulate_io_seconds``
        Per-request emulated downstream stall inside each worker — load
        testing only (module docstring).

    The pool is a context manager: ``with WorkerPool(...) as pool:``
    starts the workers and guarantees :meth:`stop` on exit.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        dataset: GroupBuyingDataset,
        *,
        workers: int = 2,
        default_model: Optional[str] = None,
        default_k: int = 10,
        resident_budget: Optional[int] = None,
        warm: bool = True,
        start_timeout: float = 120.0,
        request_timeout: float = 60.0,
        max_respawns: int = 3,
        simulate_io_seconds: float = 0.0,
        policy: Optional[ResiliencePolicy] = None,
        max_inflight: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if simulate_io_seconds < 0.0:
            raise ValueError(f"simulate_io_seconds must be >= 0, got {simulate_io_seconds}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (or None), got {max_inflight}")
        self.directory = Path(directory)
        self.workers = workers
        self.start_timeout = float(start_timeout)
        self.request_timeout = float(request_timeout)
        self.max_respawns = max_respawns
        #: Parent-side queue-depth budget: more than this many outstanding
        #: requests (pipelined via :meth:`top_k_many`) sheds the excess
        #: with a typed ``OverloadedError`` instead of queueing unboundedly.
        self.max_inflight = max_inflight
        #: Parent-side registry: sheds at the pool boundary, plus *every*
        #: deadline expiry — the parent owns the pool's deadline counter
        #: (worker gateways enforce deadlines without counting them), so
        #: the fleet view counts each expired request exactly once.
        #: Folded into :meth:`fleet_metrics`.
        self.metrics = MetricsRegistry()
        self._config = _WorkerConfig(
            directory=str(self.directory),
            dataset=dataset,
            default_model=default_model,
            default_k=default_k,
            resident_budget=resident_budget,
            warm=warm,
            simulate_io_seconds=float(simulate_io_seconds),
            policy=policy,
            fault_plan=fault_plan,
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._handles: List[_WorkerHandle] = []
        # rid -> (kind, payload, worker_index, resubmissions)
        self._outstanding: Dict[int, Tuple[str, Any, int, int]] = {}
        self._replies: Dict[int, Tuple[str, Any]] = {}
        self._next_rid = 0
        self._round_robin = 0
        self._started = False
        self._stopped = False
        #: Total successful worker respawns after crashes (observability).
        self.respawns = 0
        #: Exit codes recorded by :meth:`stop`, by worker slot.
        self.exit_codes: Dict[int, Optional[int]] = {}
        #: Model names reported by the first ready worker.
        self.model_names: List[str] = []
        # One lock serializes the parent-side API (class docstring).
        self._api_lock = threading.Lock()
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        # A fork mid-call copies a held _api_lock into the child.  Replace
        # it so the child's API does not deadlock — the worker *processes*
        # remain children of the original parent (a forked copy can submit
        # requests over the inherited queues but must leave lifecycle
        # management to the parent that spawned them).
        self._api_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _new_handle(self, index: int) -> _WorkerHandle:
        # Requests ride a full Queue (the parent-side feeder thread makes
        # put() non-blocking even if the worker stops draining); replies
        # ride a SimpleQueue (no feeder thread in the worker, and its pipe
        # can be multiplexed through ``multiprocessing.connection.wait``).
        return _WorkerHandle(index, self._ctx.Queue(), self._ctx.SimpleQueue())

    def _spawn(self, handle: _WorkerHandle) -> None:
        handle.process = self._ctx.Process(
            target=_worker_main,
            args=(handle.index, self._config, handle.request_queue, handle.reply_queue),
            name=f"repro-serving-worker-{handle.index}",
            daemon=True,
        )
        handle.process.start()

    def _discard_queues(self, handle: _WorkerHandle) -> None:
        """Abandon a dead worker's queue pair (their locks may be held forever)."""
        handle.request_queue.cancel_join_thread()
        handle.request_queue.close()
        handle.reply_queue.close()

    def _poll_replies(self, timeout: float) -> List[Tuple[str, Any, Any]]:
        """Wait up to ``timeout`` for replies on any live worker's queue.

        Returns every message that is ready (at most one per worker per
        call, which keeps collection fair across workers).  An empty list
        means the timeout elapsed — the caller decides whether that is a
        crash to investigate or just a slow request.
        """
        by_reader = {
            handle.reply_queue._reader: handle  # noqa: SLF001 — see below
            for handle in self._handles
            if not handle.stopped
        }
        # Waiting on the underlying pipes (rather than looping over
        # per-queue get(timeout=...) calls, which would cost one full
        # timeout per idle worker) is the standard-library pattern:
        # concurrent.futures.process multiplexes its result queue the
        # same way.
        ready = multiprocessing.connection.wait(list(by_reader), timeout=timeout)
        messages: List[Tuple[str, Any, Any]] = []
        for reader in ready:
            try:
                messages.append(by_reader[reader].reply_queue.get())
            except (EOFError, OSError):  # half-written pickle from a dying worker
                continue
        return messages

    def start(self) -> "WorkerPool":
        """Spawn all workers and wait until every one reports ready."""
        with self._api_lock:
            if self._started:
                raise WorkerPoolError("WorkerPool.start() called twice")
            if self._stopped:
                raise WorkerPoolError("this WorkerPool was stopped; create a new one")
            self._started = True
            for index in range(self.workers):
                handle = self._new_handle(index)
                self._handles.append(handle)
                self._spawn(handle)
            deadline = time.monotonic() + self.start_timeout
            ready = set()
            while len(ready) < self.workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._stop_locked(timeout=5.0)
                    raise WorkerPoolError(
                        f"only {len(ready)}/{self.workers} workers became ready within "
                        f"{self.start_timeout:.0f}s"
                    )
                messages = self._poll_replies(timeout=min(0.2, remaining))
                if not messages:
                    for handle in self._handles:
                        if handle.index not in ready and not handle.process.is_alive():
                            self._stop_locked(timeout=5.0)
                            raise WorkerPoolError(
                                f"worker {handle.index} died during startup "
                                f"(exit code {handle.process.exitcode})"
                            )
                    continue
                for kind, tag, payload in messages:
                    if kind == "ready":
                        ready.add(tag)
                        if not self.model_names:
                            self.model_names = list(payload)
                    elif kind == "init_error":
                        self._stop_locked(timeout=5.0)
                        raise WorkerPoolError(f"worker {tag} failed to initialize:\n{payload}")
                    # Anything else at this point is stale noise; drop it.
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self, timeout: float = 30.0) -> Dict[int, Optional[int]]:
        """Graceful shutdown: sentinel every queue, join, escalate stragglers.

        Returns the per-slot exit codes (0 for a clean exit; negative for
        a signal-terminated straggler).  Idempotent.
        """
        with self._api_lock:
            return self._stop_locked(timeout)

    def _stop_locked(self, timeout: float) -> Dict[int, Optional[int]]:
        if self._stopped:
            return dict(self.exit_codes)
        self._stopped = True
        for handle in self._handles:
            handle.stopped = True
            try:
                handle.request_queue.put(None)
            except (ValueError, OSError):  # queue already closed/broken
                pass
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            if handle.process is None:
                continue
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2.0)
            self.exit_codes[handle.index] = handle.process.exitcode
        for handle in self._handles:
            self._discard_queues(handle)
        return dict(self.exit_codes)

    @property
    def alive_workers(self) -> int:
        """Number of currently-live worker processes."""
        return sum(
            1
            for handle in self._handles
            if handle.process is not None and handle.process.is_alive()
        )

    # ------------------------------------------------------------------
    # Dispatch machinery (all called with _api_lock held)
    # ------------------------------------------------------------------
    def _require_running(self) -> None:
        if not self._started:
            raise WorkerPoolError("WorkerPool is not started; call start() or use it as a context manager")
        if self._stopped:
            raise WorkerPoolError("WorkerPool is stopped")

    def _submit_to(self, handle: _WorkerHandle, kind: str, payload: Any, resubmissions: int = 0) -> int:
        rid = self._next_rid
        self._next_rid += 1
        self._outstanding[rid] = (kind, payload, handle.index, resubmissions)
        handle.request_queue.put((kind, rid, payload))
        return rid

    def _model_label(self, model: Optional[str]) -> str:
        """The metrics key parent-side outcomes are recorded under."""
        return model or self._config.default_model or "_pool_"

    def _request_deadline(self, deadline) -> Optional[Deadline]:
        """Normalize the deadline argument, applying the policy default."""
        if deadline is not None:
            return Deadline.coerce(deadline)
        policy = self._config.policy
        if policy is not None and policy.deadline_seconds is not None:
            return Deadline.after(policy.deadline_seconds)
        return None

    def _submit(self, kind: str, payload: Any) -> int:
        if self.max_inflight is not None and len(self._outstanding) >= self.max_inflight:
            label = self._model_label(payload[2] if kind == "top_k" else None)
            self.metrics.record_shed(label)
            raise OverloadedError(
                f"overloaded: {len(self._outstanding)} requests outstanding >= pool "
                f"budget {self.max_inflight}; request for {label!r} shed"
            )
        handle = self._handles[self._round_robin % len(self._handles)]
        self._round_robin += 1
        return self._submit_to(handle, kind, payload)

    def _check_workers(self) -> None:
        """Respawn dead workers and resubmit their in-flight requests."""
        for handle in self._handles:
            if handle.stopped or handle.process is None or handle.process.is_alive():
                continue
            exitcode = handle.process.exitcode
            if handle.respawns >= self.max_respawns:
                raise WorkerCrashError(
                    f"worker {handle.index} died (exit code {exitcode}) and exhausted its "
                    f"respawn budget ({self.max_respawns})"
                )
            handle.respawns += 1
            self.respawns += 1
            # The dead worker's queues are unusable — it may have died
            # holding either queue's internal lock, or mid-pickle (module
            # docstring).  The replacement gets a fresh pair.
            self._discard_queues(handle)
            fresh = self._new_handle(handle.index)
            handle.request_queue = fresh.request_queue
            handle.reply_queue = fresh.reply_queue
            self._spawn(handle)
            # Everything outstanding on the slot — dequeued by the dead
            # worker or still sitting in the discarded request queue — is
            # resubmitted under a new id.  A reply the dead worker managed
            # to send before crashing may still arrive for the old id; the
            # duplicate is dropped in _collect.
            for rid, (kind, payload, owner, resubmissions) in list(self._outstanding.items()):
                if owner != handle.index:
                    continue
                if resubmissions >= 1:
                    del self._outstanding[rid]
                    self._replies[rid] = (
                        "error",
                        WorkerCrashError(
                            f"request {rid} crashed worker {handle.index} twice; not retrying "
                            f"a poison request"
                        ),
                    )
                    continue
                del self._outstanding[rid]
                new_rid = self._submit_to(handle, kind, payload, resubmissions + 1)
                self._replies[rid] = ("moved", new_rid)

    def _collect(
        self, rid: int, deadline: Optional[Deadline] = None, label: Optional[str] = None
    ) -> Any:
        """Wait for ``rid``'s reply, servicing crash recovery while waiting.

        Both give-up paths (the pool's ``request_timeout`` and the
        request's own ``deadline``) first *forget* the request id: a reply
        that arrives after its request was declared dead must be discarded
        by id — never delivered to a later request, never resubmitted as a
        zombie by crash recovery, never left leaking in ``_outstanding``.
        The deadline is checked *before* any stashed reply is consumed, so
        a result whose reply was drained earlier (while collecting another
        request in :meth:`top_k_many`) is still refused once the deadline
        has passed — no silent late answers.

        The parent owns the pool's ``deadline_exceeded`` counter (worker
        gateways enforce deadlines but do not count them): exactly one
        count lands per expired request, at the raise — here on the
        parent's own expiry check, or when a worker's typed
        :class:`DeadlineExceededError` reply is re-raised.
        """
        timeout_at = time.monotonic() + self.request_timeout
        while True:
            if deadline is not None and deadline.expired:
                self._outstanding.pop(rid, None)  # late reply → dropped by id
                self._replies.pop(rid, None)  # a stashed reply is late now too
                if label is not None:
                    self.metrics.record_deadline_exceeded(label)
                raise DeadlineExceededError(
                    f"deadline exceeded waiting for the worker reply to request {rid} "
                    f"({self.alive_workers}/{len(self._handles)} workers alive)"
                )
            reply = self._replies.pop(rid, None)
            if reply is not None:
                kind, payload = reply
                if kind == "moved":  # request was resubmitted under a new id
                    rid = payload
                    continue
                if kind == "error":
                    if label is not None and isinstance(payload, DeadlineExceededError):
                        self.metrics.record_deadline_exceeded(label)
                    raise payload
                return payload
            remaining = timeout_at - time.monotonic()
            if remaining <= 0:
                self._outstanding.pop(rid, None)  # late reply → dropped by id
                raise WorkerPoolError(
                    f"no reply for request {rid} within {self.request_timeout:.0f}s "
                    f"({self.alive_workers}/{len(self._handles)} workers alive)"
                )
            wait = min(0.1, remaining)
            if deadline is not None:
                wait = min(wait, max(deadline.remaining(), 0.001))
            messages = self._poll_replies(timeout=wait)
            if not messages:
                self._check_workers()
                continue
            for kind, tag, payload in messages:
                if kind in ("result", "metrics", "error"):
                    if tag in self._outstanding:
                        del self._outstanding[tag]
                        self._replies[tag] = ("error" if kind == "error" else "value", payload)
                    # else: duplicate reply after a resubmission race — drop.
                elif kind == "init_error":
                    raise WorkerPoolError(f"respawned worker {tag} failed to initialize:\n{payload}")
                # "ready"/"stopped" lifecycle messages are not per-request; drop.

    def _collect_value(
        self, rid: int, deadline: Optional[Deadline] = None, label: Optional[str] = None
    ) -> Any:
        return self._collect(rid, deadline=deadline, label=label)

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------
    def top_k(
        self,
        users: np.ndarray,
        k: Optional[int] = None,
        model: Optional[str] = None,
        deadline=None,
    ) -> TopKResult:
        """Top-k lists for ``users`` from one worker (round-robin routed).

        Same contract as
        :meth:`repro.serving.gateway.ServingGateway.top_k`; validation
        errors raised inside the worker (unknown model, out-of-range user
        IDs) re-raise here with their original type.  ``deadline``
        (seconds or a :class:`~repro.serving.resilience.Deadline`) is
        pickled with the request as an absolute monotonic expiry, so time
        spent queued behind a stalled worker counts against it; an
        expired wait raises a typed
        :class:`~repro.serving.errors.DeadlineExceededError` here and the
        late reply — if one ever comes — is discarded by request id.
        """
        with self._api_lock:
            self._require_running()
            deadline = self._request_deadline(deadline)
            rid = self._submit("top_k", (np.asarray(users), k, model, deadline))
            return self._collect_value(rid, deadline=deadline, label=self._model_label(model))

    def top_k_many(
        self,
        batches: Sequence[np.ndarray],
        k: Optional[int] = None,
        model: Optional[str] = None,
        deadline=None,
    ) -> List[TopKResult]:
        """Pipelined fan-out: submit every batch, then collect every reply.

        The throughput entry point — all workers run concurrently instead
        of ping-ponging one request at a time.  Results come back in
        request order.  The first worker-side error is raised after all
        replies are in (so no reply is left orphaned in the queue).  One
        ``deadline`` covers the whole fan-out; with a pool-level
        ``max_inflight``, batches beyond the budget are shed typed.
        """
        with self._api_lock:
            self._require_running()
            deadline = self._request_deadline(deadline)
            label = self._model_label(model)
            results: List[Any] = []
            first_error: Optional[BaseException] = None
            rids: List[Optional[int]] = []
            for batch in batches:
                try:
                    rids.append(self._submit("top_k", (np.asarray(batch), k, model, deadline)))
                except OverloadedError as error:  # shed at the pool boundary
                    if first_error is None:
                        first_error = error
                    rids.append(None)
            for rid in rids:
                if rid is None:
                    results.append(None)
                    continue
                try:
                    results.append(self._collect_value(rid, deadline=deadline, label=label))
                except Exception as error:  # collect the rest before raising
                    if first_error is None:
                        first_error = error
                    results.append(None)
            if first_error is not None:
                raise first_error
            return results

    # ------------------------------------------------------------------
    # Fleet observability
    # ------------------------------------------------------------------
    def metrics_snapshots(self) -> List[Dict[str, object]]:
        """One metrics snapshot per worker (targeted, not round-robined)."""
        with self._api_lock:
            self._require_running()
            rids = [self._submit_to(handle, "metrics", None) for handle in self._handles]
            return [self._collect_value(rid) for rid in rids]

    def fleet_metrics(self) -> Dict[str, object]:
        """All workers' metrics merged into one fleet-wide snapshot.

        Counters sum exactly; latency percentiles are merged through raw
        histogram buckets (:meth:`MetricsRegistry.merge_snapshots`), so
        ``fleet_metrics()["totals"]["request_latency"]["p99"]`` is the
        pool's true tail latency.  The parent's own registry — pool-level
        sheds and the pool's deadline expiries (the parent owns that
        counter; worker gateways enforce deadlines without counting them,
        so each expiry lands exactly once) — is folded in, so resilience
        outcomes reconcile fleet-wide; ``workers`` still counts worker
        processes only.
        """
        snapshots = self.metrics_snapshots()
        merged = MetricsRegistry.merge_snapshots(list(snapshots) + [self.metrics.snapshot()])
        merged["workers"] = len(snapshots)
        return merged
