"""Fork-safety for the serving runtime's locks and daemon threads.

``fork()`` copies exactly one thread into the child — whichever called
``fork`` — but copies *every* lock in whatever state it happens to be in.
A child forked while another thread holds a
:class:`~repro.serving.catalog.ModelCatalog` or
:class:`~repro.serving.metrics.MetricsRegistry` lock inherits a lock that
is **locked forever**: the owning thread does not exist in the child, so
the first request deadlocks.  A
:class:`~repro.serving.warmer.CatalogWarmer` is worse off still — its
daemon thread is simply gone in the child, while its bookkeeping claims
the warmer is running.

This module gives serving objects one rule to follow instead of N ad-hoc
fixes: implement ``_reinit_after_fork_in_child()`` (replace your locks,
forget your dead threads) and call :func:`protect` from ``__init__``.  A
single process-wide ``os.register_at_fork(after_in_child=...)`` hook —
registered lazily on the first :func:`protect` call, because registered
hooks can never be removed — walks a :class:`weakref.WeakSet` of live
protected instances and re-initializes each one inside the child, before
any user code runs.  Failures re-initializing one instance are reported
as a ``RuntimeWarning`` and do not block the others.

The hooks make *accidental* forks (a user calling ``os.fork`` or using a
``fork``-context ``multiprocessing`` pool around a live serving stack)
safe.  The supported multi-process serving tier,
:class:`~repro.serving.workers.WorkerPool`, uses the ``spawn`` context
and never inherits serving state at all — see
``docs/ARCHITECTURE.md`` ("Multi-process serving").

Usage — a class opts in by implementing the re-init hook and calling
:func:`protect` on construction (all serving classes already do):

>>> import threading
>>> from repro.serving import forksafe
>>> class Cache:
...     def __init__(self):
...         self._lock = threading.Lock()
...         forksafe.protect(self)
...     def _reinit_after_fork_in_child(self):
...         self._lock = threading.Lock()  # parent's lock state is meaningless
>>> cache = Cache()
>>> forksafe.protected_count() >= 1
True
"""

from __future__ import annotations

import os
import threading
import warnings
import weakref

__all__ = ["protect", "protected_count"]

_registry_lock = threading.Lock()
_protected: "weakref.WeakSet" = weakref.WeakSet()
_hook_installed = False


def protect(instance: object) -> None:
    """Re-initialize ``instance`` in any forked child, before it runs.

    ``instance`` must implement ``_reinit_after_fork_in_child()``.  Held
    weakly: protection ends when the instance is garbage-collected, and a
    protected object is never kept alive by this module.  Idempotent.
    """
    if not hasattr(instance, "_reinit_after_fork_in_child"):
        raise TypeError(
            f"{type(instance).__name__} cannot be fork-protected: it does not "
            f"implement _reinit_after_fork_in_child()"
        )
    global _hook_installed
    with _registry_lock:
        if not _hook_installed:
            # register_at_fork hooks are permanent, so install exactly one
            # for the process and fan out to whatever is alive at fork time.
            if hasattr(os, "register_at_fork"):  # absent on some platforms
                os.register_at_fork(after_in_child=_reinit_all_in_child)
            _hook_installed = True
        _protected.add(instance)


def protected_count() -> int:
    """Number of currently-protected live instances (observability/tests)."""
    with _registry_lock:
        return len(_protected)


def _reinit_all_in_child() -> None:
    # Runs inside the freshly-forked child, single-threaded by definition.
    # The parent's _registry_lock may have been held mid-fork, so do not
    # acquire it — replace it outright, then walk the inherited set.
    global _registry_lock
    _registry_lock = threading.Lock()
    for instance in list(_protected):
        try:
            instance._reinit_after_fork_in_child()
        except Exception as error:  # pragma: no cover - defensive
            warnings.warn(
                f"fork-safety re-init failed for {type(instance).__name__}: {error}",
                RuntimeWarning,
                stacklevel=1,
            )
