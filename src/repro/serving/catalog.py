"""The :class:`ModelCatalog`: a directory of model artifacts as a serving fleet.

One :class:`~repro.serving.store.EmbeddingStore` serves one model.  The
catalog scales that to *many* models — every GBGCN variant and baseline of
the paper's Table II/III comparison, or the candidates of an A/B rollout —
behind one object pointed at a directory of ``repro.persist`` artifacts:

* **header-only scan** — :meth:`ModelCatalog.scan` indexes the directory
  with :func:`~repro.persist.read_artifact_header` (no weight array is
  decompressed), validates each artifact's dataset-schema fingerprint
  against the serving dataset and its model name against the registry, and
  records unloadable files in :attr:`ModelCatalog.rejected` with a
  diagnosable reason;
* **lazy cold-start** — weights are loaded and embeddings propagated only
  on a model's first request (or an explicit :meth:`warm`);
* **LRU residency budget** — at most ``resident_budget`` models keep their
  weights and propagated embeddings in memory; the least recently used is
  evicted when the budget would overflow (explicit :meth:`evict` works
  too);
* **hot-swap** — every access re-stats the artifact file; when a trainer
  (e.g. :class:`~repro.training.callbacks.ModelCheckpoint` publishing into
  the catalog directory) atomically replaces it, the catalog reloads the
  new bytes and bumps the entry's ``version``.

Example — three artifacts, a budget of two residents, bitwise-identical
results to a hand-wired per-model store:

>>> import tempfile
>>> import numpy as np
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model
>>> from repro.serving import EmbeddingStore, ModelCatalog, TopKRecommender
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> directory = Path(tempfile.mkdtemp())
>>> for spec in ("MF", "ItemPop", "LightGCN"):
...     _ = save_model(build_model(spec, split.train), directory / f"{spec.lower()}.npz")
>>> catalog = ModelCatalog(directory, split.train, resident_budget=2)
>>> sorted(catalog.names)
['itempop', 'lightgcn', 'mf']
>>> catalog.resident_names  # nothing loaded yet: cold-start is lazy
[]
>>> users = np.asarray([0, 1, 2])
>>> result = catalog.recommender("mf", k=5).recommend(users)   # first request loads
>>> catalog.resident_names
['mf']
>>> reference = TopKRecommender(
...     EmbeddingStore.from_artifact(directory / "mf.npz", split.train),
...     k=5, dataset=split.train)
>>> bool(np.array_equal(result.items, reference.recommend(users).items))
True
>>> _ = catalog.warm("itempop"); _ = catalog.warm("lightgcn")
>>> catalog.resident_names     # budget is 2: 'mf' (least recent) was evicted
['itempop', 'lightgcn']
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import scipy.sparse as sp

from ..data.dataset import GroupBuyingDataset, observed_item_matrix
from ..persist.errors import ArtifactError
from ..persist.fingerprint import dataset_fingerprint, fingerprint_mismatch
from ..persist.index import ArtifactInfo, read_artifact_header, scan_artifact_directory
from .store import EmbeddingStore
from .topk import TopKRecommender

__all__ = ["CatalogError", "UnknownCatalogModelError", "CatalogEntry", "ModelCatalog"]


class CatalogError(Exception):
    """Base class for model-catalog failures (unknown names, vanished files)."""


class UnknownCatalogModelError(CatalogError, KeyError):
    """The requested name is not a servable entry of the catalog."""


@dataclass
class CatalogEntry:
    """One servable artifact of the catalog (metadata only — never weights).

    ``version`` starts at 1 and is bumped on every hot-swap reload, so
    callers can detect "same name, new model" across requests.
    """

    info: ArtifactInfo
    version: int = 1
    #: Wall-clock seconds of the most recent cold start (0.0 until loaded once).
    last_cold_start_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def model_name(self) -> str:
        return self.info.model_name

    @property
    def path(self) -> Path:
        return self.info.path


@dataclass
class _Resident:
    """A loaded model: its store plus the lazily built recommender."""

    store: EmbeddingStore
    version: int
    recommender: Optional[TopKRecommender] = None


@dataclass
class CatalogStats:
    """Lifecycle counters since catalog construction (monotonic)."""

    cold_starts: int = 0
    hits: int = 0
    evictions: int = 0
    reloads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cold_starts": self.cold_starts,
            "hits": self.hits,
            "evictions": self.evictions,
            "reloads": self.reloads,
        }


class ModelCatalog:
    """Artifact-backed multi-model catalog with lazy cold-start and LRU residency.

    Parameters
    ----------
    directory:
        The artifact directory to scan (``pattern`` selects the files).
    train_dataset:
        The dataset every artifact must have been trained on; each header's
        schema fingerprint is verified against it at scan time, so a model
        trained on a different universe can never be served by accident.
    serving_dataset:
        The dataset supplying observed interactions for top-k exclusion
        (defaults to ``train_dataset``; pass the *full* dataset when the
        training split should also be excluded).
    resident_budget:
        Maximum number of models kept loaded at once (``None`` = unbounded).
    default_k, exclude_observed:
        Defaults for recommenders built by :meth:`recommender`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        train_dataset: GroupBuyingDataset,
        *,
        serving_dataset: Optional[GroupBuyingDataset] = None,
        resident_budget: Optional[int] = None,
        default_k: int = 10,
        exclude_observed: bool = True,
        pattern: str = "*.npz",
    ) -> None:
        if resident_budget is not None and resident_budget < 1:
            raise ValueError("resident_budget must be at least 1 (or None for unbounded)")
        self.directory = Path(directory)
        self.train_dataset = train_dataset
        self.serving_dataset = serving_dataset if serving_dataset is not None else train_dataset
        self.resident_budget = resident_budget
        self.default_k = default_k
        self.exclude_observed = exclude_observed
        self.pattern = pattern
        #: Servable entries by catalog name (file stem), filled by :meth:`scan`.
        self.entries: Dict[str, CatalogEntry] = {}
        #: Files matching the pattern that cannot be served, with the reason.
        self.rejected: Dict[str, str] = {}
        self.stats = CatalogStats()
        self._residents: "OrderedDict[str, _Resident]" = OrderedDict()
        self._observed: Optional[sp.csr_matrix] = None
        self.scan()

    # ------------------------------------------------------------------
    # Directory scanning & validation
    # ------------------------------------------------------------------
    def scan(self) -> List[str]:
        """(Re-)index the artifact directory via header-only reads.

        Returns the sorted servable names.  Entries whose file vanished are
        dropped (and evicted); changed files are *not* reloaded here —
        hot-swap happens lazily on next access, so a scan never pays a cold
        start.  Invalid files land in :attr:`rejected` with a message that
        names the path and the failure, never in :attr:`entries`.
        """
        scan = scan_artifact_directory(self.directory, pattern=self.pattern)
        self.rejected = dict(scan.failures)
        fresh: Dict[str, CatalogEntry] = {}
        for name, info in scan.entries.items():
            reason = self._validate(info)
            if reason is not None:
                self.rejected[info.path.name] = reason
                continue
            previous = self.entries.get(name)
            # Keep the previous entry object (and its recorded stat identity)
            # so a replaced file is still detected — and version-bumped — by
            # the lazy hot-swap check on next access, not silently absorbed.
            fresh[name] = previous if previous is not None else CatalogEntry(info=info)
        for name in list(self._residents):
            if name not in fresh:
                self.evict(name)
        self.entries = fresh
        return sorted(self.entries)

    def _validate(self, info: ArtifactInfo) -> Optional[str]:
        """Reason the artifact cannot be served here, or ``None`` if it can."""
        from ..models.registry import SERVABLE_MODEL_NAMES

        if info.model_name not in SERVABLE_MODEL_NAMES:
            return (
                f"{info.path}: unknown model {info.model_name!r}; "
                f"this registry serves {SERVABLE_MODEL_NAMES}"
            )
        if info.header.schema is None:
            return (
                f"{info.path}: artifact records no dataset-schema fingerprint, so it cannot "
                f"be verified against the serving dataset"
            )
        differences = fingerprint_mismatch(info.header.schema, dataset_fingerprint(self.train_dataset))
        if differences:
            return (
                f"{info.path}: artifact was trained on a different dataset than this catalog "
                f"serves ({'; '.join(differences)})"
            )
        return None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Sorted servable catalog names."""
        return sorted(self.entries)

    @property
    def resident_names(self) -> List[str]:
        """Loaded models, least recently used first."""
        return list(self._residents)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, name: str) -> CatalogEntry:
        """The catalog entry called ``name`` (metadata only, no load)."""
        try:
            return self.entries[name]
        except KeyError:
            raise UnknownCatalogModelError(
                f"unknown model {name!r}; catalog at {self.directory} serves {self.names}"
                + (f" (rejected files: {sorted(self.rejected)})" if self.rejected else "")
            ) from None

    # ------------------------------------------------------------------
    # Lifecycle: cold-start, LRU, hot-swap
    # ------------------------------------------------------------------
    def store(self, name: str) -> EmbeddingStore:
        """The serving store for ``name``, cold-starting or reloading as needed.

        Every call re-stats the artifact file: a replaced file triggers a
        reload of the new bytes (version bump), a vanished file raises
        :class:`CatalogError`.  Access marks the model most recently used.
        """
        entry = self.entry(name)
        self._refresh_entry(entry)
        resident = self._residents.get(name)
        if resident is not None and resident.version == entry.version:
            self._residents.move_to_end(name)
            self.stats.hits += 1
            return resident.store
        if resident is not None:  # stale bytes: hot-swap
            del self._residents[name]
            self.stats.reloads += 1
        return self._cold_start(entry).store

    def recommender(self, name: str, k: Optional[int] = None) -> TopKRecommender:
        """A ready top-k recommender for ``name`` (built once per residency).

        The recommender shares the catalog-wide observed-item matrix, so
        loading the tenth model costs one model load, not one model load
        plus one interaction-matrix rebuild.  The cached recommender always
        carries the catalog's ``default_k``; passing ``k`` returns a one-off
        recommender with that default (sharing the same store and matrix)
        and never alters what later ``k``-less calls see.  Per-request ``k``
        belongs to ``recommend(users, k)``.
        """
        store = self.store(name)  # ensures residency & freshness
        resident = self._residents[name]
        if resident.recommender is None:
            resident.recommender = self._build_recommender(store, self.default_k)
        if k is None or k == resident.recommender.k:
            return resident.recommender
        return self._build_recommender(store, k)

    def _build_recommender(self, store: EmbeddingStore, k: int) -> TopKRecommender:
        return TopKRecommender(
            store,
            k=k,
            exclude_observed=self.exclude_observed,
            dataset=self.serving_dataset if self.exclude_observed else None,
            observed_matrix=self._observed_matrix() if self.exclude_observed else None,
        )

    def warm(self, name: str) -> float:
        """Load ``name`` now; returns the cold-start seconds (0.0 if already resident)."""
        before = self.stats.cold_starts
        self.store(name)
        loaded = self.stats.cold_starts > before
        return self.entry(name).last_cold_start_seconds if loaded else 0.0

    def warm_all(self) -> Dict[str, float]:
        """Load every servable model (subject to the LRU budget); name → seconds."""
        return {name: self.warm(name) for name in self.names}

    def evict(self, name: str) -> bool:
        """Release ``name``'s weights and embeddings; returns whether it was resident."""
        resident = self._residents.pop(name, None)
        if resident is None:
            return False
        self.stats.evictions += 1
        return True

    def evict_all(self) -> None:
        for name in list(self._residents):
            self.evict(name)

    def _refresh_entry(self, entry: CatalogEntry) -> None:
        """Hot-swap detection: re-stat the file, re-read the header if replaced."""
        try:
            stat = os.stat(entry.path)
        except FileNotFoundError:
            self.evict(entry.name)
            self.entries.pop(entry.name, None)
            raise CatalogError(
                f"artifact file for {entry.name!r} disappeared: {entry.path} "
                f"(entry dropped; re-publish the artifact or rescan)"
            ) from None
        except OSError as error:
            # Transient IO/permission trouble (NFS hiccup, mid-sync EACCES):
            # fail this request but keep the entry — the file is still there.
            raise CatalogError(
                f"artifact file for {entry.name!r} is temporarily unreadable: "
                f"{entry.path} ({error})"
            ) from error
        if (stat.st_size, stat.st_mtime_ns) == (entry.info.size_bytes, entry.info.mtime_ns):
            return
        try:
            info = read_artifact_header(entry.path)
            reason = self._validate(info)
        except ArtifactError as error:
            info, reason = None, f"{entry.path}: {error}"
        if reason is not None:
            # The replacement is unservable: drop the entry so requests fail
            # loudly instead of silently serving the previous version.
            self.evict(entry.name)
            self.entries.pop(entry.name, None)
            self.rejected[entry.path.name] = reason
            raise CatalogError(f"hot-swapped artifact is not servable: {reason}")
        entry.info = info
        entry.version += 1

    def _cold_start(self, entry: CatalogEntry) -> _Resident:
        from ..persist import load_model

        started = time.perf_counter()
        model = load_model(entry.path, self.train_dataset)
        store = EmbeddingStore(model)
        store.refresh()
        entry.last_cold_start_seconds = time.perf_counter() - started
        self.stats.cold_starts += 1
        resident = _Resident(store=store, version=entry.version)
        self._residents[entry.name] = resident
        self._enforce_budget(keep=entry.name)
        return resident

    def _enforce_budget(self, keep: str) -> None:
        if self.resident_budget is None:
            return
        while len(self._residents) > self.resident_budget:
            victim = next(name for name in self._residents if name != keep)
            self.evict(victim)

    def _observed_matrix(self) -> sp.csr_matrix:
        if self._observed is None:
            dataset = self.serving_dataset
            self._observed = observed_item_matrix(
                dataset.user_item_set(include_participants=True),
                dataset.num_users,
                dataset.num_items,
            )
        return self._observed

    def __repr__(self) -> str:
        budget = "unbounded" if self.resident_budget is None else str(self.resident_budget)
        return (
            f"ModelCatalog({self.directory}, models={self.names}, "
            f"resident={self.resident_names}, budget={budget})"
        )
