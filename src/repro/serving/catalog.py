"""The :class:`ModelCatalog`: a directory of model artifacts as a serving fleet.

One :class:`~repro.serving.store.EmbeddingStore` serves one model.  The
catalog scales that to *many* models — every GBGCN variant and baseline of
the paper's Table II/III comparison, or the candidates of an A/B rollout —
behind one object pointed at a directory of ``repro.persist`` artifacts:

* **header-only scan** — :meth:`ModelCatalog.scan` indexes the directory
  with :func:`~repro.persist.read_artifact_header` (no weight array is
  decompressed), validates each artifact's dataset-schema fingerprint
  against the serving dataset and its model name against the registry, and
  records unloadable files in :attr:`ModelCatalog.rejected` with a
  diagnosable reason;
* **lazy cold-start** — weights are loaded and embeddings propagated only
  on a model's first request (or an explicit :meth:`warm`);
* **LRU residency budget** — at most ``resident_budget`` models keep their
  weights and propagated embeddings in memory; the least recently used is
  evicted when the budget would overflow (explicit :meth:`evict` works
  too);
* **hot-swap** — every access re-checks the artifact file (stat identity
  plus, by default, the content token that catches same-size replacements
  within one mtime tick); when a trainer (e.g.
  :class:`~repro.training.callbacks.ModelCheckpoint` publishing into the
  catalog directory) atomically replaces it, the catalog reloads the new
  bytes and bumps the entry's ``version``;
* **thread safety** — any number of threads may call
  :meth:`store`/:meth:`recommender`/:meth:`warm`/:meth:`evict`/:meth:`scan`
  concurrently.  Catalog state is guarded by one internal lock, and each
  entry carries a load lock so two threads racing on the same cold model
  perform exactly one cold start (the loser waits and reuses the winner's
  resident).  Model loads and propagation run *outside* the catalog lock,
  so one model's 60 ms cold start never blocks another model's requests;
* **observability** — lifecycle counters (:attr:`stats`) plus a per-model
  :class:`~repro.serving.metrics.MetricsRegistry` (:attr:`metrics`)
  recording cold-start latency histograms, reloads and evictions.

Example — three artifacts, a budget of two residents, bitwise-identical
results to a hand-wired per-model store:

>>> import tempfile
>>> import numpy as np
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model
>>> from repro.serving import EmbeddingStore, ModelCatalog, TopKRecommender
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> directory = Path(tempfile.mkdtemp())
>>> for spec in ("MF", "ItemPop", "LightGCN"):
...     _ = save_model(build_model(spec, split.train), directory / f"{spec.lower()}.npz")
>>> catalog = ModelCatalog(directory, split.train, resident_budget=2)
>>> sorted(catalog.names)
['itempop', 'lightgcn', 'mf']
>>> catalog.resident_names  # nothing loaded yet: cold-start is lazy
[]
>>> users = np.asarray([0, 1, 2])
>>> result = catalog.recommender("mf", k=5).recommend(users)   # first request loads
>>> catalog.resident_names
['mf']
>>> reference = TopKRecommender(
...     EmbeddingStore.from_artifact(directory / "mf.npz", split.train),
...     k=5, dataset=split.train)
>>> bool(np.array_equal(result.items, reference.recommend(users).items))
True
>>> _ = catalog.warm("itempop"); _ = catalog.warm("lightgcn")
>>> catalog.resident_names     # budget is 2: 'mf' (least recent) was evicted
['itempop', 'lightgcn']
>>> catalog.metrics.snapshot()["totals"]["cold_starts"]
3
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import scipy.sparse as sp

from ..data.dataset import GroupBuyingDataset, observed_item_matrix
from ..persist.errors import ArtifactError
from ..persist.fingerprint import dataset_fingerprint, fingerprint_mismatch
from ..persist.index import (
    ArtifactInfo,
    artifact_content_token,
    artifact_stat,
    read_artifact_header,
    scan_artifact_directory,
)
from . import forksafe
from .errors import DeadlineExceededError
from .faults import InjectedFaultError, fault_point
from .metrics import MetricsRegistry
from .retrieval import RetrievalIndex, RetrievalIndexError, build_index_for_model
from .store import EmbeddingStore
from .topk import TopKRecommender

__all__ = [
    "CatalogError",
    "UnknownCatalogModelError",
    "CatalogEntry",
    "ModelCatalog",
    "RetrievalPolicy",
]


class CatalogError(Exception):
    """Base class for model-catalog failures (unknown names, vanished files)."""


class UnknownCatalogModelError(CatalogError, KeyError):
    """The requested name is not a servable entry of the catalog."""


@dataclass
# repro: allow(FORK-001) -- entries never live outside a ModelCatalog; the catalog's _reinit_after_fork_in_child replaces every entry's load_lock in the child
class CatalogEntry:
    """One servable artifact of the catalog (metadata only — never weights).

    ``version`` starts at 1 and is bumped on every hot-swap reload, so
    callers can detect "same name, new model" across requests.  Entry
    fields are only read/written under the owning catalog's lock; the
    ``load_lock`` serializes cold starts of this entry across threads.
    """

    info: ArtifactInfo
    version: int = 1
    #: Wall-clock seconds of the most recent cold start (0.0 until loaded once).
    last_cold_start_seconds: float = 0.0
    #: ``time.time_ns()`` of the last content-token verification (0 forces
    #: one on first access), driving the periodic idle-tail re-check.
    last_content_check_ns: int = 0

    def __post_init__(self) -> None:
        self.load_lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def model_name(self) -> str:
        return self.info.model_name

    @property
    def path(self) -> Path:
        return self.info.path


@dataclass(frozen=True)
class RetrievalPolicy:
    """How a catalog builds candidate-generation indexes for its residents.

    Passing a policy to :class:`ModelCatalog` turns shortlist-then-rescore
    retrieval on for every model that exposes
    :meth:`~repro.models.base.RecommenderModel.scoring_factors`; models
    without factors keep exact brute-force serving.  The index is built (or
    read from the artifact, see ``prefer_artifact_index``) during cold
    start — off the request path when a
    :class:`~repro.serving.warmer.CatalogWarmer` drives warming — and a
    hot-swapped artifact automatically gets a fresh index because a reload
    is a new cold start.

    ``num_cells`` / ``nprobe`` / ``seed`` are forwarded to
    :meth:`~repro.serving.retrieval.RetrievalIndex.build` (``None`` picks
    the scale-aware defaults).  ``min_items`` skips index construction for
    catalogs where brute force is already cheap.  With
    ``prefer_artifact_index`` (default) an index embedded in the artifact
    (``save_model(..., retrieval_index=...)``) is loaded instead of
    rebuilt; an unreadable or mismatched embedded index falls back to a
    fresh build rather than failing the cold start.
    """

    num_cells: Optional[int] = None
    nprobe: Optional[int] = None
    seed: int = 0
    min_items: int = 0
    prefer_artifact_index: bool = True


@dataclass
class _Resident:
    """A loaded model: its store plus the lazily built recommender."""

    store: EmbeddingStore
    version: int
    recommender: Optional[TopKRecommender] = None
    retriever: Optional[RetrievalIndex] = None


@dataclass
class CatalogStats:
    """Lifecycle counters since catalog construction (monotonic).

    Mutated only under the catalog lock, so concurrent traffic never
    drops an increment; read access needs no lock (ints are snapshots).
    """

    cold_starts: int = 0
    hits: int = 0
    evictions: int = 0
    reloads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cold_starts": self.cold_starts,
            "hits": self.hits,
            "evictions": self.evictions,
            "reloads": self.reloads,
        }


class ModelCatalog:
    """Artifact-backed multi-model catalog with lazy cold-start and LRU residency.

    Safe for concurrent use from any number of threads; see the module
    docstring for the locking discipline.

    ``content_check_grace_seconds`` (class attribute, overridable per
    instance) bounds how long after a file's mtime the content token is
    re-verified on every access, and the cadence of the periodic re-check
    past that (see ``verify_content`` below).

    Parameters
    ----------
    directory:
        The artifact directory to scan (``pattern`` selects the files).
    train_dataset:
        The dataset every artifact must have been trained on; each header's
        schema fingerprint is verified against it at scan time, so a model
        trained on a different universe can never be served by accident.
    serving_dataset:
        The dataset supplying observed interactions for top-k exclusion
        (defaults to ``train_dataset``; pass the *full* dataset when the
        training split should also be excluded).
    resident_budget:
        Maximum number of models kept loaded at once (``None`` = unbounded).
    default_k, exclude_observed:
        Defaults for recommenders built by :meth:`recommender`.
    verify_content:
        When True (default), the per-access freshness check also compares
        the artifact's content token (npz CRC digest), so a same-size
        replacement within one mtime tick is still hot-swapped.  The token
        is re-read while the file's mtime is recent
        (:attr:`content_check_grace_seconds`) — the window where the stat
        identity can be blind — and otherwise at most once per grace
        period, which bounds detection of a swap first accessed much later
        to one grace period; steady-state accesses cost one ``os.stat``.
        ``False`` trusts ``(st_size, st_mtime_ns)`` alone; pair it with an
        explicit :meth:`reload` (or a rescanning
        :class:`~repro.serving.warmer.CatalogWarmer`) if your publisher can
        produce stat-identical replacements.
    metrics:
        The :class:`~repro.serving.metrics.MetricsRegistry` to record
        into; a fresh enabled registry by default (pass
        ``MetricsRegistry(enabled=False)`` to disable collection).
    retrieval:
        A :class:`RetrievalPolicy` enabling shortlist-then-rescore top-k
        for factor-exposing models (``None`` — the default — serves every
        model with exact brute force).  Indexes are built at cold start and
        rebuilt on hot-swap, so a warmer-driven catalog never pays the
        build on the request path.
    """

    #: How long after an artifact's mtime the content token is re-verified
    #: on every access (the stat identity's blind window is a replacement
    #: inside the still-current mtime tick), and how often it is
    #: re-verified thereafter (one periodic check per grace period, so an
    #: idle model's hidden swap is found at most this late).  Generous:
    #: any mtime granularity coarser than this would be pathological.
    content_check_grace_seconds: float = 60.0

    def __init__(
        self,
        directory: Union[str, Path],
        train_dataset: GroupBuyingDataset,
        *,
        serving_dataset: Optional[GroupBuyingDataset] = None,
        resident_budget: Optional[int] = None,
        default_k: int = 10,
        exclude_observed: bool = True,
        pattern: str = "*.npz",
        dir_pattern: str = "*.npyd",
        verify_content: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        retrieval: Optional[RetrievalPolicy] = None,
    ) -> None:
        if resident_budget is not None and resident_budget < 1:
            raise ValueError("resident_budget must be at least 1 (or None for unbounded)")
        self.directory = Path(directory)
        self.train_dataset = train_dataset
        self.serving_dataset = serving_dataset if serving_dataset is not None else train_dataset
        self.resident_budget = resident_budget
        self.default_k = default_k
        self.exclude_observed = exclude_observed
        self.pattern = pattern
        #: Subdirectories matching this glob are served as mmap-able
        #: ``dir``-layout artifacts alongside ``pattern``-matched files.
        self.dir_pattern = dir_pattern
        self.verify_content = verify_content
        self.retrieval = retrieval
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Servable entries by catalog name (file stem), filled by :meth:`scan`.
        self.entries: Dict[str, CatalogEntry] = {}
        #: Files matching the pattern that cannot be served, with the reason.
        self.rejected: Dict[str, str] = {}
        self.stats = CatalogStats()
        # Lock hierarchy (acquire outer before inner, never the reverse):
        #   entry.load_lock  →  self._lock  →  MetricsRegistry._lock
        # self._lock guards entries/rejected/_residents/stats/_observed and
        # is held only for in-memory bookkeeping plus cheap freshness IO
        # (stat + central-directory read), never for a model load.
        self._lock = threading.RLock()
        self._residents: "OrderedDict[str, _Resident]" = OrderedDict()
        # Built eagerly: the serving dataset is fixed for the catalog's
        # lifetime, and building it lazily would put an O(dataset) scan
        # inside the catalog lock on the first request.
        self._observed: Optional[sp.csr_matrix] = (
            self._build_observed_matrix() if exclude_observed else None
        )
        # A fork()ed child inherits this catalog with whatever locks some
        # other thread held mid-fork; re-initialize them there (forksafe
        # module docstring has the full story).
        forksafe.protect(self)
        self.scan()

    def _reinit_after_fork_in_child(self) -> None:
        """Replace locks a fork may have copied in a held state (child only)."""
        self._lock = threading.RLock()
        for entry in self.entries.values():
            entry.load_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Directory scanning & validation
    # ------------------------------------------------------------------
    def scan(self) -> List[str]:
        """(Re-)index the artifact directory via header-only reads.

        Returns the sorted servable names.  Entries whose file vanished are
        dropped (and evicted); replaced files are *detected* here (version
        bump — including stat-identical replacements, caught by the content
        token) but the new bytes are loaded lazily on next access, so a
        scan never pays a cold start.  Invalid files land in
        :attr:`rejected` with a message that names the path and the
        failure, never in :attr:`entries`.  Safe to call concurrently with
        serving traffic — this is what a background
        :class:`~repro.serving.warmer.CatalogWarmer` cycle does.
        """
        scan = scan_artifact_directory(
            self.directory, pattern=self.pattern, dir_pattern=self.dir_pattern
        )
        scanned_at = time.time_ns()  # every scanned header carried a fresh token
        with self._lock:
            self.rejected = dict(scan.failures)
            fresh: Dict[str, CatalogEntry] = {}
            for name, info in scan.entries.items():
                reason = self._validate(info)
                if reason is not None:
                    self.rejected[info.path.name] = reason
                    continue
                previous = self.entries.get(name)
                if previous is None:
                    fresh[name] = CatalogEntry(info=info, last_content_check_ns=scanned_at)
                    continue
                # Keep the previous entry object (same load lock, same
                # version history).  A changed file — by stat identity *or*
                # content token — bumps the version now, so the next access
                # (or warm) reloads the new bytes without re-reading the
                # header itself.
                if previous.info.differs(info):
                    previous.info = info
                    previous.version += 1
                previous.last_content_check_ns = scanned_at
                fresh[name] = previous
            for name in list(self._residents):
                if name not in fresh:
                    self._evict_locked(name)
            self.entries = fresh
            return sorted(self.entries)

    def _validate(self, info: ArtifactInfo) -> Optional[str]:
        """Reason the artifact cannot be served here, or ``None`` if it can."""
        from ..models.registry import SERVABLE_MODEL_NAMES

        if info.model_name not in SERVABLE_MODEL_NAMES:
            return (
                f"{info.path}: unknown model {info.model_name!r}; "
                f"this registry serves {SERVABLE_MODEL_NAMES}"
            )
        if info.header.schema is None:
            return (
                f"{info.path}: artifact records no dataset-schema fingerprint, so it cannot "
                f"be verified against the serving dataset"
            )
        differences = fingerprint_mismatch(info.header.schema, dataset_fingerprint(self.train_dataset))
        if differences:
            return (
                f"{info.path}: artifact was trained on a different dataset than this catalog "
                f"serves ({'; '.join(differences)})"
            )
        return None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Sorted servable catalog names."""
        with self._lock:
            return sorted(self.entries)

    @property
    def num_users(self) -> int:
        """Size of the user universe every cataloged model serves.

        Fixed for the catalog's lifetime (every artifact's schema
        fingerprint is validated against ``train_dataset``), so the gateway
        can validate request user IDs without touching any model.
        """
        return self.train_dataset.num_users

    def retriever(self, name: str) -> Optional[RetrievalIndex]:
        """The resident retrieval index serving ``name`` (None when disabled,
        not resident, or the model exposes no scoring factors)."""
        self.store(name)  # ensure residency & freshness
        with self._lock:
            resident = self._residents.get(name)
            return None if resident is None else resident.retriever

    @property
    def resident_names(self) -> List[str]:
        """Loaded models, least recently used first."""
        with self._lock:
            return list(self._residents)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self.entries

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    def entry(self, name: str) -> CatalogEntry:
        """The catalog entry called ``name`` (metadata only, no load)."""
        with self._lock:
            try:
                return self.entries[name]
            except KeyError:
                raise UnknownCatalogModelError(
                    f"unknown model {name!r}; catalog at {self.directory} serves {self.names}"
                    + (f" (rejected files: {sorted(self.rejected)})" if self.rejected else "")
                ) from None

    # ------------------------------------------------------------------
    # Lifecycle: cold-start, LRU, hot-swap
    # ------------------------------------------------------------------
    def store(self, name: str, deadline=None) -> EmbeddingStore:
        """The serving store for ``name``, cold-starting or reloading as needed.

        Every call re-checks the artifact file (stat identity, plus content
        token unless ``verify_content=False``): a replaced file triggers a
        reload of the new bytes (version bump), a vanished file raises
        :class:`CatalogError`.  Access marks the model most recently used.
        Thread-safe; concurrent requests for the same cold model perform a
        single load.

        ``deadline`` (a :class:`~repro.serving.resilience.Deadline`, or
        None) bounds how long this call may *wait*: behind another
        thread's in-flight cold start, or before starting a load of its
        own.  A request that would otherwise block indefinitely behind a
        stalled load raises a typed
        :class:`~repro.serving.errors.DeadlineExceededError` instead.  An
        already-running load is never interrupted (its result serves later
        requests); residency hits are never deadline-checked — they are
        the fast path.
        """
        return self._acquire(name, deadline)[0]

    def _acquire(self, name: str, deadline=None) -> Tuple[EmbeddingStore, float]:
        """``(store, cold_start_seconds)`` — 0.0 when served from residency."""
        # A load runs outside the catalog lock, so the artifact can be
        # swapped *again* mid-load; when that happens the loaded bytes are
        # discarded and the loop retries against the newest version.
        for _ in range(16):
            with self._lock:
                entry = self.entry(name)
                self._refresh_entry(entry)
                resident = self._hit_locked(name, entry.version)
                if resident is not None:
                    return resident.store, 0.0
                target_version = entry.version
                path = entry.path
                load_lock = entry.load_lock
            # The deadline governs the *wait* for the load lock (another
            # thread may be mid-cold-start behind it, stalled on slow IO);
            # an expired deadline fails typed instead of parking forever.
            if deadline is None:
                load_lock.acquire()
            else:
                remaining = deadline.remaining()
                if remaining <= 0.0 or not load_lock.acquire(timeout=remaining):
                    raise DeadlineExceededError(
                        f"deadline exceeded waiting for the cold start of {name!r} "
                        f"(another load holds the lock or none could begin in time)"
                    )
            try:
                with self._lock:
                    current = self.entries.get(name)
                    if current is None or current.version != target_version:
                        continue  # dropped or swapped while we waited; retry
                    # The thread we waited on may have loaded exactly this
                    # version — then this is a hit, not a second cold start.
                    resident = self._hit_locked(name, target_version)
                    if resident is not None:
                        return resident.store, 0.0
                if deadline is not None:
                    # About to pay the load in-line: don't start work the
                    # request can no longer use.
                    deadline.check(f"cold start of {name!r}")
                loaded = self._cold_start(name, path, target_version)
                if loaded is not None:
                    return loaded
            finally:
                load_lock.release()
        raise CatalogError(
            f"artifact for {name!r} at {path} kept being replaced while loading; giving up"
        )

    def _hit_locked(self, name: str, version: int) -> Optional[_Resident]:
        """The resident serving ``version``, recency-bumped — or None.  Lock held."""
        resident = self._residents.get(name)
        if resident is not None and resident.version == version:
            self._residents.move_to_end(name)
            self.stats.hits += 1
            return resident
        if resident is not None:
            # Stale bytes: retire the old resident; caller cold-starts.
            del self._residents[name]
            self.stats.reloads += 1
            self.metrics.record_reload(name)
        return None

    def recommender(
        self, name: str, k: Optional[int] = None, deadline=None
    ) -> TopKRecommender:
        """A ready top-k recommender for ``name`` (built once per residency).

        The recommender shares the catalog-wide observed-item matrix, so
        loading the tenth model costs one model load, not one model load
        plus one interaction-matrix rebuild.  The cached recommender always
        carries the catalog's ``default_k``; passing ``k`` returns a one-off
        recommender with that default (sharing the same store and matrix)
        and never alters what later ``k``-less calls see.  Per-request ``k``
        belongs to ``recommend(users, k)``.  ``deadline`` bounds any
        cold-start wait exactly as in :meth:`store`.
        """
        store = self.store(name, deadline)  # ensures residency & freshness
        with self._lock:
            resident = self._residents.get(name)
            if resident is None or resident.store is not store:
                # Evicted or hot-swapped by a concurrent thread between the
                # two calls: serve a one-off recommender over the store we
                # already hold (its arrays are immutable) rather than racing.
                # No retriever here — brute force is always correct, and the
                # race window is not worth an in-line index build.
                return self._build_recommender(store, self.default_k if k is None else k)
            retriever = resident.retriever
            if resident.recommender is None:
                resident.recommender = self._build_recommender(store, self.default_k, retriever)
            cached = resident.recommender
        if k is None or k == cached.k:
            return cached
        return self._build_recommender(store, k, retriever)

    def _build_recommender(
        self, store: EmbeddingStore, k: int, retriever: Optional[RetrievalIndex] = None
    ) -> TopKRecommender:
        return TopKRecommender(
            store,
            k=k,
            exclude_observed=self.exclude_observed,
            dataset=self.serving_dataset if self.exclude_observed else None,
            observed_matrix=self._observed_matrix() if self.exclude_observed else None,
            retriever=retriever,
        )

    def warm(self, name: str) -> float:
        """Load ``name`` now; returns the cold-start seconds (0.0 if already resident)."""
        return self._acquire(name)[1]

    def warm_all(self) -> Dict[str, float]:
        """Load every servable model (subject to the LRU budget); name → seconds."""
        return {name: self.warm(name) for name in self.names}

    def evict(self, name: str) -> bool:
        """Release ``name``'s weights and embeddings; returns whether it was resident."""
        with self._lock:
            return self._evict_locked(name)

    def _evict_locked(self, name: str) -> bool:
        resident = self._residents.pop(name, None)
        if resident is None:
            return False
        self.stats.evictions += 1
        self.metrics.record_eviction(name)
        return True

    def evict_all(self) -> None:
        with self._lock:
            for name in list(self._residents):
                self._evict_locked(name)

    def reload(self, name: str, force: bool = False) -> int:
        """Re-check ``name``'s artifact now; returns the entry's version.

        The escape hatch around every staleness heuristic: with
        ``force=True`` the header is unconditionally re-read and the
        version bumped — even when stat identity *and* content token look
        unchanged — so the next access reloads the bytes from disk.  Use it
        when a publisher bypasses the detectable channels entirely (e.g.
        in-place writes through a cache that preserves CRCs), or after
        ``verify_content=False`` deployments republish.  Without ``force``
        this runs the ordinary freshness check (useful to take a hot-swap
        *now* rather than on the next request).

        A name the catalog has never indexed triggers a :meth:`scan` first
        (directory IO outside the catalog lock, like any scan), so
        ``reload`` works as a ``ModelCheckpoint(on_publish=...)`` hook even
        for a model's very first publish into the directory.
        """
        if name not in self:
            self.scan()
        with self._lock:
            entry = self.entry(name)
            if not force:
                self._refresh_entry(entry)
                return entry.version
            info = self._reread_entry(entry)
            entry.info = info
            entry.version += 1
            entry.last_content_check_ns = time.time_ns()
            if name in self._residents:
                del self._residents[name]
                self.stats.reloads += 1
                self.metrics.record_reload(name)
            return entry.version

    def _reread_entry(self, entry: CatalogEntry) -> ArtifactInfo:
        """Fresh validated ``ArtifactInfo`` for the entry's path (lock held).

        Drops the entry and raises :class:`CatalogError` when the file on
        disk is gone or no longer servable.
        """
        try:
            info = read_artifact_header(entry.path)
            reason = self._validate(info)
        except (ArtifactError, FileNotFoundError) as error:
            if not entry.path.exists():
                self._vanished(entry)
            info, reason = None, f"{entry.path}: {error}"
        if reason is not None:
            # The replacement is unservable: drop the entry so requests fail
            # loudly instead of silently serving the previous version.
            self._evict_locked(entry.name)
            self.entries.pop(entry.name, None)
            self.rejected[entry.path.name] = reason
            self.metrics.record_error(entry.name)
            raise CatalogError(f"hot-swapped artifact is not servable: {reason}")
        return info

    def _vanished(self, entry: CatalogEntry) -> None:
        """Drop a disappeared entry and raise (lock held)."""
        self._evict_locked(entry.name)
        self.entries.pop(entry.name, None)
        self.metrics.record_error(entry.name)
        raise CatalogError(
            f"artifact file for {entry.name!r} disappeared: {entry.path} "
            f"(entry dropped; re-publish the artifact or rescan)"
        ) from None

    def _refresh_entry(self, entry: CatalogEntry) -> None:
        """Hot-swap detection (lock held): stat + content token, reload header if replaced."""
        try:
            # artifact_stat: the file itself for npz artifacts, the
            # header.json (rewritten every publish) for dir artifacts.
            stat = artifact_stat(entry.path)
        except FileNotFoundError:
            self._vanished(entry)
        except OSError as error:
            # Transient IO/permission trouble (NFS hiccup, mid-sync EACCES):
            # fail this request but keep the entry — the file is still there.
            raise CatalogError(
                f"artifact file for {entry.name!r} is temporarily unreadable: "
                f"{entry.path} ({error})"
            ) from error
        if (stat.st_size, stat.st_mtime_ns) == (entry.info.size_bytes, entry.info.mtime_ns):
            if not self.verify_content:
                return
            # Stat identity unchanged — but a same-size replacement within
            # one mtime tick is invisible to stat.  The content token (npz
            # CRC digest, no decompression) closes that hole.  Reading it
            # on *every* access would put file IO on the steady-state hot
            # path, so it runs only when the swap could actually be hiding:
            # while the file's mtime is recent (a same-tick replacement can
            # only happen inside the still-current tick), or once per grace
            # period as a periodic re-check — which bounds the detection
            # delay for a swap whose first access comes much later (idle
            # tail models) to one grace period instead of "forever".
            now = time.time_ns()
            grace_ns = int(self.content_check_grace_seconds * 1e9)
            if now - stat.st_mtime_ns > grace_ns and now - entry.last_content_check_ns < grace_ns:
                return
            try:
                token = artifact_content_token(entry.path)
            except ArtifactError as error:
                if not entry.path.exists():
                    self._vanished(entry)
                raise CatalogError(
                    f"artifact file for {entry.name!r} is temporarily unreadable: "
                    f"{entry.path} ({error})"
                ) from error
            if token == entry.info.content_token:
                entry.last_content_check_ns = now
                return
        info = self._reread_entry(entry)
        entry.info = info
        entry.version += 1
        entry.last_content_check_ns = time.time_ns()

    def _cold_start(self, name: str, path: Path, version: int) -> Optional[Tuple[EmbeddingStore, float]]:
        """Load ``path`` and register the resident for ``version``.

        Called with the entry's load lock held but *not* the catalog lock —
        the expensive part (artifact read + propagation) must never block
        unrelated requests.  Returns ``None`` when the loaded bytes are
        already outdated (entry swapped again mid-load) so the caller
        retries.
        """
        from ..persist import load_model

        started = time.perf_counter()
        try:
            # Chaos hook: an injected cold-start fault degrades exactly like
            # a real unloadable artifact (dropped entry, typed CatalogError).
            fault_point("catalog.cold_start", name)
            model = load_model(path, self.train_dataset)
        except (ArtifactError, FileNotFoundError, InjectedFaultError) as error:
            # TOCTOU: the freshness check passed, then the file vanished or
            # turned unservable before the weights were read.  Degrade to a
            # dropped entry with a diagnosable CatalogError — never leak
            # FileNotFoundError into a serving request.
            with self._lock:
                self._evict_locked(name)
                self.entries.pop(name, None)
                self.metrics.record_error(name)
                if path.exists():
                    self.rejected[path.name] = f"{path}: {error}"
            if not path.exists():
                raise CatalogError(
                    f"artifact file for {name!r} disappeared: {path} "
                    f"(entry dropped; re-publish the artifact or rescan)"
                ) from error
            raise CatalogError(
                f"artifact for {name!r} became unloadable during cold start: {error}"
            ) from error
        store = EmbeddingStore(model)
        store.refresh()
        # Retrieval-index construction is part of the cold start: it runs
        # here, outside the catalog lock (and off the request path when a
        # CatalogWarmer drives warming), and a hot-swap reload — which is a
        # new cold start — therefore rebuilds the index for the new bytes.
        retriever = self._build_retriever(store, path)
        seconds = time.perf_counter() - started
        with self._lock:
            entry = self.entries.get(name)
            if entry is None or entry.version != version:
                return None  # swapped again while loading; retry with new bytes
            entry.last_cold_start_seconds = seconds
            self.stats.cold_starts += 1
            self.metrics.record_cold_start(name, seconds)
            self._residents[name] = _Resident(store=store, version=version, retriever=retriever)
            self._residents.move_to_end(name)
            self._enforce_budget(keep=name)
        return store, seconds

    def _build_retriever(self, store: EmbeddingStore, path: Path) -> Optional[RetrievalIndex]:
        """The resident's retrieval index per :attr:`retrieval` policy (or None)."""
        policy = self.retrieval
        if policy is None or store.model.num_items < policy.min_items:
            return None
        if policy.prefer_artifact_index:
            try:
                from ..persist import read_retrieval_state

                state = read_retrieval_state(path)
                if state is not None:
                    index = RetrievalIndex.from_state(*state)
                    if index.num_items == store.model.num_items:
                        return index
            except (ArtifactError, RetrievalIndexError, OSError):
                pass  # unreadable/mismatched embedded index: rebuild below
        return build_index_for_model(
            store.model, num_cells=policy.num_cells, nprobe=policy.nprobe, seed=policy.seed
        )

    def _enforce_budget(self, keep: str) -> None:
        if self.resident_budget is None:
            return
        while len(self._residents) > self.resident_budget:
            victim = next(name for name in self._residents if name != keep)
            self._evict_locked(victim)

    def _build_observed_matrix(self) -> sp.csr_matrix:
        dataset = self.serving_dataset
        return observed_item_matrix(
            dataset.user_item_set(include_participants=True),
            dataset.num_users,
            dataset.num_items,
        )

    def _observed_matrix(self) -> sp.csr_matrix:
        return self._observed

    def __repr__(self) -> str:
        budget = "unbounded" if self.resident_budget is None else str(self.resident_budget)
        return (
            f"ModelCatalog({self.directory}, models={self.names}, "
            f"resident={self.resident_names}, budget={budget})"
        )
