"""Per-model serving metrics: request counters and latency histograms.

A fleet serving heavy traffic is debugged from its numbers — which model
takes the requests, how many rows each one serves, how often the catalog
pays a cold start or a hot-swap reload, and what the tail latency looks
like.  :class:`MetricsRegistry` collects exactly that, recorded in-line by
:class:`~repro.serving.gateway.ServingGateway` and
:class:`~repro.serving.catalog.ModelCatalog` with near-zero overhead:

* every counter bump is one lock acquisition plus integer adds;
* latencies land in a :class:`LatencyHistogram` — fixed log-spaced buckets
  (no per-sample storage, no sorting), from which p50/p95/p99 are
  estimated as the containing bucket's upper bound: conservatively high,
  by at most one bucket ratio (≈ +12%);
* :meth:`MetricsRegistry.snapshot` exports the whole registry as a plain
  nested dict, ready for ``json.dumps`` or a scrape endpoint — including
  each histogram's **raw bucket counts**, so snapshots from many serving
  worker processes can be combined with
  :meth:`MetricsRegistry.merge_snapshots` into one fleet-wide view whose
  counters are exact and whose percentiles are bucket-accurate (identical
  to a single histogram fed the union of all streams — naively averaging
  per-worker p99s, by contrast, is simply wrong).

Construct with ``enabled=False`` for a no-op registry (every record call
returns immediately) — the knob the overhead benchmark in
``benchmarks/test_catalog_serving.py`` measures against.

Usage — record a few requests and read the snapshot:

>>> registry = MetricsRegistry()
>>> registry.record_request("gbgcn", rows=256, seconds=0.004)
>>> registry.record_request("gbgcn", rows=256, seconds=0.006)
>>> registry.record_cold_start("gbgcn", seconds=0.060)
>>> snap = registry.snapshot()
>>> snap["models"]["gbgcn"]["requests"], snap["models"]["gbgcn"]["rows_served"]
(2, 512)
>>> snap["models"]["gbgcn"]["cold_starts"]
1
>>> 0.004 <= snap["models"]["gbgcn"]["request_latency"]["p50"] <= 0.008
True
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = ["LatencyHistogram", "ModelMetrics", "MetricsRegistry"]


def _log_spaced_bounds(lo: float = 1e-6, hi: float = 64.0, per_decade: int = 20) -> List[float]:
    """Bucket upper bounds from ``lo`` to ``hi`` seconds, log-spaced."""
    bounds = []
    value = lo
    factor = 10.0 ** (1.0 / per_decade)
    while value <= hi:
        bounds.append(value)
        value *= factor
    return bounds


#: Shared bucket upper bounds (seconds): 1 µs … 64 s at 20 buckets/decade
#: (bucket ratio 10^(1/20) ≈ 1.122), so a percentile estimate overshoots
#: the true value by at most one bucket ≈ 12% — and never undershoots.
_BOUNDS: List[float] = _log_spaced_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    ``record`` costs one binary search over ~160 static bucket bounds plus
    an integer increment — no allocation, no per-sample retention — which
    is what lets the serving hot path keep metrics always-on.  Percentiles
    are read as the upper bound of the bucket containing the requested
    rank (clamped to the exact observed min/max), so estimates are
    conservative — at most one bucket ratio (≈ +12%) above the true value,
    never below it.

    Not internally locked: callers (:class:`MetricsRegistry`) serialize
    access.
    """

    __slots__ = ("counts", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)  # last bucket: > _BOUNDS[-1]
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(_BOUNDS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile in seconds (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(q / 100.0 * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                upper = _BOUNDS[index] if index < len(_BOUNDS) else self.max_seconds
                return min(max(upper, self.min_seconds), self.max_seconds)
        return self.max_seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict summary: count, mean, min/max, p50/p95/p99 — and the raw data.

        Beyond the derived percentiles, the snapshot carries
        ``total_seconds`` and ``buckets`` — the non-zero raw bucket counts,
        keyed by stringified bucket index (JSON object keys are strings, so
        stringifying here keeps a snapshot identical across a
        ``json.dumps``/``loads`` round-trip).  Derived percentiles alone
        cannot be aggregated across processes (a mean of p99s is not a
        fleet p99); the raw counts are what make :meth:`merge` and
        :meth:`MetricsRegistry.merge_snapshots` exact.
        """
        return {
            "count": self.count,
            "mean": self.mean_seconds,
            "min": 0.0 if self.count == 0 else self.min_seconds,
            "max": self.max_seconds,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "total_seconds": self.total_seconds,
            "buckets": {str(index): count for index, count in enumerate(self.counts) if count},
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, object]) -> "LatencyHistogram":
        """Reconstruct a histogram from a :meth:`snapshot` dict.

        Raises ``ValueError`` for snapshots lacking raw ``buckets`` counts
        (produced by pre-merge library versions — they carry only derived
        percentiles, which cannot be merged) and for bucket data that does
        not add up to its recorded ``count``.
        """
        buckets = snapshot.get("buckets")
        if not isinstance(buckets, Mapping):
            raise ValueError(
                "histogram snapshot carries no raw bucket counts ('buckets'); it was "
                "produced by an older snapshot format and cannot be reconstructed or merged"
            )
        hist = cls()
        for key, value in buckets.items():
            index = int(key)
            if not 0 <= index < len(hist.counts):
                raise ValueError(
                    f"histogram snapshot bucket index {key!r} is out of range "
                    f"[0, {len(hist.counts)})"
                )
            hist.counts[index] = int(value)
        count = int(snapshot.get("count", 0))
        if sum(hist.counts) != count:
            raise ValueError(
                f"histogram snapshot is inconsistent: bucket counts sum to "
                f"{sum(hist.counts)} but count is {count}"
            )
        hist.count = count
        hist.total_seconds = float(snapshot.get("total_seconds", 0.0))
        if count:
            hist.min_seconds = float(snapshot["min"])
            hist.max_seconds = float(snapshot["max"])
        return hist

    def merge(self, other: Union["LatencyHistogram", Mapping[str, object]]) -> "LatencyHistogram":
        """Fold ``other`` (a histogram or a snapshot dict) into this one, in place.

        Counters (``count``, ``total_seconds``, per-bucket counts) merge
        *exactly*; min/max combine exactly; percentiles of the merged
        histogram are bucket-accurate — the same estimate a single
        histogram fed the union of both streams would report, because both
        sides share the static bucket bounds.  Returns ``self`` so merges
        chain.  Like all histogram mutation, not internally locked.
        """
        if not isinstance(other, LatencyHistogram):
            other = LatencyHistogram.from_snapshot(other)
        for index, bucket_count in enumerate(other.counts):
            if bucket_count:
                self.counts[index] += bucket_count
        self.count += other.count
        self.total_seconds += other.total_seconds
        if other.count:
            self.min_seconds = min(self.min_seconds, other.min_seconds)
            self.max_seconds = max(self.max_seconds, other.max_seconds)
        return self


class ModelMetrics:
    """One model's counters and latency histograms (see :class:`MetricsRegistry`)."""

    __slots__ = (
        "requests",
        "rows_served",
        "cold_starts",
        "reloads",
        "evictions",
        "errors",
        "sheds",
        "deadline_exceeded",
        "breaker_opens",
        "fallbacks_served",
        "request_latency",
        "cold_start_latency",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.rows_served = 0
        self.cold_starts = 0
        self.reloads = 0
        self.evictions = 0
        self.errors = 0
        # Resilience-layer outcomes (see repro.serving.resilience): every
        # deliberate fast-failure and every degraded serve is counted here,
        # so shed/deadline/breaker/fallback tallies reconcile exactly with
        # the requests a chaos run submitted — nothing fails silently.
        self.sheds = 0
        self.deadline_exceeded = 0
        self.breaker_opens = 0
        self.fallbacks_served = 0
        self.request_latency = LatencyHistogram()
        self.cold_start_latency = LatencyHistogram()

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "rows_served": self.rows_served,
            "cold_starts": self.cold_starts,
            "reloads": self.reloads,
            "evictions": self.evictions,
            "errors": self.errors,
            "sheds": self.sheds,
            "deadline_exceeded": self.deadline_exceeded,
            "breaker_opens": self.breaker_opens,
            "fallbacks_served": self.fallbacks_served,
            "request_latency": self.request_latency.snapshot(),
            "cold_start_latency": self.cold_start_latency.snapshot(),
        }


class MetricsRegistry:
    """Thread-safe per-model serving metrics with a plain-dict export.

    One registry serves one catalog/gateway pair (the catalog creates its
    own by default and the gateway records into the catalog's).  All
    mutation goes through the ``record_*`` methods, each a single short
    critical section; :meth:`snapshot` returns a JSON-ready nested dict
    and never exposes internal state.

    ``enabled=False`` turns every record call into an immediate return —
    a measurable no-op for overhead comparisons.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._models: Dict[str, ModelMetrics] = {}
        # A fork mid-record would hand the child a permanently-held _lock;
        # the forksafe hook swaps in a fresh one inside the child.
        from . import forksafe

        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Replace the lock a fork may have copied in a held state (child only)."""
        self._lock = threading.Lock()

    def _model(self, name: str) -> ModelMetrics:
        # Callers hold self._lock.
        metrics = self._models.get(name)
        if metrics is None:
            metrics = self._models[name] = ModelMetrics()
        return metrics

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record_request(self, name: str, rows: int, seconds: float) -> None:
        """One served request batch: ``rows`` result rows in ``seconds``."""
        if not self.enabled:
            return
        with self._lock:
            metrics = self._model(name)
            metrics.requests += 1
            metrics.rows_served += rows
            metrics.request_latency.record(seconds)

    def record_cold_start(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            metrics = self._model(name)
            metrics.cold_starts += 1
            metrics.cold_start_latency.record(seconds)

    def record_reload(self, name: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._model(name).reloads += 1

    def record_eviction(self, name: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._model(name).evictions += 1

    def record_error(self, name: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._model(name).errors += 1

    def record_shed(self, name: str) -> None:
        """A request for ``name`` was shed by admission control (OverloadedError)."""
        if not self.enabled:
            return
        with self._lock:
            self._model(name).sheds += 1

    def record_deadline_exceeded(self, name: str) -> None:
        """A request for ``name`` failed its deadline (DeadlineExceededError)."""
        if not self.enabled:
            return
        with self._lock:
            self._model(name).deadline_exceeded += 1

    def record_breaker_open(self, name: str) -> None:
        """``name``'s circuit breaker transitioned to open (once per trip)."""
        if not self.enabled:
            return
        with self._lock:
            self._model(name).breaker_opens += 1

    def record_fallback(self, name: str) -> None:
        """A request *targeting* ``name`` was served degraded (stale or fallback model)."""
        if not self.enabled:
            return
        with self._lock:
            self._model(name).fallbacks_served += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The whole registry as a plain nested dict (JSON-serializable)."""
        with self._lock:
            models = {name: metrics.snapshot() for name, metrics in self._models.items()}
        totals = {
            key: sum(m[key] for m in models.values()) for key in self._COUNTER_KEYS
        }
        return {"enabled": self.enabled, "models": models, "totals": totals}

    _COUNTER_KEYS = (
        "requests",
        "rows_served",
        "cold_starts",
        "reloads",
        "evictions",
        "errors",
        "sheds",
        "deadline_exceeded",
        "breaker_opens",
        "fallbacks_served",
    )
    _LATENCY_KEYS = ("request_latency", "cold_start_latency")

    @staticmethod
    def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
        """Combine per-process :meth:`snapshot` dicts into one fleet-wide view.

        The cross-process aggregation path for a
        :class:`~repro.serving.workers.WorkerPool`: each worker snapshots
        its own registry, the parent merges.  Counters sum exactly;
        latency histograms merge through their raw bucket counts
        (:meth:`LatencyHistogram.merge`), so the fleet p50/p95/p99 equal
        what one process observing all requests would have reported — not
        an average of per-worker percentiles.  The result has the same
        shape as :meth:`snapshot` plus a ``workers`` count, and its
        ``totals`` section gains fleet-wide ``request_latency`` /
        ``cold_start_latency`` histograms (a single-process snapshot keeps
        latency per model only).  Snapshots lacking raw bucket counts
        raise ``ValueError``.

        >>> a, b = MetricsRegistry(), MetricsRegistry()
        >>> a.record_request("gbgcn", rows=10, seconds=0.001)
        >>> b.record_request("gbgcn", rows=30, seconds=0.100)
        >>> fleet = MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])
        >>> fleet["workers"], fleet["totals"]["requests"], fleet["totals"]["rows_served"]
        (2, 2, 40)
        >>> fleet["models"]["gbgcn"]["request_latency"]["count"]
        2
        >>> 0.1 <= fleet["totals"]["request_latency"]["p99"] <= 0.113
        True
        """
        snapshots = list(snapshots)
        counter_keys = MetricsRegistry._COUNTER_KEYS
        latency_keys = MetricsRegistry._LATENCY_KEYS
        merged: Dict[str, Dict[str, object]] = {}
        histograms: Dict[Tuple[str, str], LatencyHistogram] = {}
        for snap in snapshots:
            for name, model in dict(snap.get("models", {})).items():
                out = merged.setdefault(name, {key: 0 for key in counter_keys})
                for key in counter_keys:
                    out[key] += int(model.get(key, 0))
                for key in latency_keys:
                    histograms.setdefault((name, key), LatencyHistogram()).merge(model[key])
        fleet = {key: LatencyHistogram() for key in latency_keys}
        for (name, key), histogram in histograms.items():
            merged[name][key] = histogram.snapshot()
            fleet[key].merge(histogram)
        totals: Dict[str, object] = {
            key: sum(int(model[key]) for model in merged.values()) for key in counter_keys
        }
        for key in latency_keys:
            totals[key] = fleet[key].snapshot()
        return {
            "enabled": any(bool(snap.get("enabled")) for snap in snapshots),
            "workers": len(snapshots),
            "models": merged,
            "totals": totals,
        }

    def reset(self) -> None:
        """Drop every recorded value (counters restart from zero)."""
        with self._lock:
            self._models.clear()

    def __repr__(self) -> str:
        with self._lock:
            names = sorted(self._models)
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, models={names})"
