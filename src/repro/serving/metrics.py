"""Per-model serving metrics: request counters and latency histograms.

A fleet serving heavy traffic is debugged from its numbers — which model
takes the requests, how many rows each one serves, how often the catalog
pays a cold start or a hot-swap reload, and what the tail latency looks
like.  :class:`MetricsRegistry` collects exactly that, recorded in-line by
:class:`~repro.serving.gateway.ServingGateway` and
:class:`~repro.serving.catalog.ModelCatalog` with near-zero overhead:

* every counter bump is one lock acquisition plus integer adds;
* latencies land in a :class:`LatencyHistogram` — fixed log-spaced buckets
  (no per-sample storage, no sorting), from which p50/p95/p99 are
  estimated as the containing bucket's upper bound: conservatively high,
  by at most one bucket ratio (≈ +12%);
* :meth:`MetricsRegistry.snapshot` exports the whole registry as a plain
  nested dict, ready for ``json.dumps`` or a scrape endpoint.

Construct with ``enabled=False`` for a no-op registry (every record call
returns immediately) — the knob the overhead benchmark in
``benchmarks/test_catalog_serving.py`` measures against.

Usage — record a few requests and read the snapshot:

>>> registry = MetricsRegistry()
>>> registry.record_request("gbgcn", rows=256, seconds=0.004)
>>> registry.record_request("gbgcn", rows=256, seconds=0.006)
>>> registry.record_cold_start("gbgcn", seconds=0.060)
>>> snap = registry.snapshot()
>>> snap["models"]["gbgcn"]["requests"], snap["models"]["gbgcn"]["rows_served"]
(2, 512)
>>> snap["models"]["gbgcn"]["cold_starts"]
1
>>> 0.004 <= snap["models"]["gbgcn"]["request_latency"]["p50"] <= 0.008
True
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ModelMetrics", "MetricsRegistry"]


def _log_spaced_bounds(lo: float = 1e-6, hi: float = 64.0, per_decade: int = 20) -> List[float]:
    """Bucket upper bounds from ``lo`` to ``hi`` seconds, log-spaced."""
    bounds = []
    value = lo
    factor = 10.0 ** (1.0 / per_decade)
    while value <= hi:
        bounds.append(value)
        value *= factor
    return bounds


#: Shared bucket upper bounds (seconds): 1 µs … 64 s at 20 buckets/decade
#: (bucket ratio 10^(1/20) ≈ 1.122), so a percentile estimate overshoots
#: the true value by at most one bucket ≈ 12% — and never undershoots.
_BOUNDS: List[float] = _log_spaced_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    ``record`` costs one binary search over ~160 static bucket bounds plus
    an integer increment — no allocation, no per-sample retention — which
    is what lets the serving hot path keep metrics always-on.  Percentiles
    are read as the upper bound of the bucket containing the requested
    rank (clamped to the exact observed min/max), so estimates are
    conservative — at most one bucket ratio (≈ +12%) above the true value,
    never below it.

    Not internally locked: callers (:class:`MetricsRegistry`) serialize
    access.
    """

    __slots__ = ("counts", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)  # last bucket: > _BOUNDS[-1]
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(_BOUNDS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile in seconds (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(q / 100.0 * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                upper = _BOUNDS[index] if index < len(_BOUNDS) else self.max_seconds
                return min(max(upper, self.min_seconds), self.max_seconds)
        return self.max_seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict summary: count, mean, min/max and p50/p95/p99 (seconds)."""
        return {
            "count": self.count,
            "mean": self.mean_seconds,
            "min": 0.0 if self.count == 0 else self.min_seconds,
            "max": self.max_seconds,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class ModelMetrics:
    """One model's counters and latency histograms (see :class:`MetricsRegistry`)."""

    __slots__ = (
        "requests",
        "rows_served",
        "cold_starts",
        "reloads",
        "evictions",
        "errors",
        "request_latency",
        "cold_start_latency",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.rows_served = 0
        self.cold_starts = 0
        self.reloads = 0
        self.evictions = 0
        self.errors = 0
        self.request_latency = LatencyHistogram()
        self.cold_start_latency = LatencyHistogram()

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "rows_served": self.rows_served,
            "cold_starts": self.cold_starts,
            "reloads": self.reloads,
            "evictions": self.evictions,
            "errors": self.errors,
            "request_latency": self.request_latency.snapshot(),
            "cold_start_latency": self.cold_start_latency.snapshot(),
        }


class MetricsRegistry:
    """Thread-safe per-model serving metrics with a plain-dict export.

    One registry serves one catalog/gateway pair (the catalog creates its
    own by default and the gateway records into the catalog's).  All
    mutation goes through the ``record_*`` methods, each a single short
    critical section; :meth:`snapshot` returns a JSON-ready nested dict
    and never exposes internal state.

    ``enabled=False`` turns every record call into an immediate return —
    a measurable no-op for overhead comparisons.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._models: Dict[str, ModelMetrics] = {}

    def _model(self, name: str) -> ModelMetrics:
        # Callers hold self._lock.
        metrics = self._models.get(name)
        if metrics is None:
            metrics = self._models[name] = ModelMetrics()
        return metrics

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record_request(self, name: str, rows: int, seconds: float) -> None:
        """One served request batch: ``rows`` result rows in ``seconds``."""
        if not self.enabled:
            return
        with self._lock:
            metrics = self._model(name)
            metrics.requests += 1
            metrics.rows_served += rows
            metrics.request_latency.record(seconds)

    def record_cold_start(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            metrics = self._model(name)
            metrics.cold_starts += 1
            metrics.cold_start_latency.record(seconds)

    def record_reload(self, name: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._model(name).reloads += 1

    def record_eviction(self, name: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._model(name).evictions += 1

    def record_error(self, name: str) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._model(name).errors += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The whole registry as a plain nested dict (JSON-serializable)."""
        with self._lock:
            models = {name: metrics.snapshot() for name, metrics in self._models.items()}
        totals = {
            "requests": sum(m["requests"] for m in models.values()),
            "rows_served": sum(m["rows_served"] for m in models.values()),
            "cold_starts": sum(m["cold_starts"] for m in models.values()),
            "reloads": sum(m["reloads"] for m in models.values()),
            "evictions": sum(m["evictions"] for m in models.values()),
            "errors": sum(m["errors"] for m in models.values()),
        }
        return {"enabled": self.enabled, "models": models, "totals": totals}

    def reset(self) -> None:
        """Drop every recorded value (counters restart from zero)."""
        with self._lock:
            self._models.clear()

    def __repr__(self) -> str:
        with self._lock:
            names = sorted(self._models)
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, models={names})"
