"""Typed request-boundary errors for the serving layer.

Serving faces arbitrary traffic, and numpy's indexing semantics make two
classes of bad input dangerous rather than merely invalid:

* a *negative* user ID silently wraps around (``matrix[-1]`` is the last
  row), so a request for user ``-1`` would be answered with user
  ``num_users - 1``'s recommendations — a wrong-results bug with no crash
  to flag it;
* a *too-large* user ID surfaces as a raw ``IndexError`` from deep inside
  the scipy/numpy score path, losing which request and which model were at
  fault.

:class:`ServingError` is the typed boundary both cases are folded into:
:class:`~repro.serving.topk.TopKRecommender` and
:class:`~repro.serving.gateway.ServingGateway` validate every user ID
before any array is indexed and raise it naming the offending IDs (and, at
the gateway, the model).  It subclasses :class:`ValueError` so existing
callers catching broad input errors keep working.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "ServingError",
    "ServingUnavailableError",
    "DeadlineExceededError",
    "OverloadedError",
    "CircuitOpenError",
    "validate_user_ids",
]


class ServingError(ValueError):
    """A serving request was rejected at the boundary (bad user IDs, bad k)."""


class ServingUnavailableError(RuntimeError):
    """The request was valid but could not be served right now.

    Base class of the resilience layer's typed failures: the caller sent a
    well-formed request, and the serving side — not the client — is the
    reason it gets no result.  These are *fast, deliberate* failures
    (deadline enforcement, load shedding, open circuit breakers), distinct
    from :class:`ServingError`'s input rejection: retrying a
    ``ServingError`` can never help; retrying a ``ServingUnavailableError``
    later usually does.  All subclasses are plain-args exceptions, so they
    pickle cleanly across the :class:`~repro.serving.workers.WorkerPool`
    process boundary.
    """


class DeadlineExceededError(ServingUnavailableError):
    """The request's deadline expired before a result was produced.

    Raised wherever the deadline is checked along the propagation path —
    gateway entry, catalog cold-start wait, worker-pool reply wait — so a
    request stuck behind a slow cold start or a stalled worker fails in
    bounded time instead of blocking indefinitely.
    """


class OverloadedError(ServingUnavailableError):
    """The request was shed by admission control (in-flight budget full).

    Load shedding converts a burst that overruns capacity into fast
    failures for the excess, instead of unbounded queueing that degrades
    latency for everyone.  Every shed is counted in the
    :class:`~repro.serving.metrics.MetricsRegistry` — never silent.
    """


class CircuitOpenError(ServingUnavailableError):
    """The model's circuit breaker is open and no fallback could serve.

    Raised only after the configured fallback chain (last-good resident
    version, then cheap fallback models) was exhausted; the breaker state
    and the fallbacks tried are named in the message.
    """


def validate_user_ids(
    users: np.ndarray, num_users: int, model: Optional[str] = None
) -> np.ndarray:
    """Return ``users`` as int64, or raise :class:`ServingError` naming offenders.

    Every ID must satisfy ``0 <= user < num_users``.  Negative IDs are
    called out separately from too-large ones because they are the
    dangerous case (numpy wrap-around would silently serve another user's
    rows); both are rejected before any array indexing happens.
    """
    users = np.asarray(users, dtype=np.int64)
    bad = (users < 0) | (users >= num_users)
    if not np.any(bad):
        return users
    offenders = np.unique(users[bad])
    negative = offenders[offenders < 0]
    too_large = offenders[offenders >= num_users]
    parts = []
    if negative.size:
        parts.append(
            f"negative user IDs {_preview(negative)} (numpy indexing would wrap around "
            f"and serve another user's rows)"
        )
    if too_large.size:
        parts.append(f"user IDs {_preview(too_large)} >= num_users ({num_users})")
    target = f" for model {model!r}" if model is not None else ""
    raise ServingError(
        f"invalid user IDs in request{target}: " + "; ".join(parts) + f"; valid range is [0, {num_users})"
    )


def _preview(ids: Sequence[int], limit: int = 8) -> str:
    ids = list(int(i) for i in ids[:limit + 1])
    if len(ids) > limit:
        return "[" + ", ".join(str(i) for i in ids[:limit]) + ", ...]"
    return "[" + ", ".join(str(i) for i in ids) + "]"
