"""Candidate-generation retrieval: IVF shortlist + exact rescoring.

Brute-force top-k scores a dense ``(batch, num_items)`` block per request;
at the paper's long-tail catalog scale (100k–1M items) that wall is the
first thing to fall over.  :class:`RetrievalIndex` replaces it with the
classic two-stage shape:

1. **shortlist** — items are partitioned into ``num_cells`` k-means
   clusters over their factor vectors (an IVF — inverted-file — layout, in
   pure numpy).  A query scores only the ``num_cells`` centroids, probes
   the ``nprobe`` best cells, and takes their members as candidates:
   ``O(num_cells · dim + shortlist)`` work instead of ``O(num_items · dim)``;
2. **exact rescore** — the shortlist is scored through the *existing*
   score path (:meth:`~repro.serving.store.EmbeddingStore.scores`), so the
   final ranking over the shortlisted candidates is exactly what brute
   force would produce for them.  Approximation lives only in which items
   make the shortlist; recall@k vs exact search is tunable via ``nprobe``
   (``tests/serving/test_retrieval.py`` gates recall@10 ≥ 0.95 per model).

The item factors come from :meth:`~repro.models.base.RecommenderModel.scoring_factors`
— any model whose score is an inner product (MF, SocialMF, LightGCN, NGCF,
DiffNet, GBMF, GBGCN, GBGCN-pretrain, ItemPop) gets retrieval for free;
models without factors (NCF, ItemKNN, AGREE, SIGR) transparently fall back
to exact brute force.

Index lifecycle: :meth:`RetrievalIndex.build` is deterministic for a given
``(item_factors, seed)``, so the :class:`~repro.serving.catalog.ModelCatalog`
rebuilds the index during cold start — off the request path when driven by
a :class:`~repro.serving.warmer.CatalogWarmer` — and a hot-swapped artifact
automatically gets a fresh index.  Alternatively the index can ride inside
the artifact itself (``repro.persist.save_model(..., retrieval_index=...)``
stores its arrays under ``index/`` with header-declared parameters), so the
serving process never pays the k-means build.

Usage — exact parity when every cell is probed, approximate below:

>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> items = rng.normal(size=(500, 8))
>>> index = RetrievalIndex.build(items, num_cells=16, nprobe=16, seed=0)
>>> query = rng.normal(size=(1, 8))
>>> shortlist = index.shortlist(query)[0]
>>> sorted(shortlist) == list(range(500))   # nprobe == num_cells: all items
True
>>> narrow = index.shortlist(query, nprobe=2)[0]
>>> bool(0 < narrow.size < 500)
True
>>> exact_best = int(np.argmax(items @ query[0]))
>>> bool(exact_best in narrow)              # the best cell is probed first
True
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["RetrievalIndexError", "RetrievalIndex", "build_index_for_model"]

#: Identifies the index layout inside artifact headers; bump on change.
INDEX_KIND = "ivf-flat-ip/v1"

#: Largest k-means training sample — clustering cost stays bounded while
#: the assignment pass still covers every item exactly once.
_TRAIN_SAMPLE = 65536


class RetrievalIndexError(ValueError):
    """The index cannot be built or restored (bad shapes, foreign params)."""


class RetrievalIndex:
    """IVF-flat index over item factor vectors (pure numpy, exact in-cell).

    ``centroids`` is ``(num_cells, dim)``; ``cell_items`` holds every item
    ID grouped by cell, with ``cell_offsets`` (CSR-style, ``num_cells + 1``
    entries) delimiting each cell's slice.  ``nprobe`` is the default
    number of cells a query probes — the recall/latency dial.
    """

    def __init__(
        self,
        centroids: np.ndarray,
        cell_offsets: np.ndarray,
        cell_items: np.ndarray,
        nprobe: int,
        seed: int = 0,
    ) -> None:
        centroids = np.ascontiguousarray(centroids, dtype=np.float64)
        cell_offsets = np.ascontiguousarray(cell_offsets, dtype=np.int64)
        cell_items = np.ascontiguousarray(cell_items, dtype=np.int64)
        if centroids.ndim != 2:
            raise RetrievalIndexError(f"centroids must be 2-D, got shape {centroids.shape}")
        if cell_offsets.ndim != 1 or cell_offsets.size != centroids.shape[0] + 1:
            raise RetrievalIndexError(
                f"cell_offsets must have num_cells + 1 = {centroids.shape[0] + 1} entries, "
                f"got shape {cell_offsets.shape}"
            )
        if cell_offsets[0] != 0 or cell_offsets[-1] != cell_items.size:
            raise RetrievalIndexError("cell_offsets do not tile cell_items")
        if np.any(np.diff(cell_offsets) < 0):
            raise RetrievalIndexError("cell_offsets must be non-decreasing")
        if nprobe < 1:
            raise RetrievalIndexError(f"nprobe must be positive, got {nprobe}")
        self.centroids = centroids
        self.cell_offsets = cell_offsets
        self.cell_items = cell_items
        self.nprobe = min(int(nprobe), centroids.shape[0])
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        item_factors: np.ndarray,
        num_cells: Optional[int] = None,
        nprobe: Optional[int] = None,
        seed: int = 0,
        iterations: int = 8,
    ) -> "RetrievalIndex":
        """Cluster ``item_factors`` into an IVF index (seeded, deterministic).

        ``num_cells`` defaults to ``~sqrt(num_items)`` (the usual IVF
        balance point: probing ``nprobe`` cells then scans
        ``O(nprobe * sqrt(n))`` candidates).  ``nprobe`` defaults to enough
        cells for a ~5% catalog shortlist, at least 4.  k-means runs Lloyd
        iterations on a bounded seeded sample, then assigns every item once.
        """
        items = np.ascontiguousarray(item_factors, dtype=np.float64)
        if items.ndim != 2 or items.shape[0] == 0:
            raise RetrievalIndexError(
                f"item_factors must be a non-empty 2-D array, got shape {items.shape}"
            )
        num_items = items.shape[0]
        if num_cells is None:
            num_cells = max(1, min(num_items, int(round(num_items ** 0.5))))
        num_cells = int(num_cells)
        if not 1 <= num_cells <= num_items:
            raise RetrievalIndexError(
                f"num_cells must be in [1, num_items={num_items}], got {num_cells}"
            )
        if nprobe is None:
            nprobe = max(4, int(round(0.05 * num_cells)))
        rng = np.random.default_rng(seed)
        train = items
        if num_items > _TRAIN_SAMPLE:
            train = items[rng.choice(num_items, size=_TRAIN_SAMPLE, replace=False)]
        centroids = train[rng.choice(train.shape[0], size=num_cells, replace=False)].copy()
        for _ in range(max(1, iterations)):
            assignment = cls._nearest_cell(train, centroids)
            counts = np.bincount(assignment, minlength=num_cells).astype(np.float64)
            sums = np.zeros_like(centroids)
            np.add.at(sums, assignment, train)
            occupied = counts > 0
            centroids[occupied] = sums[occupied] / counts[occupied, None]
            empty = np.flatnonzero(~occupied)
            if empty.size:
                # Reseed empty cells from random training points so the
                # index never carries dead centroids.
                centroids[empty] = train[rng.integers(0, train.shape[0], size=empty.size)]
        assignment = cls._nearest_cell(items, centroids)
        order = np.argsort(assignment, kind="stable")
        cell_items = order.astype(np.int64)
        counts = np.bincount(assignment, minlength=num_cells)
        cell_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return cls(centroids, cell_offsets, cell_items, nprobe=int(nprobe), seed=seed)

    @staticmethod
    def _nearest_cell(points: np.ndarray, centroids: np.ndarray, block: int = 16384) -> np.ndarray:
        # Euclidean assignment via the expanded form: ||x - c||^2 =
        # ||x||^2 - 2 x·c + ||c||^2; the ||x||^2 term is constant per row.
        # Blocked so the (points, cells) affinity never materializes whole —
        # at 1M items x 1000 cells that full matrix would be 8 GB.
        half_norms = 0.5 * np.einsum("ij,ij->i", centroids, centroids)
        out = np.empty(points.shape[0], dtype=np.int64)
        for start in range(0, points.shape[0], block):
            affinity = points[start : start + block] @ centroids.T
            affinity -= half_norms[None, :]
            out[start : start + block] = np.argmax(affinity, axis=1)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self.centroids.shape[0]

    @property
    def num_items(self) -> int:
        return self.cell_items.size

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    def params(self) -> Dict[str, Any]:
        """JSON-serializable index parameters (stored in artifact headers)."""
        return {
            "kind": INDEX_KIND,
            "num_cells": self.num_cells,
            "num_items": self.num_items,
            "dim": self.dim,
            "nprobe": self.nprobe,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def shortlist(self, queries: np.ndarray, nprobe: Optional[int] = None) -> List[np.ndarray]:
        """Candidate item IDs per query row (ragged; unordered within a cell).

        Probes the ``nprobe`` cells whose centroids score highest under the
        query (inner product), and returns the union of their members.  The
        caller rescores the candidates exactly — see
        :meth:`TopKRecommender <repro.serving.topk.TopKRecommender>`.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise RetrievalIndexError(
                f"query dim {queries.shape[1]} does not match index dim {self.dim}"
            )
        probe = self.nprobe if nprobe is None else min(int(nprobe), self.num_cells)
        if probe < 1:
            raise RetrievalIndexError(f"nprobe must be positive, got {probe}")
        affinity = queries @ self.centroids.T
        if probe < self.num_cells:
            cells = np.argpartition(-affinity, probe - 1, axis=1)[:, :probe]
        else:
            cells = np.broadcast_to(np.arange(self.num_cells), (queries.shape[0], self.num_cells))
        out: List[np.ndarray] = []
        for row_cells in cells:
            members = [
                self.cell_items[self.cell_offsets[cell] : self.cell_offsets[cell + 1]]
                for cell in row_cells
            ]
            out.append(np.concatenate(members) if members else np.zeros(0, dtype=np.int64))
        return out

    # ------------------------------------------------------------------
    # Persistence (arrays + params round-trip through repro.persist)
    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The arrays an artifact stores under its ``index/`` prefix."""
        return {
            "centroids": self.centroids,
            "cell_offsets": self.cell_offsets,
            "cell_items": self.cell_items,
        }

    @classmethod
    def from_state(cls, params: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> "RetrievalIndex":
        """Rebuild an index from header params + stored arrays.

        Raises :class:`RetrievalIndexError` for foreign kinds or missing
        arrays, so a stale or hand-edited artifact fails loudly instead of
        serving a broken shortlist.
        """
        kind = params.get("kind")
        if kind != INDEX_KIND:
            raise RetrievalIndexError(
                f"artifact declares retrieval index kind {kind!r}; this library reads {INDEX_KIND!r}"
            )
        missing = {"centroids", "cell_offsets", "cell_items"} - set(arrays)
        if missing:
            raise RetrievalIndexError(f"retrieval index arrays missing from artifact: {sorted(missing)}")
        index = cls(
            arrays["centroids"],
            arrays["cell_offsets"],
            arrays["cell_items"],
            nprobe=int(params.get("nprobe", 1)),
            seed=int(params.get("seed", 0)),
        )
        declared = int(params.get("num_items", index.num_items))
        if declared != index.num_items:
            raise RetrievalIndexError(
                f"artifact header declares {declared} indexed items but the arrays hold "
                f"{index.num_items}"
            )
        return index

    def __repr__(self) -> str:
        return (
            f"RetrievalIndex(items={self.num_items}, cells={self.num_cells}, "
            f"dim={self.dim}, nprobe={self.nprobe})"
        )


def build_index_for_model(
    model,
    num_cells: Optional[int] = None,
    nprobe: Optional[int] = None,
    seed: int = 0,
) -> Optional[RetrievalIndex]:
    """An IVF index over ``model``'s item factors, or ``None`` without factors.

    The single entry point the catalog, the checkpoint publisher and tests
    share: models that expose
    :meth:`~repro.models.base.RecommenderModel.scoring_factors` get an
    index; everything else returns ``None`` (brute-force fallback).
    """
    factors = model.scoring_factors()
    if factors is None:
        return None
    _, item_factors = factors
    return RetrievalIndex.build(item_factors, num_cells=num_cells, nprobe=nprobe, seed=seed)
