"""Resilience primitives: deadlines, admission control, circuit breakers.

A burst-shaped workload (flash sales are the group-buying scenario par
excellence) fails *partially*: one model's artifact goes bad mid-swap, one
worker stalls on IO, one burst overruns capacity.  This module supplies
the three primitives that turn each of those into a bounded, typed,
counted outcome instead of an unbounded queue or a raw stack trace:

* :class:`Deadline` — a monotonic expiry carried with a request and
  checked at every blocking point (gateway entry, catalog cold-start
  wait, worker-pool reply wait), raising
  :class:`~repro.serving.errors.DeadlineExceededError`;
* :class:`AdmissionController` — a bounded in-flight budget (gateway-wide
  and per model); the excess of a burst is shed with
  :class:`~repro.serving.errors.OverloadedError` and counted, never
  queued silently;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine per model: repeated cold-start/artifact failures open the
  circuit, the gateway fails over to its fallback chain, and a half-open
  probe (driven by the :class:`~repro.serving.warmer.CatalogWarmer` off
  the request path, or by the first request past the reset timeout)
  decides whether to close it again.  A claimed probe must always reach
  a verdict — :meth:`~CircuitBreaker.record_success`,
  :meth:`~CircuitBreaker.record_failure`, or
  :meth:`~CircuitBreaker.release_probe` when the probe's outcome says
  nothing about the model — and as a backstop a half-open breaker whose
  probe never reports re-opens the slot after another ``reset_seconds``,
  so a leaked probe can never wedge a model offline permanently.

:class:`ResiliencePolicy` is the immutable configuration bundle a
:class:`~repro.serving.gateway.ServingGateway` (or each worker of a
:class:`~repro.serving.workers.WorkerPool`) is constructed with;
:class:`ResilienceState` is the live state the gateway owns.

Usage — a breaker opens after repeated failures and recovers via a probe:

>>> from repro.serving.resilience import CircuitBreaker
>>> breaker = CircuitBreaker(failure_threshold=2, reset_seconds=0.0)
>>> breaker.allow(), breaker.state
(True, 'closed')
>>> breaker.record_failure(), breaker.record_failure()   # second one opens it
(False, True)
>>> breaker.state
'open'
>>> breaker.allow()     # reset_seconds elapsed: this call claims the probe
True
>>> breaker.state
'half-open'
>>> breaker.record_success(); breaker.state
'closed'
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from . import forksafe
from .errors import DeadlineExceededError, OverloadedError

__all__ = [
    "Deadline",
    "AdmissionController",
    "CircuitBreaker",
    "ResiliencePolicy",
    "ResilienceState",
    "ADMIT_ALLOW",
    "ADMIT_PROBE",
    "ADMIT_REJECT",
]


class Deadline:
    """A per-request expiry on the monotonic clock.

    Constructed at the serving edge (:meth:`after`) and propagated with
    the request; every blocking point checks it via :meth:`check` (raises
    a typed :class:`~repro.serving.errors.DeadlineExceededError` naming
    where it expired) or budgets its own wait with :meth:`remaining`.

    The expiry is an absolute ``time.monotonic()`` timestamp, which on
    every supported platform is machine-wide — so a pickled deadline
    crossing the :class:`~repro.serving.workers.WorkerPool` process
    boundary keeps counting queue time against the request, exactly the
    time that matters under overload.

    >>> deadline = Deadline.after(60.0)
    >>> deadline.expired
    False
    >>> 0.0 < deadline.remaining() <= 60.0
    True
    >>> Deadline.after(0.0).check("doctest")        # doctest: +ELLIPSIS
    Traceback (most recent call last):
      ...
    repro.serving.errors.DeadlineExceededError: deadline exceeded ...
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (must be >= 0)."""
        if seconds < 0.0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds)

    @classmethod
    def coerce(cls, value: Union["Deadline", float, int, None]) -> Optional["Deadline"]:
        """Normalize a user-facing ``deadline`` argument.

        ``None`` stays None (no deadline); a number means "seconds from
        now"; a :class:`Deadline` passes through (the propagation case).
        """
        if value is None or isinstance(value, Deadline):
            return value
        return cls.after(float(value))

    def remaining(self) -> float:
        """Seconds left (clamped at 0.0)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, where: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` naming ``where`` if expired."""
        now = time.monotonic()
        if now >= self.expires_at:
            raise DeadlineExceededError(
                f"deadline exceeded at {where} ({now - self.expires_at:.3f}s past expiry)"
            )

    # Pickled across the worker boundary with the absolute timestamp.
    def __getstate__(self) -> float:
        return self.expires_at

    def __setstate__(self, state: float) -> None:
        self.expires_at = state

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


class AdmissionController:
    """Bounded in-flight request budget — the load-shedding gate.

    ``max_inflight`` bounds concurrent requests across the whole gateway,
    ``max_inflight_per_model`` bounds each model's share (either may be
    None for unbounded).  :meth:`acquire` either admits the request
    (returning a release callable) or raises a typed
    :class:`~repro.serving.errors.OverloadedError` *immediately* — there
    is deliberately no queueing here: under a burst, the excess fails in
    microseconds and the admitted requests keep their latency.

    >>> admission = AdmissionController(max_inflight=1)
    >>> release = admission.acquire("mf")
    >>> admission.acquire("mf")                     # doctest: +ELLIPSIS
    Traceback (most recent call last):
      ...
    repro.serving.errors.OverloadedError: overloaded: ...
    >>> release(); release()     # idempotent
    >>> admission.inflight()
    0
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        max_inflight_per_model: Optional[int] = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (or None), got {max_inflight}")
        if max_inflight_per_model is not None and max_inflight_per_model < 1:
            raise ValueError(
                f"max_inflight_per_model must be >= 1 (or None), got {max_inflight_per_model}"
            )
        self.max_inflight = max_inflight
        self.max_inflight_per_model = max_inflight_per_model
        self._lock = threading.Lock()
        self._total = 0
        self._per_model: Dict[str, int] = {}
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Replace the lock a fork may have copied in a held state (child only)."""
        self._lock = threading.Lock()

    def acquire(self, model: str, *, count_total: bool = True) -> Callable[[], None]:
        """Admit one request for ``model`` or raise :class:`OverloadedError`.

        Returns an idempotent release callable the caller must invoke when
        the request finishes (success *or* failure).

        ``count_total=False`` books only ``model``'s per-model share, not
        the gateway-wide budget — the gateway uses it when a fallback
        model serves a request whose total-budget slot is already held
        under the primary model's name, so per-model budgets meter the
        model that *actually* serves without double-charging the total.
        """
        with self._lock:
            if (
                count_total
                and self.max_inflight is not None
                and self._total >= self.max_inflight
            ):
                raise OverloadedError(
                    f"overloaded: {self._total} requests in flight >= gateway budget "
                    f"{self.max_inflight}; request for {model!r} shed"
                )
            model_inflight = self._per_model.get(model, 0)
            if (
                self.max_inflight_per_model is not None
                and model_inflight >= self.max_inflight_per_model
            ):
                raise OverloadedError(
                    f"overloaded: {model_inflight} requests in flight for {model!r} >= "
                    f"per-model budget {self.max_inflight_per_model}; request shed"
                )
            if count_total:
                self._total += 1
            self._per_model[model] = model_inflight + 1
        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            with self._lock:
                if count_total:
                    self._total -= 1
                remaining = self._per_model.get(model, 1) - 1
                if remaining <= 0:
                    self._per_model.pop(model, None)
                else:
                    self._per_model[model] = remaining

        return release

    def inflight(self, model: Optional[str] = None) -> int:
        """Currently admitted requests (for ``model``, or in total)."""
        with self._lock:
            return self._total if model is None else self._per_model.get(model, 0)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AdmissionController(inflight={self._total}, budget={self.max_inflight}, "
                f"per_model_budget={self.max_inflight_per_model})"
            )


#: Breaker state names (strings, so snapshots stay JSON-plain).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

#: :meth:`CircuitBreaker.admit` verdicts.
ADMIT_ALLOW = "allow"  # closed: serve normally
ADMIT_PROBE = "probe"  # this caller claimed the half-open probe slot
ADMIT_REJECT = "reject"  # open (or probe already claimed): do not serve


class CircuitBreaker:
    """Per-model failure breaker: closed → open → half-open → closed.

    CLOSED counts consecutive model-side failures (cold-start errors,
    unservable artifacts); at ``failure_threshold`` the breaker OPENs and
    :meth:`allow` answers False — the gateway stops hammering a model
    that cannot serve and fails over instead.  After ``reset_seconds``
    the next :meth:`admit`/:meth:`allow` (or an off-request-path
    :meth:`try_probe` from the warmer) claims the single HALF-OPEN probe
    slot; the probe's outcome either closes the breaker
    (:meth:`record_success`) or re-opens it with a fresh timer
    (:meth:`record_failure`).

    A claimed probe **owns a verdict debt**: whoever got ``ADMIT_PROBE``
    must call :meth:`record_success`, :meth:`record_failure`, or —
    when the probe ended for a reason that says nothing about the model
    (a client-input error, an interrupt) — :meth:`release_probe`, which
    hands the slot straight back.  As a backstop against any path that
    forgets, a breaker stuck half-open longer than ``reset_seconds``
    re-opens the probe slot to the next :meth:`admit` caller, so a
    leaked probe degrades to one lost reset window, never a permanently
    disabled model.

    Thread-safe; the probe slot is claimed atomically, so concurrent
    requests during half-open cannot stampede the recovering model.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds < 0.0:
            raise ValueError(f"reset_seconds must be >= 0, got {reset_seconds}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_since = 0.0
        #: Monotonic counters for observability.
        self.times_opened = 0
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Replace the lock a fork may have copied in a held state (child only)."""
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def admit(self) -> str:
        """May a request try the model now — and is it the probe?

        CLOSED → :data:`ADMIT_ALLOW`.  OPEN → :data:`ADMIT_REJECT` until
        ``reset_seconds`` elapsed, then the first caller transitions to
        HALF-OPEN, claims the probe slot and gets :data:`ADMIT_PROBE`;
        every other caller is rejected until the probe's verdict lands.
        A caller handed :data:`ADMIT_PROBE` owes the breaker a verdict
        (:meth:`record_success` / :meth:`record_failure` /
        :meth:`release_probe`); if none ever arrives, the slot re-opens
        to a new probe after another ``reset_seconds`` (class docstring).
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return ADMIT_ALLOW
            now = self._clock()
            if self._state == STATE_OPEN:
                if now - self._opened_at >= self.reset_seconds:
                    self._state = STATE_HALF_OPEN
                    self._half_open_since = now
                    return ADMIT_PROBE  # this caller IS the probe
                return ADMIT_REJECT
            # Half-open: the probe slot is claimed — unless its claimant
            # leaked the verdict, in which case the slot is reclaimable
            # after a full reset window (never wedge a model offline).
            if now - self._half_open_since >= self.reset_seconds:
                self._half_open_since = now
                return ADMIT_PROBE
            return ADMIT_REJECT

    def allow(self) -> bool:
        """May a request try the model now? (:meth:`admit` as a bool.)

        True for a closed breaker *and* for the caller that claims the
        half-open probe slot — use :meth:`admit` when the caller needs to
        know which, i.e. whether it owes the breaker a probe verdict.
        """
        return self.admit() != ADMIT_REJECT

    def try_probe(self) -> bool:
        """Claim the half-open probe off the request path (warmer hook).

        Same transition as :meth:`admit`, but named for intent: the
        warmer calls it each cycle and — when it returns True — warms
        the model itself, so the recovery attempt never rides a request.
        """
        return self.admit() == ADMIT_PROBE if self.state != STATE_CLOSED else False

    def release_probe(self) -> None:
        """Hand a claimed half-open probe slot back without a verdict.

        For probes that ended for reasons unrelated to the model's health
        (client-input errors, interrupts): the breaker returns to OPEN
        with its *original* timer, so the very next :meth:`admit` (or the
        warmer's :meth:`try_probe`) may claim a fresh probe immediately.
        Not a failure: no streak increment, no ``times_opened`` bump.
        No-op unless currently half-open.
        """
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._state = STATE_OPEN

    def record_success(self) -> None:
        """A serve (or probe) succeeded: reset failures, close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._state = STATE_CLOSED

    def record_failure(self) -> bool:
        """A model-side failure (or failed probe); returns True if this opened the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                # Failed probe: straight back to open, fresh timer.
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
                return True
            if self._state == STATE_CLOSED and self._consecutive_failures >= self.failure_threshold:
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
                return True
            return False

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict state for observability endpoints."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "failure_threshold": self.failure_threshold,
                "reset_seconds": self.reset_seconds,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"CircuitBreaker({snap['state']}, failures={snap['consecutive_failures']}/"
            f"{self.failure_threshold}, opened={snap['times_opened']}x)"
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """Immutable resilience configuration for a gateway (or pool workers).

    Everything defaults to "off"/permissive, so
    ``ResiliencePolicy()`` alone changes no behavior; switch on the
    pieces a deployment needs.  Picklable (plain data), so a
    :class:`~repro.serving.workers.WorkerPool` forwards one to its spawn
    workers unchanged.

    Parameters
    ----------
    deadline_seconds:
        Default per-request deadline applied when a request carries none
        (``None`` = no default; requests without deadlines block as before).
    max_inflight, max_inflight_per_model:
        Admission-control budgets (see :class:`AdmissionController`);
        ``None`` = unbounded.
    breaker_failure_threshold, breaker_reset_seconds:
        Circuit-breaker tuning (see :class:`CircuitBreaker`).
    serve_stale_on_failure:
        When a model fails or its breaker is open, serve the gateway's
        retained last-good resident version of that model (the first link
        of the fallback chain).  The stale serve is counted as a fallback,
        never silent.
    fallback_models:
        Catalog names tried — in order — after the last-good link (e.g.
        ``("itempop",)``: a cheap popularity model that can absorb any
        model's traffic).  A fallback with an open breaker of its own is
        skipped.
    """

    deadline_seconds: Optional[float] = None
    max_inflight: Optional[int] = None
    max_inflight_per_model: Optional[int] = None
    breaker_failure_threshold: int = 3
    breaker_reset_seconds: float = 30.0
    serve_stale_on_failure: bool = True
    fallback_models: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0.0:
            raise ValueError(f"deadline_seconds must be positive, got {self.deadline_seconds}")
        object.__setattr__(self, "fallback_models", tuple(self.fallback_models))


class ResilienceState:
    """The live resilience state a gateway owns: admission, breakers, last-good.

    Created by :class:`~repro.serving.gateway.ServingGateway` from its
    :class:`ResiliencePolicy`; exposed as ``gateway.resilience`` so a
    :class:`~repro.serving.warmer.CatalogWarmer` can drive half-open
    probes off the request path (:meth:`probe_open_circuits`).
    """

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy
        self.admission = AdmissionController(
            max_inflight=policy.max_inflight,
            max_inflight_per_model=policy.max_inflight_per_model,
        )
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        # name -> (version, recommender): the newest resident each model
        # successfully served with.  Stores are immutable arrays, so a
        # retained recommender stays serveable after catalog eviction —
        # the "last-good resident version" link of the fallback chain.
        self._last_good: Dict[str, Tuple[int, object]] = {}
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Replace the lock a fork may have copied in a held state (child only)."""
        self._lock = threading.Lock()

    def breaker(self, name: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding catalog model ``name``."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    failure_threshold=self.policy.breaker_failure_threshold,
                    reset_seconds=self.policy.breaker_reset_seconds,
                )
            return breaker

    def breaker_snapshots(self) -> Dict[str, Dict[str, object]]:
        """name → breaker snapshot for every model seen so far."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot() for name, breaker in breakers.items()}

    def remember_last_good(self, name: str, version: int, recommender: object) -> None:
        with self._lock:
            self._last_good[name] = (version, recommender)

    def last_good(self, name: str) -> Optional[Tuple[int, object]]:
        """``(version, recommender)`` of the newest successful serve, or None."""
        with self._lock:
            return self._last_good.get(name)

    def probe_open_circuits(self, catalog) -> Dict[str, bool]:
        """Half-open probing off the request path (the warmer calls this).

        For every non-closed breaker whose reset timeout has elapsed,
        claim the probe slot and attempt a :meth:`ModelCatalog.warm` —
        the same cold-start a request would have paid, but on the
        warmer's thread.  Success closes the breaker (the next request
        is a plain residency hit); failure re-opens it with a fresh
        timer.  Returns name → probe outcome for the models probed this
        call.  Never raises: a failed probe *is* the expected outcome
        while the underlying fault persists.
        """
        with self._lock:
            candidates = [
                (name, breaker)
                for name, breaker in self._breakers.items()
                if breaker.state != STATE_CLOSED
            ]
        outcomes: Dict[str, bool] = {}
        for name, breaker in candidates:
            if not breaker.try_probe():
                continue  # still inside reset_seconds, or probe already claimed
            try:
                catalog.warm(name)
            except Exception:  # noqa: BLE001 — any warm failure fails the probe
                breaker.record_failure()
                outcomes[name] = False
            else:
                breaker.record_success()
                outcomes[name] = True
        return outcomes

    def __repr__(self) -> str:
        states = {name: snap["state"] for name, snap in self.breaker_snapshots().items()}
        return f"ResilienceState({self.admission!r}, breakers={states})"
