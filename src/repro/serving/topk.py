"""Top-K recommendation serving over an :class:`EmbeddingStore`.

The online scenario GBGCN feeds (PAPER.md, Eq. 9) is "which items should
this initiator launch a group for next?".  :class:`TopKRecommender` answers
it for whole batches of users at once:

* one :meth:`EmbeddingStore.score_all_items` call produces the
  ``(users, items)`` score block from cached propagated embeddings;
* observed items are masked per user through a sparse row slice, so a
  user is never recommended a deal they already bought into;
* ``np.argpartition`` selects the top ``k`` in O(items) per user instead
  of a full O(items log items) argsort, and only the ``k`` winners are
  sorted for presentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..data.dataset import GroupBuyingDataset, observed_item_matrix
from .store import EmbeddingStore

__all__ = ["TopKResult", "TopKRecommender"]


@dataclass(frozen=True)
class TopKResult:
    """Aligned per-user recommendation lists.

    ``items[i, j]`` is the j-th best item for ``users[i]``; padded with -1
    (and ``-inf`` score) when fewer than ``k`` items are recommendable.
    """

    users: np.ndarray
    items: np.ndarray
    scores: np.ndarray

    def for_user(self, user: int) -> np.ndarray:
        """Recommended items of one user (padding stripped)."""
        row = np.flatnonzero(self.users == user)
        if row.size == 0:
            raise KeyError(f"user {user} is not part of this result")
        items = self.items[int(row[0])]
        return items[items >= 0]


class TopKRecommender:
    """Batched top-``k`` item recommendation with observed-item exclusion.

    Usage — wrap any model's :class:`EmbeddingStore` and ask for lists:

    >>> import numpy as np
    >>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
    >>> from repro.models import build_model
    >>> from repro.serving import EmbeddingStore, TopKRecommender
    >>> split = leave_one_out_split(generate_dataset(
    ...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
    >>> store = EmbeddingStore(build_model("MF", split.train))
    >>> recommender = TopKRecommender(store, k=5, dataset=split.full)
    >>> result = recommender.recommend(np.asarray([0, 1, 2]))
    >>> result.items.shape
    (3, 5)
    >>> len(recommender.recommend_user(0))  # single-user convenience wrapper
    5
    """

    def __init__(
        self,
        store: EmbeddingStore,
        k: int = 10,
        exclude_observed: bool = True,
        dataset: Optional[GroupBuyingDataset] = None,
        batch_size: int = 256,
        observed_matrix: Optional[sp.csr_matrix] = None,
    ) -> None:
        """``dataset`` supplies the observed interactions to exclude; it is
        required when ``exclude_observed`` is set.  ``batch_size`` bounds the
        dense ``(users, items)`` score block held in memory at once.  A
        precomputed ``observed_matrix`` (see
        :func:`~repro.data.dataset.observed_item_matrix`) skips the rebuild —
        the :class:`~repro.serving.catalog.ModelCatalog` shares one across
        every model serving the same dataset."""
        if k < 1:
            raise ValueError("k must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if exclude_observed and dataset is None and observed_matrix is None:
            raise ValueError("exclude_observed=True requires a dataset (or an observed_matrix)")
        self.store = store
        self.k = k
        self.batch_size = batch_size
        self.exclude_observed = exclude_observed
        self._observed_matrix: Optional[sp.csr_matrix] = None
        if exclude_observed:
            if observed_matrix is not None:
                self._observed_matrix = observed_matrix
            else:
                self._observed_matrix = observed_item_matrix(
                    dataset.user_item_set(include_participants=True),
                    dataset.num_users,
                    dataset.num_items,
                )

    def recommend(self, users: np.ndarray, k: Optional[int] = None) -> TopKResult:
        """Top-``k`` items for every user in ``users``.

        Users are scored in ``batch_size`` blocks so only one dense
        ``(batch_size, items)`` score matrix is alive at a time; each block
        keeps just its ``k`` winners.
        """
        users = np.asarray(users, dtype=np.int64)
        k = self.k if k is None else k
        if k < 1:
            raise ValueError("k must be positive")
        k = min(k, self.store.model.num_items)
        item_blocks = []
        score_blocks = []
        for start in range(0, users.size, self.batch_size):
            block = users[start : start + self.batch_size]
            top_items, top_scores = self._top_k_block(block, k)
            item_blocks.append(top_items)
            score_blocks.append(top_scores)
        if not item_blocks:
            empty = np.zeros((0, k), dtype=np.int64)
            return TopKResult(users=users, items=empty, scores=empty.astype(np.float64))
        return TopKResult(
            users=users, items=np.vstack(item_blocks), scores=np.vstack(score_blocks)
        )

    def _top_k_block(self, users: np.ndarray, k: int) -> tuple:
        scores = self.store.score_all_items(users)
        if self._observed_matrix is not None:
            observed = self._observed_matrix[users].toarray()
            scores = np.where(observed, -np.inf, scores)

        # Partial selection of the k best columns per row, then an exact
        # sort of just those k.
        top_unordered = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        row_index = np.arange(users.size)[:, None]
        order = np.argsort(-scores[row_index, top_unordered], axis=1, kind="stable")
        top_items = top_unordered[row_index, order]
        top_scores = scores[row_index, top_items]

        # Mask out -inf slots (users whose unobserved catalog is < k).
        invalid = ~np.isfinite(top_scores)
        top_items = np.where(invalid, -1, top_items)
        return top_items, top_scores

    def recommend_user(self, user: int, k: Optional[int] = None) -> np.ndarray:
        """Convenience wrapper: recommended item IDs for a single user."""
        result = self.recommend(np.asarray([user], dtype=np.int64), k=k)
        return result.for_user(user)
