"""Top-K recommendation serving over an :class:`EmbeddingStore`.

The online scenario GBGCN feeds (PAPER.md, Eq. 9) is "which items should
this initiator launch a group for next?".  :class:`TopKRecommender` answers
it for whole batches of users at once, through one of two paths:

* **dense** (default) — one :meth:`EmbeddingStore.score_all_items` call
  produces the ``(users, items)`` score block from cached propagated
  embeddings, observed items are masked per user through a sparse row
  slice, and ``np.argpartition`` selects the top ``k`` in O(items) per
  user;
* **retrieval** (``retriever=``) — a
  :class:`~repro.serving.retrieval.RetrievalIndex` shortlists a few
  hundred candidates per user (IVF probe over the model's item factors),
  and only the shortlist is rescored through the exact score path.  At
  100k–1M items this replaces the O(items) wall with
  O(sqrt(items) · nprobe) work per user; models without scoring factors
  transparently fall back to the dense path.

Input is validated at this boundary: user IDs outside ``[0, num_users)``
raise :class:`~repro.serving.errors.ServingError` *before* any array is
indexed — a negative ID would otherwise wrap around (numpy semantics) and
silently serve another user's list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..data.dataset import GroupBuyingDataset, observed_item_matrix
from .errors import ServingError, validate_user_ids
from .retrieval import RetrievalIndex
from .store import EmbeddingStore

__all__ = ["TopKResult", "TopKRecommender"]


@dataclass(frozen=True)
class TopKResult:
    """Aligned per-user recommendation lists.

    ``items[i, j]`` is the j-th best item for ``users[i]``; padded with -1
    (and ``-inf`` score) when fewer than ``k`` items are recommendable —
    including when the caller's ``k`` exceeds the catalog size, so
    ``items.shape[1]`` always equals the requested ``k``.
    """

    users: np.ndarray
    items: np.ndarray
    scores: np.ndarray

    def for_user(self, user: int) -> np.ndarray:
        """Recommended items of one user (padding stripped)."""
        row = np.flatnonzero(self.users == user)
        if row.size == 0:
            raise KeyError(f"user {user} is not part of this result")
        items = self.items[int(row[0])]
        return items[items >= 0]


class TopKRecommender:
    """Batched top-``k`` item recommendation with observed-item exclusion.

    Usage — wrap any model's :class:`EmbeddingStore` and ask for lists:

    >>> import numpy as np
    >>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
    >>> from repro.models import build_model
    >>> from repro.serving import EmbeddingStore, TopKRecommender
    >>> split = leave_one_out_split(generate_dataset(
    ...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
    >>> store = EmbeddingStore(build_model("MF", split.train))
    >>> recommender = TopKRecommender(store, k=5, dataset=split.full)
    >>> result = recommender.recommend(np.asarray([0, 1, 2]))
    >>> result.items.shape
    (3, 5)
    >>> len(recommender.recommend_user(0))  # single-user convenience wrapper
    5

    With a retrieval index, rankings are produced from a shortlist instead
    of the full catalog (identical here, because every cell is probed):

    >>> from repro.serving.retrieval import build_index_for_model
    >>> index = build_index_for_model(store.model, num_cells=4, nprobe=4)
    >>> fast = TopKRecommender(store, k=5, dataset=split.full, retriever=index)
    >>> bool(np.array_equal(fast.recommend(np.arange(3)).items, result.items))
    True

    Requests are validated: IDs outside ``[0, num_users)`` raise a typed
    :class:`~repro.serving.errors.ServingError` instead of wrapping around
    or crashing deep in the score path:

    >>> recommender.recommend(np.asarray([-1]))
    Traceback (most recent call last):
        ...
    repro.serving.errors.ServingError: invalid user IDs in request: negative user IDs [-1] (numpy indexing would wrap around and serve another user's rows); valid range is [0, 40)
    """

    def __init__(
        self,
        store: EmbeddingStore,
        k: int = 10,
        exclude_observed: bool = True,
        dataset: Optional[GroupBuyingDataset] = None,
        batch_size: int = 256,
        observed_matrix: Optional[sp.csr_matrix] = None,
        retriever: Optional[RetrievalIndex] = None,
    ) -> None:
        """``dataset`` supplies the observed interactions to exclude; it is
        required when ``exclude_observed`` is set.  ``batch_size`` bounds the
        dense ``(users, items)`` score block held in memory at once.  A
        precomputed ``observed_matrix`` (see
        :func:`~repro.data.dataset.observed_item_matrix`) skips the rebuild —
        the :class:`~repro.serving.catalog.ModelCatalog` shares one across
        every model serving the same dataset.  ``retriever`` switches the
        recommender to shortlist-then-rescore mode (see the module
        docstring); it must index exactly the store's item catalog."""
        if k < 1:
            raise ValueError("k must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if exclude_observed and dataset is None and observed_matrix is None:
            raise ValueError("exclude_observed=True requires a dataset (or an observed_matrix)")
        if retriever is not None and retriever.num_items != store.model.num_items:
            raise ValueError(
                f"retriever indexes {retriever.num_items} items but the model serves "
                f"{store.model.num_items}; rebuild the index from this model's factors"
            )
        self.store = store
        self.k = k
        self.batch_size = batch_size
        self.exclude_observed = exclude_observed
        self.retriever = retriever
        # Per-version cache of the model's user-side query factors; rebuilt
        # after every store refresh (hot-swap, training step).
        self._query_factors: Optional[np.ndarray] = None
        self._query_version = -1
        self._observed_matrix: Optional[sp.csr_matrix] = None
        if exclude_observed:
            if observed_matrix is not None:
                self._observed_matrix = observed_matrix
            else:
                self._observed_matrix = observed_item_matrix(
                    dataset.user_item_set(include_participants=True),
                    dataset.num_users,
                    dataset.num_items,
                )

    def recommend(self, users: np.ndarray, k: Optional[int] = None) -> TopKResult:
        """Top-``k`` items for every user in ``users``.

        Users are scored in ``batch_size`` blocks so only one dense
        ``(batch_size, items)`` score matrix is alive at a time; each block
        keeps just its ``k`` winners.  The result always has exactly ``k``
        columns: when fewer than ``k`` items are recommendable (small
        catalog, or the user observed most of it) the tail is padded with
        ``-1`` items and ``-inf`` scores, per the :class:`TopKResult`
        contract — the requested shape is never silently shrunk.

        User IDs outside ``[0, num_users)`` raise
        :class:`~repro.serving.errors.ServingError` before anything is
        scored.
        """
        users = validate_user_ids(users, self.store.model.num_users)
        k = self.k if k is None else k
        if k < 1:
            raise ServingError(f"k must be positive, got {k}")
        select_k = min(k, self.store.model.num_items)
        item_blocks = []
        score_blocks = []
        for start in range(0, users.size, self.batch_size):
            block = users[start : start + self.batch_size]
            if self.retriever is not None and self._queries() is not None:
                top_items, top_scores = self._top_k_block_retrieval(block, select_k)
            else:
                top_items, top_scores = self._top_k_block(block, select_k)
            item_blocks.append(top_items)
            score_blocks.append(top_scores)
        if not item_blocks:
            items = np.zeros((0, k), dtype=np.int64)
            return TopKResult(users=users, items=items, scores=items.astype(np.float64))
        items = np.vstack(item_blocks)
        scores = np.vstack(score_blocks)
        if select_k < k:
            # Pad to the requested width: the caller asked for k columns and
            # gets k columns, with the documented -1 / -inf filler.
            pad = ((0, 0), (0, k - select_k))
            items = np.pad(items, pad, constant_values=-1)
            scores = np.pad(scores, pad, constant_values=-np.inf)
        return TopKResult(users=users, items=items, scores=scores)

    # ------------------------------------------------------------------
    # Dense path: one (batch, num_items) block
    # ------------------------------------------------------------------
    def _top_k_block(self, users: np.ndarray, k: int) -> tuple:
        scores = self.store.score_all_items(users)
        if self._observed_matrix is not None:
            observed = self._observed_matrix[users].toarray()
            scores = np.where(observed, -np.inf, scores)

        # Partial selection of the k best columns per row, then an exact
        # sort of just those k.
        top_unordered = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        row_index = np.arange(users.size)[:, None]
        order = np.argsort(-scores[row_index, top_unordered], axis=1, kind="stable")
        top_items = top_unordered[row_index, order]
        top_scores = scores[row_index, top_items]

        # Mask out -inf slots (users whose unobserved catalog is < k).
        invalid = ~np.isfinite(top_scores)
        top_items = np.where(invalid, -1, top_items)
        return top_items, top_scores

    # ------------------------------------------------------------------
    # Retrieval path: IVF shortlist + exact rescore
    # ------------------------------------------------------------------
    def _queries(self) -> Optional[np.ndarray]:
        """The model's user-side factors, cached per store version."""
        if self._query_version != self.store.version or self._query_factors is None:
            factors = self.store.scoring_factors()
            self._query_factors = None if factors is None else np.asarray(factors[0], dtype=np.float64)
            self._query_version = self.store.version
        return self._query_factors

    def _top_k_block_retrieval(self, users: np.ndarray, k: int) -> tuple:
        queries = self._queries()[users]
        shortlists = self.retriever.shortlist(queries)
        top_items = np.full((users.size, k), -1, dtype=np.int64)
        top_scores = np.full((users.size, k), -np.inf, dtype=np.float64)
        for row, (user, candidates) in enumerate(zip(users, shortlists)):
            if self._observed_matrix is not None:
                row_slice = self._observed_matrix[int(user)]
                if row_slice.nnz:
                    candidates = candidates[~np.isin(candidates, row_slice.indices)]
            if candidates.size == 0:
                continue
            # Exact rescoring through the existing score path: the ranking
            # over the shortlist is bitwise what score_batch produces.
            scores = self.store.scores(np.asarray([user]), candidates)[0]
            take = min(k, candidates.size)
            if take < candidates.size:
                best = np.argpartition(-scores, take - 1)[:take]
            else:
                best = np.arange(candidates.size)
            order = np.argsort(-scores[best], kind="stable")
            chosen = best[order]
            top_items[row, :take] = candidates[chosen]
            top_scores[row, :take] = scores[chosen]
        return top_items, top_scores

    def recommend_user(self, user: int, k: Optional[int] = None) -> np.ndarray:
        """Convenience wrapper: recommended item IDs for a single user."""
        result = self.recommend(np.asarray([user], dtype=np.int64), k=k)
        return result.for_user(user)
