"""Online serving layer: cached scoring, top-K lists, and multi-model routing.

This package turns trained :class:`~repro.models.base.RecommenderModel`
instances into a request-serving system, one layer at a time:

* :class:`EmbeddingStore` owns one model's propagate-once / serve-many
  lifecycle (precompute after training, invalidate after parameter
  updates, cold-start from a ``repro.persist`` artifact);
* :class:`TopKRecommender` answers batched top-``k`` requests with one
  matrix product plus an ``np.argpartition`` partial sort — or, given a
  :class:`RetrievalIndex`, from an IVF shortlist rescored through the
  exact score path (sub-linear in catalog size; see
  ``repro.serving.retrieval``);
* :class:`ModelCatalog` manages a *directory* of artifacts as a model
  fleet — header-only scans, lazy cold-starts, an LRU residency budget,
  and hot-swap when an artifact file is republished; safe under
  concurrent traffic from any number of threads;
* :class:`ServingGateway` routes named, A/B-split and mixed-model traffic
  onto the catalog, grouping batches so each model scores once;
* :class:`CatalogWarmer` is the background thread that rescans the
  artifact directory and pre-warms/hot-swaps models *off* the request
  path, so requests never pay cold-start or reload latency;
* :class:`MetricsRegistry` collects per-model request counts, served
  rows, cold-start/reload/eviction counters and latency histograms
  (p50/p95/p99), exported as a plain dict via ``snapshot()`` — snapshots
  carry raw bucket counts, so ``MetricsRegistry.merge_snapshots`` can
  fold many processes' metrics into one fleet-wide view;
* :class:`WorkerPool` (``repro.serving.workers``) scales past one
  process: N spawn-context workers, each a full catalog+gateway stack
  over the same artifact directory, sharing mmap-loaded ``layout="dir"``
  artifact weights through the page cache, with crash respawn and merged
  fleet metrics;
* :mod:`repro.serving.forksafe` keeps all of the above safe under
  ``os.fork``: locks and daemon-thread state are re-initialized inside
  forked children via ``os.register_at_fork`` hooks;
* :mod:`repro.serving.resilience` keeps serving *bounded under failure*:
  per-request :class:`Deadline` propagation (gateway → catalog cold-start
  → worker pool), :class:`AdmissionController` load shedding,
  per-model :class:`CircuitBreaker` state machines with degraded
  fallbacks (last-good resident version, then cheap fallback models), all
  configured through one :class:`ResiliencePolicy` and all counted —
  every shed, deadline miss, breaker trip and fallback serve lands in the
  metrics, never silent;
* :mod:`repro.serving.faults` is the seeded, deterministic
  fault-injection harness the chaos tests drive all of the above with:
  a :class:`FaultPlan` of :class:`FaultRule` triggers (errors, stalls,
  worker SIGKILLs) armed at named hook points across persist, catalog,
  gateway and workers;
* :mod:`repro.serving.loadgen` is the scenario engine's traffic half:
  :class:`TrafficModel` expands a seeded :class:`TrafficConfig` (diurnal
  cycles, flash-sale bursts, hot-key item skew, per-request routing and
  deadline budgets) into a deterministic :class:`RequestStream`, and
  :class:`ReplayHarness` replays it open-loop against a gateway or
  worker pool, ledgering per-phase SLO percentiles through
  :class:`MetricsRegistry` (pairs with ``repro.data.scenario`` for the
  million-user populations).

Requests are validated at every public boundary: user IDs outside
``[0, num_users)`` raise a typed :class:`ServingError` naming the model
and the offending IDs, instead of wrapping around (negative numpy
indexing) or crashing with a raw ``IndexError`` deep in the score path.

Single-model wiring::

    store = EmbeddingStore(model)
    trainer = Trainer(model, optimizer, batches, callbacks=[store.callback()])
    trainer.fit(num_epochs)
    recommender = TopKRecommender(store, k=10, dataset=split.full)
    result = recommender.recommend(user_batch)

Multi-model wiring (see ``examples/serving_catalog.py``)::

    catalog = ModelCatalog("artifacts/", split.train, resident_budget=2)
    gateway = ServingGateway(catalog, default_model="gbgcn")
    with CatalogWarmer(catalog, interval_seconds=5.0):       # hot off-path
        gateway.top_k(user_batch, k=10)                      # named routing
        gateway.top_k_split(TrafficSplit({"gbgcn": 0.9, "mf": 0.1}), user_batch)
        print(catalog.metrics.snapshot()["totals"])
"""

from .catalog import (
    CatalogEntry,
    CatalogError,
    ModelCatalog,
    RetrievalPolicy,
    UnknownCatalogModelError,
)
from .errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    ServingUnavailableError,
    validate_user_ids,
)
from .faults import (
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    corrupt_artifact,
    inject,
)
from .gateway import GatewayResult, ServingGateway, TrafficSplit
from .loadgen import (
    BASELINE_PHASE,
    FlashBurst,
    ReplayHarness,
    ReplayReport,
    RequestStream,
    TrafficConfig,
    TrafficModel,
)
from .metrics import LatencyHistogram, MetricsRegistry, ModelMetrics
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilienceState,
)
from .retrieval import RetrievalIndex, RetrievalIndexError, build_index_for_model
from .store import EmbeddingStore, EmbeddingStoreCallback
from .topk import TopKRecommender, TopKResult
from .warmer import CatalogWarmer, CatalogWarmerError
from .workers import WorkerCrashError, WorkerPool, WorkerPoolError

__all__ = [
    "EmbeddingStore",
    "EmbeddingStoreCallback",
    "TopKRecommender",
    "TopKResult",
    "ModelCatalog",
    "CatalogEntry",
    "CatalogError",
    "UnknownCatalogModelError",
    "RetrievalPolicy",
    "RetrievalIndex",
    "RetrievalIndexError",
    "build_index_for_model",
    "ServingError",
    "ServingUnavailableError",
    "DeadlineExceededError",
    "OverloadedError",
    "CircuitOpenError",
    "validate_user_ids",
    "Deadline",
    "AdmissionController",
    "CircuitBreaker",
    "ResiliencePolicy",
    "ResilienceState",
    "FaultPlan",
    "FaultRule",
    "InjectedFaultError",
    "inject",
    "corrupt_artifact",
    "CatalogWarmer",
    "CatalogWarmerError",
    "ServingGateway",
    "GatewayResult",
    "TrafficSplit",
    "LatencyHistogram",
    "MetricsRegistry",
    "ModelMetrics",
    "WorkerPool",
    "WorkerPoolError",
    "WorkerCrashError",
    "BASELINE_PHASE",
    "FlashBurst",
    "TrafficConfig",
    "TrafficModel",
    "RequestStream",
    "ReplayHarness",
    "ReplayReport",
]
