"""Online serving layer: cached batch scoring and top-K recommendation.

This package turns a trained :class:`~repro.models.base.RecommenderModel`
into a request-serving component:

* :class:`EmbeddingStore` owns the propagate-once / serve-many lifecycle
  (precompute after training, invalidate after parameter updates);
* :class:`TopKRecommender` answers batched top-``k`` requests with one
  matrix product plus an ``np.argpartition`` partial sort.

Typical wiring::

    store = EmbeddingStore(model)
    trainer = Trainer(model, optimizer, batches, callbacks=[store.callback()])
    trainer.fit(num_epochs)
    recommender = TopKRecommender(store, k=10, dataset=split.full)
    result = recommender.recommend(user_batch)
"""

from .store import EmbeddingStore, EmbeddingStoreCallback
from .topk import TopKRecommender, TopKResult

__all__ = ["EmbeddingStore", "EmbeddingStoreCallback", "TopKRecommender", "TopKResult"]
