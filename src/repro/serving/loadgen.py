"""Scenario engine, part 2: deterministic traffic and open-loop replay.

``repro.data.scenario`` answers *who exists*; this module answers *when
they show up and what they ask for*.  A :class:`TrafficModel` expands a
:class:`TrafficConfig` into a :class:`RequestStream` — a fully
materialized, seeded, timestamped sequence of top-k requests with the
shapes the paper's group-buying setting implies:

* a **diurnal cycle** (sinusoidal rate modulation around a base rate);
* **flash-sale bursts** (:class:`FlashBurst`): a rate multiplier with a
  linear rise, a hold plateau and a linear decay, optionally tightening
  per-request **deadline budgets** and skewing item choice onto a small
  **hot-key** set for the burst's duration;
* **Zipf item skew** at all times (item 0 most popular, matching the
  rank-ordered popularity of :class:`~repro.data.scenario.ScenarioConfig`);
* per-request **model routing** drawn from configured weights.

Arrivals are an inhomogeneous Poisson process discretized into
``bin_seconds`` bins (per-bin Poisson counts, sorted uniform jitter
inside each bin), so timestamps are globally sorted and the realized
rate tracks the configured rate curve.  Every request carries a phase
label (``baseline`` or the burst's name) — the unit the SLO report
aggregates by.

:class:`ReplayHarness` then drives any target exposing the gateway
``top_k(users, k=..., model=..., deadline=...)`` contract — a
:class:`~repro.serving.gateway.ServingGateway` or a
:class:`~repro.serving.workers.WorkerPool` — in **open-loop** mode: a
small thread pool dispatches each request at its *scheduled* arrival
time (scaled by ``speed``) regardless of whether earlier requests have
finished, so an overloaded target accumulates lag and sheds instead of
silently back-pressuring the generator (the closed-loop failure mode
that makes load tests lie).  Outcomes are recorded per phase through the
existing :class:`~repro.serving.metrics.MetricsRegistry` machinery —
ok latencies in one registry, failure latencies in a second — and the
resulting :class:`ReplayReport` reconciles the ledger exactly
(``requests == ok + sheds + deadline_exceeded + errors``) and exports a
``results.scenario``-ready dict via :meth:`ReplayReport.as_bench_section`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from . import forksafe
from .errors import DeadlineExceededError, OverloadedError
from .metrics import MetricsRegistry

__all__ = [
    "FlashBurst",
    "TrafficConfig",
    "TrafficModel",
    "RequestStream",
    "ReplayHarness",
    "ReplayReport",
    "BASELINE_PHASE",
]

#: Phase label for requests outside every burst window.
BASELINE_PHASE = "baseline"


@dataclass(frozen=True)
class FlashBurst:
    """One flash-sale burst: a rate multiplier with linear rise and decay.

    The burst is active on ``[start_seconds, start_seconds + rise + hold
    + decay)``; its contribution to the rate curve ramps linearly from 0
    to ``multiplier - 1`` over ``rise_seconds``, holds, then ramps back
    down over ``decay_seconds``.  Requests arriving inside the window are
    labeled with the burst's ``name``, may get a tighter deadline
    (``deadline_seconds``), and with probability ``hot_item_fraction``
    pick their item uniformly from the ``hot_items`` most popular ranks —
    the hot-key skew that makes flash sales hard on caches.
    """

    start_seconds: float
    multiplier: float
    rise_seconds: float = 5.0
    hold_seconds: float = 10.0
    decay_seconds: float = 5.0
    name: str = "flash"
    #: Probability an in-burst request targets the hot-key set.
    hot_item_fraction: float = 0.8
    #: Size of the hot-key set (top-popularity item ranks).
    hot_items: int = 8
    #: Tighter per-request deadline inside the burst (None = inherit base).
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_seconds < 0.0:
            raise ValueError("burst start_seconds must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"burst multiplier must be >= 1, got {self.multiplier}")
        if min(self.rise_seconds, self.hold_seconds, self.decay_seconds) < 0.0:
            raise ValueError("burst rise/hold/decay must be >= 0")
        if self.duration_seconds <= 0.0:
            raise ValueError("burst must have a positive duration")
        if not 0.0 <= self.hot_item_fraction <= 1.0:
            raise ValueError("hot_item_fraction must be in [0, 1]")
        if self.hot_items < 1:
            raise ValueError("hot_items must be >= 1")
        if self.name == BASELINE_PHASE:
            raise ValueError(f"burst name {BASELINE_PHASE!r} is reserved")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0.0:
            raise ValueError("burst deadline_seconds must be positive")

    @property
    def duration_seconds(self) -> float:
        return self.rise_seconds + self.hold_seconds + self.decay_seconds

    @property
    def end_seconds(self) -> float:
        return self.start_seconds + self.duration_seconds

    def shape(self, t: np.ndarray) -> np.ndarray:
        """Burst envelope in [0, 1] at times ``t`` (1.0 on the plateau)."""
        t = np.asarray(t, dtype=np.float64) - self.start_seconds
        up = np.clip(t / self.rise_seconds, 0.0, 1.0) if self.rise_seconds > 0 else (
            (t >= 0.0).astype(np.float64)
        )
        down = (
            np.clip((self.duration_seconds - t) / self.decay_seconds, 0.0, 1.0)
            if self.decay_seconds > 0
            else (t < self.duration_seconds).astype(np.float64)
        )
        return np.where((t >= 0.0) & (t < self.duration_seconds), np.minimum(up, down), 0.0)


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of a deterministic request stream.

    ``model_weights`` routes each request to a named catalog model drawn
    by weight; empty means every request uses the target's default model.
    ``deadline_seconds=None`` means no per-request deadline outside
    bursts (bursts may still impose their own).
    """

    duration_seconds: float = 60.0
    base_rate_per_second: float = 50.0
    #: Sinusoidal rate modulation amplitude in [0, 1) (0 = flat).
    diurnal_amplitude: float = 0.3
    diurnal_period_seconds: float = 60.0
    bursts: Tuple[FlashBurst, ...] = ()
    model_weights: Tuple[Tuple[str, float], ...] = ()
    deadline_seconds: Optional[float] = None
    #: Zipf exponent of item choice (0 = uniform; matches scenario configs).
    item_exponent: float = 1.1
    #: Zipf exponent of user activity (0 = uniform traffic over users).
    user_exponent: float = 0.0
    #: Discretization of the inhomogeneous Poisson arrival process.
    bin_seconds: float = 0.25
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0.0:
            raise ValueError("duration_seconds must be positive")
        if self.base_rate_per_second <= 0.0:
            raise ValueError("base_rate_per_second must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_seconds <= 0.0:
            raise ValueError("diurnal_period_seconds must be positive")
        if self.item_exponent < 0.0 or self.user_exponent < 0.0:
            raise ValueError("Zipf exponents must be >= 0")
        if not 0.0 < self.bin_seconds <= self.duration_seconds:
            raise ValueError("bin_seconds must be in (0, duration_seconds]")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0.0:
            raise ValueError("deadline_seconds must be positive")
        names = [burst.name for burst in self.bursts]
        if len(set(names)) != len(names):
            raise ValueError(f"burst names must be unique, got {names}")
        for burst in self.bursts:
            if burst.end_seconds > self.duration_seconds:
                raise ValueError(
                    f"burst {burst.name!r} ends at {burst.end_seconds}s, "
                    f"beyond duration_seconds={self.duration_seconds}"
                )
        for name, weight in self.model_weights:
            if weight <= 0.0:
                raise ValueError(f"model weight for {name!r} must be positive")

    @property
    def phases(self) -> Tuple[str, ...]:
        """All phase labels: baseline first, then bursts in declared order."""
        return (BASELINE_PHASE,) + tuple(burst.name for burst in self.bursts)


class RequestStream:
    """A materialized, sorted, seeded sequence of timestamped requests.

    Flat parallel arrays (one row per request): ``timestamps`` (seconds
    from stream start, sorted ascending), ``users``, ``items``,
    ``model_index`` (index into :attr:`models`, ``-1`` = target default),
    ``deadline_seconds`` (NaN = no deadline) and ``phase_index`` (index
    into :attr:`phases`).  :meth:`digest` pins the byte-exact content for
    the golden-seed determinism tests.
    """

    def __init__(
        self,
        config: TrafficConfig,
        num_users: int,
        num_items: int,
        timestamps: np.ndarray,
        users: np.ndarray,
        items: np.ndarray,
        model_index: np.ndarray,
        deadline_seconds: np.ndarray,
        phase_index: np.ndarray,
        phase_active_seconds: np.ndarray,
    ) -> None:
        self.config = config
        self.num_users = num_users
        self.num_items = num_items
        self.timestamps = timestamps
        self.users = users
        self.items = items
        self.model_index = model_index
        self.deadline_seconds = deadline_seconds
        self.phase_index = phase_index
        #: Wall-clock seconds each phase is active (offered-rate denominator).
        self.phase_active_seconds = phase_active_seconds
        self.models: Tuple[str, ...] = tuple(name for name, _ in config.model_weights)
        self.phases: Tuple[str, ...] = config.phases

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def model_name(self, index: int) -> Optional[str]:
        """Catalog model of request ``index`` (None = target default)."""
        route = int(self.model_index[index])
        return self.models[route] if route >= 0 else None

    def deadline_of(self, index: int) -> Optional[float]:
        """Deadline budget of request ``index`` in seconds (None = unbounded)."""
        value = float(self.deadline_seconds[index])
        return None if np.isnan(value) else value

    def phase_counts(self) -> Dict[str, int]:
        """Requests per phase label."""
        counts = np.bincount(self.phase_index, minlength=len(self.phases))
        return {phase: int(counts[i]) for i, phase in enumerate(self.phases)}

    def offered_rate(self, phase: str) -> float:
        """Offered request rate (req/s) of one phase at speed 1.0."""
        index = self.phases.index(phase)
        active = float(self.phase_active_seconds[index])
        if active <= 0.0:
            return 0.0
        return float(np.sum(self.phase_index == index)) / active

    def digest(self) -> str:
        """SHA-256 over the stream's arrays and config identity."""
        sha = hashlib.sha256()
        sha.update(repr(self.config).encode())
        sha.update(f"{self.num_users}:{self.num_items}".encode())
        for array in (
            self.timestamps,
            self.users,
            self.items,
            self.model_index,
            self.deadline_seconds,
            self.phase_index,
        ):
            sha.update(np.ascontiguousarray(array).tobytes())
        return sha.hexdigest()

    def __repr__(self) -> str:
        return (
            f"RequestStream(requests={len(self):,}, duration={self.config.duration_seconds}s, "
            f"phases={list(self.phases)}, seed={self.config.seed})"
        )


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    weights = np.power(np.arange(1, n + 1, dtype=np.float64), -exponent)
    return weights / weights.sum()


class TrafficModel:
    """Expands a :class:`TrafficConfig` into a :class:`RequestStream`.

    Generation is deterministic for a given ``(config, num_users,
    num_items)``: a single ``SeedSequence``-derived generator drives the
    whole stream, so the same stream is reproduced in any process — the
    property the cross-``spawn`` golden-seed test pins.
    """

    def __init__(self, config: Optional[TrafficConfig] = None) -> None:
        self.config = config or TrafficConfig()

    # ------------------------------------------------------------------
    # Rate curve
    # ------------------------------------------------------------------
    def rate_at(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous request rate (req/s) at times ``t``."""
        cfg = self.config
        t = np.asarray(t, dtype=np.float64)
        rate = cfg.base_rate_per_second * (
            1.0
            + cfg.diurnal_amplitude
            * np.sin(2.0 * np.pi * t / cfg.diurnal_period_seconds)
        )
        for burst in cfg.bursts:
            rate = rate * (1.0 + (burst.multiplier - 1.0) * burst.shape(t))
        return rate

    def _phase_of(self, t: np.ndarray) -> np.ndarray:
        """Phase index per timestamp: first matching burst window, else 0."""
        cfg = self.config
        phase = np.zeros(t.size, dtype=np.int16)
        for position, burst in enumerate(cfg.bursts, start=1):
            inside = (t >= burst.start_seconds) & (t < burst.end_seconds)
            phase[inside & (phase == 0)] = position
        return phase

    def _phase_active_seconds(self) -> np.ndarray:
        """Wall-clock seconds each phase owns (earlier bursts win overlaps)."""
        cfg = self.config
        # Fine grid: cheap (duration/bin bins) and exact enough for rates.
        edges = np.arange(0.0, cfg.duration_seconds, cfg.bin_seconds)
        phase = self._phase_of(edges)
        widths = np.full(edges.size, cfg.bin_seconds)
        widths[-1] = cfg.duration_seconds - edges[-1]
        active = np.zeros(len(cfg.phases), dtype=np.float64)
        np.add.at(active, phase, widths)
        return active

    # ------------------------------------------------------------------
    # Stream materialization
    # ------------------------------------------------------------------
    def generate(self, num_users: int, num_items: int) -> RequestStream:
        """Materialize the full request stream for a population size."""
        if num_users < 1 or num_items < 1:
            raise ValueError("num_users and num_items must be >= 1")
        cfg = self.config
        rng = np.random.default_rng(np.random.SeedSequence(cfg.seed, spawn_key=(0,)))

        # Inhomogeneous Poisson arrivals: per-bin counts at the bin-center
        # rate, then sorted uniform jitter inside each bin — globally
        # sorted timestamps whose realized rate tracks the curve.
        starts = np.arange(0.0, cfg.duration_seconds, cfg.bin_seconds)
        widths = np.full(starts.size, cfg.bin_seconds)
        widths[-1] = cfg.duration_seconds - starts[-1]
        rates = self.rate_at(starts + widths / 2.0)
        counts = rng.poisson(rates * widths)
        total = int(counts.sum())
        if total == 0:
            raise ValueError(
                "traffic config produced an empty stream; raise "
                "base_rate_per_second or duration_seconds"
            )
        jitter = rng.random(total)
        bin_of = np.repeat(np.arange(starts.size), counts)
        offsets = np.zeros(starts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        for b in np.flatnonzero(counts > 1):
            jitter[offsets[b] : offsets[b + 1]].sort()
        timestamps = starts[bin_of] + jitter * widths[bin_of]

        phase_index = self._phase_of(timestamps)

        # Users: Zipf-by-id activity (id 0 most active) or uniform.
        if cfg.user_exponent > 0.0:
            users = rng.choice(
                num_users, size=total, p=_zipf_weights(num_users, cfg.user_exponent)
            ).astype(np.int64)
        else:
            users = rng.integers(0, num_users, size=total, dtype=np.int64)

        # Items: Zipf-by-rank popularity, with in-burst hot-key override.
        if cfg.item_exponent > 0.0:
            items = rng.choice(
                num_items, size=total, p=_zipf_weights(num_items, cfg.item_exponent)
            ).astype(np.int64)
        else:
            items = rng.integers(0, num_items, size=total, dtype=np.int64)
        hot_draw = rng.random(total)
        hot_pick = rng.integers(0, np.iinfo(np.int64).max, size=total)
        for position, burst in enumerate(cfg.bursts, start=1):
            inside = phase_index == position
            hot = inside & (hot_draw < burst.hot_item_fraction)
            items[hot] = hot_pick[hot] % min(burst.hot_items, num_items)

        # Model routing by weight (-1 = target default).
        model_index = np.full(total, -1, dtype=np.int16)
        if cfg.model_weights:
            weights = np.array([w for _, w in cfg.model_weights], dtype=np.float64)
            model_index = rng.choice(
                len(cfg.model_weights), size=total, p=weights / weights.sum()
            ).astype(np.int16)

        # Deadline budgets: base outside bursts, burst override inside.
        deadline = np.full(
            total,
            np.nan if cfg.deadline_seconds is None else cfg.deadline_seconds,
            dtype=np.float64,
        )
        for position, burst in enumerate(cfg.bursts, start=1):
            if burst.deadline_seconds is not None:
                deadline[phase_index == position] = burst.deadline_seconds

        return RequestStream(
            config=cfg,
            num_users=num_users,
            num_items=num_items,
            timestamps=timestamps,
            users=users,
            items=items,
            model_index=model_index,
            deadline_seconds=deadline,
            phase_index=phase_index,
            phase_active_seconds=self._phase_active_seconds(),
        )


# ----------------------------------------------------------------------
# Open-loop replay
# ----------------------------------------------------------------------
@dataclass
class PhaseOutcome:
    """One phase's reconciled replay ledger and SLO percentiles."""

    phase: str
    requests: int
    ok: int
    sheds: int
    deadline_exceeded: int
    errors: int
    ok_p50_ms: float
    ok_p95_ms: float
    ok_p99_ms: float
    offered_rps: float
    achieved_rps: float

    @property
    def reconciles(self) -> bool:
        return self.requests == self.ok + self.sheds + self.deadline_exceeded + self.errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "requests": self.requests,
            "ok": self.ok,
            "sheds": self.sheds,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "ok_p50_ms": self.ok_p50_ms,
            "ok_p95_ms": self.ok_p95_ms,
            "ok_p99_ms": self.ok_p99_ms,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
        }


@dataclass
class ReplayReport:
    """The outcome of one :meth:`ReplayHarness.run`.

    ``phases`` holds one :class:`PhaseOutcome` per stream phase;
    ``ok_snapshot`` / ``failure_snapshot`` are the raw
    :class:`~repro.serving.metrics.MetricsRegistry` snapshots (phase-keyed)
    for callers that want exact histogram merging across replays.
    """

    stream_digest: str
    speed: float
    concurrency: int
    wall_seconds: float
    phases: List[PhaseOutcome]
    max_dispatch_lag_seconds: float
    ok_snapshot: Dict[str, object]
    failure_snapshot: Dict[str, object]

    @property
    def total_requests(self) -> int:
        return sum(p.requests for p in self.phases)

    @property
    def ledger_reconciles(self) -> bool:
        """Every phase's ledger balances: requests == ok + sheds + deadline + errors."""
        return all(p.reconciles for p in self.phases)

    def phase(self, name: str) -> PhaseOutcome:
        for outcome in self.phases:
            if outcome.phase == name:
                return outcome
        raise KeyError(f"no phase {name!r}; have {[p.phase for p in self.phases]}")

    def as_bench_section(self) -> Dict[str, object]:
        """The ``results.scenario``-shaped dict the benchmark suite writes."""
        return {
            "stream_digest": self.stream_digest,
            "speed": self.speed,
            "concurrency": self.concurrency,
            "wall_seconds": self.wall_seconds,
            "total_requests": self.total_requests,
            "ledger_reconciles": self.ledger_reconciles,
            "max_dispatch_lag_seconds": self.max_dispatch_lag_seconds,
            "phases": [p.as_dict() for p in self.phases],
        }


class ReplayHarness:
    """Open-loop replay of a :class:`RequestStream` against a serving target.

    ``target`` is anything with the gateway ``top_k(users, k=..., model=...,
    deadline=...)`` contract.  ``speed`` compresses the stream's timeline
    (``speed=2`` replays a 60s stream in 30s); scheduled arrival times are
    honored regardless of target latency — the open-loop property.  Each of
    ``concurrency`` worker threads claims the next undispatched request,
    sleeps until its scheduled time, and issues it; when the target falls
    behind, requests dispatch late (tracked as dispatch lag) rather than
    being silently thinned.

    Outcomes are ledgered per phase: an ok response records its latency in
    ``metrics`` (phase-keyed), a typed
    :class:`~repro.serving.errors.OverloadedError` /
    :class:`~repro.serving.errors.DeadlineExceededError` is counted as a
    shed / deadline miss, anything else as an error; failure latencies go
    to a second registry so failed-fast requests never pollute the ok
    percentiles.  A harness instance is single-shot: :meth:`run` may be
    called once.
    """

    def __init__(
        self,
        target,
        stream: RequestStream,
        *,
        k: int = 10,
        speed: float = 1.0,
        concurrency: int = 4,
        metrics: Optional[MetricsRegistry] = None,
        failure_metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if speed <= 0.0:
            raise ValueError("speed must be positive")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.target = target
        self.stream = stream
        self.k = k
        self.speed = speed
        self.concurrency = concurrency
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.failure_metrics = (
            failure_metrics if failure_metrics is not None else MetricsRegistry()
        )
        self._next_index = 0
        self._index_lock = threading.Lock()
        self._max_lag = 0.0
        self._lag_lock = threading.Lock()
        self._ran = False
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        # A fork during a replay copies the claim/lag locks in whatever
        # state the claimer threads held them; replace both so a child can
        # run its own replay.  The claimer threads themselves are gone in
        # the child — the copied counters are a snapshot, nothing more.
        self._index_lock = threading.Lock()
        self._lag_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _claim(self) -> int:
        with self._index_lock:
            index = self._next_index
            self._next_index += 1
        return index

    def _note_lag(self, lag: float) -> None:
        if lag <= self._max_lag:
            return
        with self._lag_lock:
            if lag > self._max_lag:
                self._max_lag = lag

    def _issue(self, index: int) -> None:
        stream = self.stream
        phase = stream.phases[stream.phase_index[index]]
        users = np.array([stream.users[index]], dtype=np.int64)
        model = stream.model_name(index)
        deadline = stream.deadline_of(index)
        began = time.perf_counter()
        try:
            self.target.top_k(users, k=self.k, model=model, deadline=deadline)
        except OverloadedError:
            self.failure_metrics.record_request(phase, 1, time.perf_counter() - began)
            self.metrics.record_shed(phase)
        except DeadlineExceededError:
            self.failure_metrics.record_request(phase, 1, time.perf_counter() - began)
            self.metrics.record_deadline_exceeded(phase)
        except Exception:  # noqa: BLE001 — replay must survive any target fault
            self.failure_metrics.record_request(phase, 1, time.perf_counter() - began)
            self.metrics.record_error(phase)
        else:
            self.metrics.record_request(phase, 1, time.perf_counter() - began)

    def _worker(self, start: float) -> None:
        stream = self.stream
        total = len(stream)
        while True:
            index = self._claim()
            if index >= total:
                return
            scheduled = start + float(stream.timestamps[index]) / self.speed
            delay = scheduled - time.perf_counter()
            if delay > 0.0:
                time.sleep(delay)
            else:
                self._note_lag(-delay)
            self._issue(index)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> ReplayReport:
        """Replay the whole stream once and return the reconciled report."""
        if self._ran:
            raise RuntimeError("ReplayHarness is single-shot; build a new one")
        self._ran = True
        began = time.perf_counter()
        start = began + 0.05  # let every worker reach its loop before t=0
        threads = [
            threading.Thread(
                target=self._worker, args=(start,), name=f"replay-{i}", daemon=True
            )
            for i in range(self.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - began
        return self._report(wall)

    def _report(self, wall_seconds: float) -> ReplayReport:
        stream = self.stream
        snapshot = self.metrics.snapshot()
        models: Mapping[str, Mapping[str, object]] = snapshot["models"]  # type: ignore[assignment]
        stream_counts = stream.phase_counts()
        outcomes: List[PhaseOutcome] = []
        for position, phase in enumerate(stream.phases):
            recorded = models.get(phase, {})
            latency: Mapping[str, object] = recorded.get("request_latency", {})  # type: ignore[assignment]
            ok = int(recorded.get("requests", 0))
            active = float(stream.phase_active_seconds[position]) / self.speed
            outcomes.append(
                PhaseOutcome(
                    phase=phase,
                    requests=stream_counts[phase],
                    ok=ok,
                    sheds=int(recorded.get("sheds", 0)),
                    deadline_exceeded=int(recorded.get("deadline_exceeded", 0)),
                    errors=int(recorded.get("errors", 0)),
                    ok_p50_ms=float(latency.get("p50", 0.0)) * 1e3,
                    ok_p95_ms=float(latency.get("p95", 0.0)) * 1e3,
                    ok_p99_ms=float(latency.get("p99", 0.0)) * 1e3,
                    offered_rps=stream.offered_rate(phase) * self.speed,
                    achieved_rps=ok / active if active > 0.0 else 0.0,
                )
            )
        return ReplayReport(
            stream_digest=stream.digest(),
            speed=self.speed,
            concurrency=self.concurrency,
            wall_seconds=wall_seconds,
            phases=outcomes,
            max_dispatch_lag_seconds=self._max_lag,
            ok_snapshot=snapshot,
            failure_snapshot=self.failure_metrics.snapshot(),
        )
