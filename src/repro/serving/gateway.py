"""The :class:`ServingGateway`: one front door for a catalog of models.

The gateway is the request-routing layer on top of a
:class:`~repro.serving.catalog.ModelCatalog`.  It adds what a multi-model
deployment needs beyond "give me model X":

* **named routing** — every scoring / top-k request names a catalog model
  (or falls back to the gateway's default), and the underlying
  per-model :class:`~repro.serving.topk.TopKRecommender` is reused across
  requests instead of rebuilt;
* **weighted traffic splits** — :class:`TrafficSplit` deterministically
  buckets users into variants by hash (sticky: the same user always sees
  the same model for a given split seed), so A/B experiments need no
  session state;
* **mixed-model batching** — a batch whose rows target different models is
  grouped per model and each model computes *one* dense score block for
  all of its rows, instead of one block per request.

Example — route, split, and batch across two artifacts:

>>> import tempfile
>>> import numpy as np
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model
>>> from repro.serving import ModelCatalog, ServingGateway, TrafficSplit
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> directory = Path(tempfile.mkdtemp())
>>> for spec in ("MF", "ItemPop"):
...     _ = save_model(build_model(spec, split.train), directory / f"{spec.lower()}.npz")
>>> gateway = ServingGateway(ModelCatalog(directory, split.train), default_model="mf")
>>> users = np.arange(8)
>>> gateway.top_k(users, k=3).items.shape      # routed to the default model
(8, 3)
>>> ab = gateway.top_k_split(TrafficSplit({"mf": 0.5, "itempop": 0.5}, seed=1), users, k=3)
>>> sorted(set(ab.models))                     # both variants served this batch
['itempop', 'mf']
>>> mixed = gateway.top_k_mixed([("mf", 3), ("itempop", 3), ("mf", 5)], k=3)
>>> mixed.models
['mf', 'itempop', 'mf']
>>> bool(np.array_equal(mixed.users, np.asarray([3, 3, 5])))
True
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..persist.errors import ArtifactError
from . import forksafe
from .catalog import CatalogError, ModelCatalog
from .errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    validate_user_ids,
)
from .faults import InjectedFaultError, fault_point
from .metrics import MetricsRegistry
from .resilience import (
    ADMIT_ALLOW,
    ADMIT_PROBE,
    ADMIT_REJECT,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilienceState,
)
from .topk import TopKResult

__all__ = ["TrafficSplit", "GatewayResult", "ServingGateway"]

#: Exceptions that indicate the *model* (artifact, cold start, injected
#: fault, IO) failed — the ones a circuit breaker should count.  Client
#: faults (``ServingError``) and resilience outcomes (deadline, shed) are
#: deliberately absent: they say nothing about the model's health.
_MODEL_FAULTS = (CatalogError, ArtifactError, InjectedFaultError, OSError)


def _noop_release() -> None:
    """Stands in for an admission release when no policy is configured."""


def _hash_unit_interval(users: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic per-user points in ``[0, 1)`` (SplitMix64 finalizer).

    Stable across processes and numpy versions — unlike ``np.random`` —
    so a user's A/B assignment never changes between serving restarts.
    """
    with np.errstate(over="ignore"):
        x = users.astype(np.uint64) + np.uint64(seed) * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)


class TrafficSplit:
    """A weighted, sticky assignment of users to model variants.

    ``weights`` maps catalog model names to non-negative weights (any
    scale; they are normalized).  Assignment hashes the user id with the
    split's ``seed``: deterministic, stateless, and independent across
    seeds — two concurrent experiments with different seeds decorrelate.

    Zero-weight arms are legal (the idiomatic way to ramp a variant down
    to 0% without rewriting call sites) and receive **exactly** zero
    traffic: they are excluded from the bucket edges entirely, so not even
    the floating-point boundary at hash 1.0 can route a user to a
    zero-weight model.

    >>> split = TrafficSplit({"control": 0.8, "treatment": 0.2}, seed=7)
    >>> import numpy as np
    >>> assignments = split.assign(np.arange(1000))
    >>> bool(0.75 < np.mean(assignments == "control") < 0.85)
    True
    >>> bool((split.assign(np.arange(1000)) == assignments).all())  # sticky
    True
    >>> ramped_down = TrafficSplit({"control": 1.0, "treatment": 0.0}, seed=7)
    >>> bool((ramped_down.assign(np.arange(1000)) == "control").all())
    True
    """

    def __init__(self, weights: Mapping[str, float], seed: int = 0) -> None:
        if not weights:
            raise ValueError("a traffic split needs at least one model")
        total = float(sum(weights.values()))
        if total <= 0 or any(weight < 0 for weight in weights.values()):
            raise ValueError(f"weights must be non-negative with a positive sum, got {dict(weights)}")
        self.models: List[str] = list(weights)
        self.weights = {name: float(weight) / total for name, weight in weights.items()}
        self.seed = seed
        # Only positive-weight arms own an interval.  Keeping zero-weight
        # arms out of the edges is what makes "exactly zero traffic" hold:
        # with them in, the fp guard clamping bucket == len(edges) down to
        # the last arm could hand the hash ≈ 1.0 boundary to a 0% model.
        self._active: List[str] = [name for name in self.models if self.weights[name] > 0.0]
        self._edges = np.cumsum([self.weights[name] for name in self._active])

    def assign(self, users: np.ndarray) -> np.ndarray:
        """Model name per user (object array aligned with ``users``)."""
        users = np.asarray(users, dtype=np.int64)
        buckets = np.searchsorted(self._edges, _hash_unit_interval(users, self.seed), side="right")
        buckets = np.minimum(buckets, len(self._active) - 1)  # guard fp edge at 1.0
        return np.asarray(self._active, dtype=object)[buckets]

    def __repr__(self) -> str:
        shares = ", ".join(f"{name}={share:.0%}" for name, share in self.weights.items())
        return f"TrafficSplit({shares}, seed={self.seed})"


@dataclass(frozen=True)
class GatewayResult:
    """Per-request recommendation lists from a multi-model batch.

    Row ``i`` answers request ``i``: ``models[i]`` served ``users[i]`` and
    produced ``items[i]`` / ``scores[i]`` (padded with -1 / ``-inf`` like
    :class:`~repro.serving.topk.TopKResult`).
    """

    users: np.ndarray
    models: List[str]
    items: np.ndarray
    scores: np.ndarray

    def for_request(self, index: int) -> np.ndarray:
        """Recommended items of request ``index`` (padding stripped)."""
        items = self.items[index]
        return items[items >= 0]


class ServingGateway:
    """Routes scoring and top-k traffic onto a :class:`ModelCatalog`.

    ``default_model`` answers requests that name no model; per-model
    recommenders (and their LRU residency) live in the catalog, so every
    gateway sharing a catalog shares warm models.  Thread-safe: requests
    may arrive from any number of threads (the catalog serializes its own
    state; the gateway's tallies sit behind a dedicated lock).

    Observability: ``request_counts`` tallies served rows per model (the
    quick hook A/B analysis reads), and every request's row count and
    latency land in :attr:`metrics` — a
    :class:`~repro.serving.metrics.MetricsRegistry` shared with the
    catalog by default, so one ``metrics.snapshot()`` covers routing,
    latency percentiles, cold starts, reloads and evictions together.
    """

    def __init__(
        self,
        catalog: ModelCatalog,
        default_model: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        policy: Optional[ResiliencePolicy] = None,
        record_deadline_metrics: bool = True,
    ) -> None:
        if default_model is not None:
            catalog.entry(default_model)  # fail fast on typos
        self.catalog = catalog
        self.default_model = default_model
        self.metrics = metrics if metrics is not None else catalog.metrics
        self.request_counts: Dict[str, int] = {}
        self._counts_lock = threading.Lock()
        # ``record_deadline_metrics=False`` suppresses this gateway's own
        # ``deadline_exceeded`` counting (deadlines are still *enforced*).
        # The WorkerPool sets it for its worker-side gateways: the parent
        # owns the pool's deadline counter, so a request whose deadline
        # expires mid-serve inside a worker is counted exactly once
        # fleet-wide instead of once by the worker and once by the parent.
        self._record_deadline_metrics = record_deadline_metrics
        # ``resilience`` is None without a policy: the request path then
        # skips admission/breaker bookkeeping entirely (zero overhead),
        # though explicit per-request deadlines still work.
        self.resilience: Optional[ResilienceState] = (
            ResilienceState(policy) if policy is not None else None
        )
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Replace the lock a fork may have copied in a held state (child only)."""
        self._counts_lock = threading.Lock()

    def _resolve(self, model: Optional[str]) -> str:
        if model is not None:
            return model
        if self.default_model is None:
            raise ValueError(
                "request names no model and the gateway has no default_model; "
                f"catalog serves {self.catalog.names}"
            )
        return self.default_model

    def _count(self, model: str, rows: int, seconds: float) -> None:
        with self._counts_lock:
            self.request_counts[model] = self.request_counts.get(model, 0) + rows
        self.metrics.record_request(model, rows, seconds)

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def _request_deadline(self, deadline) -> Optional[Deadline]:
        """Normalize the per-request deadline, applying the policy default."""
        if deadline is not None:
            return Deadline.coerce(deadline)
        if self.resilience is not None and self.resilience.policy.deadline_seconds is not None:
            return Deadline.after(self.resilience.policy.deadline_seconds)
        return None

    def _count_deadline(self, name: str) -> None:
        """Record a deadline expiry — unless the pool parent owns the counter."""
        if self._record_deadline_metrics:
            self.metrics.record_deadline_exceeded(name)

    def _check_deadline(self, name: str, deadline: Optional[Deadline], where: str) -> None:
        """Typed, *counted* deadline enforcement at a request milestone."""
        if deadline is not None and deadline.expired:
            self._count_deadline(name)
            raise DeadlineExceededError(
                f"deadline exceeded {where} for model {name!r}"
            )

    def _admit(self, name: str) -> Callable[[], None]:
        """Admission-control gate; a shed is counted before it raises."""
        if self.resilience is None:
            return _noop_release
        try:
            return self.resilience.admission.acquire(name)
        except OverloadedError:
            self.metrics.record_shed(name)
            raise

    # A claimed half-open probe owes its breaker a verdict on *every* exit
    # path, or the breaker wedges half-open and the model stays offline
    # until the breaker's own leak backstop fires (resilience module).
    def _fail_probe(self, breaker: Optional[CircuitBreaker], probing: bool, name: str) -> None:
        """The probe hit its deadline: the model is still too slow — a failed probe."""
        if probing and breaker is not None and breaker.record_failure():
            self.metrics.record_breaker_open(name)

    def _release_probe(self, breaker: Optional[CircuitBreaker], probing: bool) -> None:
        """The probe ended for a model-unrelated reason: hand the slot back."""
        if probing and breaker is not None:
            breaker.release_probe()

    def _entry_version(self, name: str) -> int:
        try:
            return self.catalog.entry(name).version
        except Exception:  # noqa: BLE001 — version is diagnostic only
            return -1

    # ------------------------------------------------------------------
    # Single-model entry points
    # ------------------------------------------------------------------
    def top_k(
        self,
        users: np.ndarray,
        k: Optional[int] = None,
        model: Optional[str] = None,
        deadline=None,
    ) -> TopKResult:
        """Top-k lists for ``users`` from one catalog model (or the default).

        User IDs are validated at this boundary: anything outside
        ``[0, num_users)`` raises a typed
        :class:`~repro.serving.errors.ServingError` naming the model and
        the offending IDs, instead of wrapping around (negative IDs) or
        surfacing a raw ``IndexError`` from deep in the score path.

        ``deadline`` — seconds (a float) or a
        :class:`~repro.serving.resilience.Deadline` — bounds the whole
        request: gateway entry, any cold-start wait, and the scoring
        itself all check it, and an expired request fails with a typed
        :class:`~repro.serving.errors.DeadlineExceededError` rather than
        blocking.  When the gateway was built with a
        :class:`~repro.serving.resilience.ResiliencePolicy`, requests are
        additionally subject to admission control
        (:class:`~repro.serving.errors.OverloadedError`), per-model
        circuit breakers, and the degraded fallback chain (last-good
        resident version, then ``policy.fallback_models``); every shed,
        deadline miss, breaker trip and fallback serve is counted in
        :attr:`metrics`.
        """
        name = self._resolve(model)
        users = validate_user_ids(users, self.catalog.num_users, model=name)
        return self._serve_top_k(name, users, k, self._request_deadline(deadline))

    def scores(
        self,
        users: np.ndarray,
        item_ids: np.ndarray,
        model: Optional[str] = None,
        deadline=None,
    ) -> np.ndarray:
        """Raw ``(users, items)`` score block from one catalog model.

        Deadlines, admission control and the per-model breaker apply as
        in :meth:`top_k`, but raw score blocks have **no fallback
        chain** — a stale or substitute model's raw scores are not
        interchangeable the way top-k lists are, so an open breaker fails
        fast with :class:`~repro.serving.errors.CircuitOpenError`.
        """
        name = self._resolve(model)
        users = validate_user_ids(users, self.catalog.num_users, model=name)
        deadline = self._request_deadline(deadline)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if self.resilience is None and deadline is None:
            started = time.perf_counter()
            block = self.catalog.store(name).scores(users, item_ids)
            self._count(name, int(users.size), time.perf_counter() - started)
            return block
        release = self._admit(name)
        try:
            self._check_deadline(name, deadline, "at gateway entry")
            breaker = self.resilience.breaker(name) if self.resilience is not None else None
            verdict = breaker.admit() if breaker is not None else ADMIT_ALLOW
            probing = verdict == ADMIT_PROBE
            if verdict == ADMIT_REJECT:
                self.metrics.record_error(name)
                raise CircuitOpenError(
                    f"breaker for model {name!r} is {breaker.state} and raw score "
                    f"blocks have no fallback chain"
                )
            try:
                fault_point("gateway.score", name)
                store = self.catalog.store(name, deadline)
                started = time.perf_counter()
                block = store.scores(users, item_ids)
                seconds = time.perf_counter() - started
            except DeadlineExceededError:
                self._fail_probe(breaker, probing, name)
                self._count_deadline(name)
                raise
            except ServingError:
                self._release_probe(breaker, probing)
                raise
            except _MODEL_FAULTS:
                if breaker is not None and breaker.record_failure():
                    self.metrics.record_breaker_open(name)
                self.metrics.record_error(name)
                raise
            except BaseException:
                self._release_probe(breaker, probing)
                raise
            if breaker is not None:
                breaker.record_success()
            self._check_deadline(name, deadline, "after scoring")
            self._count(name, int(users.size), seconds)
            return block
        finally:
            release()

    def _serve_top_k(
        self, name: str, users: np.ndarray, k: Optional[int], deadline: Optional[Deadline]
    ) -> TopKResult:
        """One model's top-k serve under the full resilience flow.

        Order of defenses: admission (shed fast) → deadline at entry →
        breaker gate → primary serve (cold start honors the deadline) →
        on model fault or open breaker, the fallback chain.  A request
        that finishes *after* its deadline still fails typed — "result or
        typed error within the deadline" is the invariant the chaos suite
        asserts, with no silent late answers.
        """
        if self.resilience is None and deadline is None:
            started = time.perf_counter()
            result = self.catalog.recommender(name).recommend(users, k=k)
            self._count(name, int(users.size), time.perf_counter() - started)
            return result
        state = self.resilience
        release = self._admit(name)
        try:
            self._check_deadline(name, deadline, "at gateway entry")
            breaker = state.breaker(name) if state is not None else None
            verdict = breaker.admit() if breaker is not None else ADMIT_ALLOW
            probing = verdict == ADMIT_PROBE
            primary_error: Optional[BaseException] = None
            if verdict != ADMIT_REJECT:
                try:
                    fault_point("gateway.score", name)
                    recommender = self.catalog.recommender(name, deadline=deadline)
                    started = time.perf_counter()
                    result = recommender.recommend(users, k=k)
                    seconds = time.perf_counter() - started
                except DeadlineExceededError:
                    # A probe that cannot finish inside the deadline is the
                    # very slowness that opened the breaker: a failed probe.
                    self._fail_probe(breaker, probing, name)
                    self._count_deadline(name)
                    raise
                except ServingError:
                    self._release_probe(breaker, probing)
                    raise
                except _MODEL_FAULTS as error:
                    if breaker is None:
                        self.metrics.record_error(name)
                        raise
                    if breaker.record_failure():
                        self.metrics.record_breaker_open(name)
                    primary_error = error
                except BaseException:
                    self._release_probe(breaker, probing)
                    raise
                else:
                    if breaker is not None:
                        # The model is healthy even if the request is late:
                        # close the loop before any deadline enforcement.
                        breaker.record_success()
                        state.remember_last_good(name, self._entry_version(name), recommender)
                    self._check_deadline(name, deadline, "after scoring")
                    self._count(name, int(users.size), seconds)
                    return result
            assert state is not None  # breaker gate only exists with resilience on
            return self._serve_top_k_fallback(name, users, k, deadline, primary_error)
        finally:
            release()

    def _serve_top_k_fallback(
        self,
        name: str,
        users: np.ndarray,
        k: Optional[int],
        deadline: Optional[Deadline],
        primary_error: Optional[BaseException],
    ) -> TopKResult:
        """The degraded chain: last-good resident version, then cheap models.

        Every fallback serve is recorded against the *primary* model
        (``record_fallback``) — the model that needed rescuing — while
        rows and latency land on the model that actually served.  A
        fallback model's serve also books that model's *per-model*
        admission share (the total-budget slot is already held under the
        primary), so ``max_inflight_per_model`` meters the fallback's
        real concurrency during an outage; a fallback whose own budget is
        full is skipped, not shed.  When the chain is exhausted the
        request fails with a typed
        :class:`~repro.serving.errors.CircuitOpenError` naming everything
        that was tried, chained to the primary failure.
        """
        state = self.resilience
        assert state is not None
        tried: List[str] = []
        if state.policy.serve_stale_on_failure:
            stale = state.last_good(name)
            if stale is not None:
                version, recommender = stale
                label = f"last-good {name!r} v{version}"
                try:
                    started = time.perf_counter()
                    result = recommender.recommend(users, k=k)
                    seconds = time.perf_counter() - started
                except Exception as error:  # noqa: BLE001 — fall through the chain
                    tried.append(f"{label} (failed: {error})")
                else:
                    self.metrics.record_fallback(name)
                    self._check_deadline(name, deadline, f"after {label}")
                    self._count(name, int(users.size), seconds)
                    return result
        for fallback_name in state.policy.fallback_models:
            if fallback_name == name:
                continue
            label = f"fallback model {fallback_name!r}"
            breaker = state.breaker(fallback_name)
            verdict = breaker.admit()
            if verdict == ADMIT_REJECT:
                tried.append(f"{label} (breaker {breaker.state})")
                continue
            probing = verdict == ADMIT_PROBE
            try:
                release_fallback = state.admission.acquire(fallback_name, count_total=False)
            except OverloadedError:
                self._release_probe(breaker, probing)
                tried.append(f"{label} (per-model budget full)")
                continue
            try:
                fault_point("gateway.score", fallback_name)
                recommender = self.catalog.recommender(fallback_name, deadline=deadline)
                started = time.perf_counter()
                result = recommender.recommend(users, k=k)
                seconds = time.perf_counter() - started
            except DeadlineExceededError:
                self._fail_probe(breaker, probing, fallback_name)
                self._count_deadline(name)
                raise
            except ServingError:
                self._release_probe(breaker, probing)
                raise
            except _MODEL_FAULTS as error:
                if breaker.record_failure():
                    self.metrics.record_breaker_open(fallback_name)
                tried.append(f"{label} (failed: {error})")
            except BaseException:
                self._release_probe(breaker, probing)
                raise
            else:
                breaker.record_success()
                state.remember_last_good(
                    fallback_name, self._entry_version(fallback_name), recommender
                )
                self.metrics.record_fallback(name)
                self._check_deadline(name, deadline, f"after {label}")
                self._count(fallback_name, int(users.size), seconds)
                return result
            finally:
                release_fallback()
        self.metrics.record_error(name)
        detail = "; tried " + ", ".join(tried) if tried else "; no fallbacks configured"
        raise CircuitOpenError(
            f"model {name!r} unavailable (breaker {state.breaker(name).state}){detail}"
        ) from primary_error

    # ------------------------------------------------------------------
    # Multi-model entry points
    # ------------------------------------------------------------------
    def top_k_split(
        self, split: TrafficSplit, users: np.ndarray, k: Optional[int] = None, deadline=None
    ) -> GatewayResult:
        """A/B-serve ``users``: assign each to a variant, score grouped per model."""
        users = np.asarray(users, dtype=np.int64)
        assignments = split.assign(users)
        return self._grouped_top_k(
            users, [str(name) for name in assignments], k, self._request_deadline(deadline)
        )

    def top_k_mixed(
        self, requests: Sequence[Tuple[str, int]], k: Optional[int] = None, deadline=None
    ) -> GatewayResult:
        """Serve a batch of ``(model_name, user)`` requests, grouped per model.

        All rows targeting the same model are answered by a single
        ``recommend`` call (one dense score block per model, not per row);
        results come back aligned with ``requests``.
        """
        if not requests:
            raise ValueError("top_k_mixed needs at least one (model, user) request")
        models = [name for name, _ in requests]
        users = np.asarray([user for _, user in requests], dtype=np.int64)
        return self._grouped_top_k(users, models, k, self._request_deadline(deadline))

    def _grouped_top_k(
        self,
        users: np.ndarray,
        models: List[str],
        k: Optional[int],
        deadline: Optional[Deadline] = None,
    ) -> GatewayResult:
        if not models:
            width = self.catalog.default_k if k is None else k
            empty = np.zeros((0, width), dtype=np.int64)
            return GatewayResult(users=users, models=[], items=empty, scores=empty.astype(np.float64))
        # Validate every name before scoring anything: a bad row should fail
        # the batch up front, not after half the models already computed.
        for name in dict.fromkeys(models):
            self.catalog.entry(name)
        order = {}
        for index, name in enumerate(models):
            order.setdefault(name, []).append(index)
        # Same up-front rule for user IDs: reject the whole batch (naming
        # the model whose rows are bad) before any model scores.
        for name, indices in order.items():
            validate_user_ids(users[np.asarray(indices, dtype=np.int64)], self.catalog.num_users, model=name)
        items_out: Optional[np.ndarray] = None
        scores_out: Optional[np.ndarray] = None
        group_errors: List[Tuple[str, Exception]] = []
        for name, indices in order.items():
            rows = np.asarray(indices, dtype=np.int64)
            # Each model group runs the full resilience flow independently,
            # and every group is *attempted* even when an earlier group
            # failed: per-model counters always reflect exactly one attempt
            # per group, instead of skewing toward whichever groups happened
            # to be ordered first.  If any group failed, the batch raises
            # the first group's error after all groups ran — the served
            # groups' results are discarded, but their serve was real and
            # stays counted.  A deadline expiry is the exception: once the
            # request's budget is gone every remaining group would fail the
            # same way, so it aborts the batch immediately.
            try:
                result = self._serve_top_k(name, users[rows], k, deadline)
            except DeadlineExceededError:
                raise
            except Exception as error:  # noqa: BLE001 — typed per-group failure
                group_errors.append((name, error))
                continue
            if items_out is None:
                width = result.items.shape[1]
                items_out = np.full((len(models), width), -1, dtype=np.int64)
                scores_out = np.full((len(models), width), -np.inf, dtype=np.float64)
            items_out[rows] = result.items
            scores_out[rows] = result.scores
        if group_errors:
            raise group_errors[0][1]
        assert items_out is not None and scores_out is not None
        return GatewayResult(users=users, models=models, items=items_out, scores=scores_out)

    def __repr__(self) -> str:
        return (
            f"ServingGateway(default={self.default_model!r}, "
            f"models={self.catalog.names}, served={self.request_counts})"
        )
