"""The :class:`ServingGateway`: one front door for a catalog of models.

The gateway is the request-routing layer on top of a
:class:`~repro.serving.catalog.ModelCatalog`.  It adds what a multi-model
deployment needs beyond "give me model X":

* **named routing** — every scoring / top-k request names a catalog model
  (or falls back to the gateway's default), and the underlying
  per-model :class:`~repro.serving.topk.TopKRecommender` is reused across
  requests instead of rebuilt;
* **weighted traffic splits** — :class:`TrafficSplit` deterministically
  buckets users into variants by hash (sticky: the same user always sees
  the same model for a given split seed), so A/B experiments need no
  session state;
* **mixed-model batching** — a batch whose rows target different models is
  grouped per model and each model computes *one* dense score block for
  all of its rows, instead of one block per request.

Example — route, split, and batch across two artifacts:

>>> import tempfile
>>> import numpy as np
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model
>>> from repro.serving import ModelCatalog, ServingGateway, TrafficSplit
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> directory = Path(tempfile.mkdtemp())
>>> for spec in ("MF", "ItemPop"):
...     _ = save_model(build_model(spec, split.train), directory / f"{spec.lower()}.npz")
>>> gateway = ServingGateway(ModelCatalog(directory, split.train), default_model="mf")
>>> users = np.arange(8)
>>> gateway.top_k(users, k=3).items.shape      # routed to the default model
(8, 3)
>>> ab = gateway.top_k_split(TrafficSplit({"mf": 0.5, "itempop": 0.5}, seed=1), users, k=3)
>>> sorted(set(ab.models))                     # both variants served this batch
['itempop', 'mf']
>>> mixed = gateway.top_k_mixed([("mf", 3), ("itempop", 3), ("mf", 5)], k=3)
>>> mixed.models
['mf', 'itempop', 'mf']
>>> bool(np.array_equal(mixed.users, np.asarray([3, 3, 5])))
True
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import forksafe
from .catalog import ModelCatalog
from .errors import validate_user_ids
from .metrics import MetricsRegistry
from .topk import TopKResult

__all__ = ["TrafficSplit", "GatewayResult", "ServingGateway"]


def _hash_unit_interval(users: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic per-user points in ``[0, 1)`` (SplitMix64 finalizer).

    Stable across processes and numpy versions — unlike ``np.random`` —
    so a user's A/B assignment never changes between serving restarts.
    """
    with np.errstate(over="ignore"):
        x = users.astype(np.uint64) + np.uint64(seed) * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)


class TrafficSplit:
    """A weighted, sticky assignment of users to model variants.

    ``weights`` maps catalog model names to non-negative weights (any
    scale; they are normalized).  Assignment hashes the user id with the
    split's ``seed``: deterministic, stateless, and independent across
    seeds — two concurrent experiments with different seeds decorrelate.

    Zero-weight arms are legal (the idiomatic way to ramp a variant down
    to 0% without rewriting call sites) and receive **exactly** zero
    traffic: they are excluded from the bucket edges entirely, so not even
    the floating-point boundary at hash 1.0 can route a user to a
    zero-weight model.

    >>> split = TrafficSplit({"control": 0.8, "treatment": 0.2}, seed=7)
    >>> import numpy as np
    >>> assignments = split.assign(np.arange(1000))
    >>> bool(0.75 < np.mean(assignments == "control") < 0.85)
    True
    >>> bool((split.assign(np.arange(1000)) == assignments).all())  # sticky
    True
    >>> ramped_down = TrafficSplit({"control": 1.0, "treatment": 0.0}, seed=7)
    >>> bool((ramped_down.assign(np.arange(1000)) == "control").all())
    True
    """

    def __init__(self, weights: Mapping[str, float], seed: int = 0) -> None:
        if not weights:
            raise ValueError("a traffic split needs at least one model")
        total = float(sum(weights.values()))
        if total <= 0 or any(weight < 0 for weight in weights.values()):
            raise ValueError(f"weights must be non-negative with a positive sum, got {dict(weights)}")
        self.models: List[str] = list(weights)
        self.weights = {name: float(weight) / total for name, weight in weights.items()}
        self.seed = seed
        # Only positive-weight arms own an interval.  Keeping zero-weight
        # arms out of the edges is what makes "exactly zero traffic" hold:
        # with them in, the fp guard clamping bucket == len(edges) down to
        # the last arm could hand the hash ≈ 1.0 boundary to a 0% model.
        self._active: List[str] = [name for name in self.models if self.weights[name] > 0.0]
        self._edges = np.cumsum([self.weights[name] for name in self._active])

    def assign(self, users: np.ndarray) -> np.ndarray:
        """Model name per user (object array aligned with ``users``)."""
        users = np.asarray(users, dtype=np.int64)
        buckets = np.searchsorted(self._edges, _hash_unit_interval(users, self.seed), side="right")
        buckets = np.minimum(buckets, len(self._active) - 1)  # guard fp edge at 1.0
        return np.asarray(self._active, dtype=object)[buckets]

    def __repr__(self) -> str:
        shares = ", ".join(f"{name}={share:.0%}" for name, share in self.weights.items())
        return f"TrafficSplit({shares}, seed={self.seed})"


@dataclass(frozen=True)
class GatewayResult:
    """Per-request recommendation lists from a multi-model batch.

    Row ``i`` answers request ``i``: ``models[i]`` served ``users[i]`` and
    produced ``items[i]`` / ``scores[i]`` (padded with -1 / ``-inf`` like
    :class:`~repro.serving.topk.TopKResult`).
    """

    users: np.ndarray
    models: List[str]
    items: np.ndarray
    scores: np.ndarray

    def for_request(self, index: int) -> np.ndarray:
        """Recommended items of request ``index`` (padding stripped)."""
        items = self.items[index]
        return items[items >= 0]


class ServingGateway:
    """Routes scoring and top-k traffic onto a :class:`ModelCatalog`.

    ``default_model`` answers requests that name no model; per-model
    recommenders (and their LRU residency) live in the catalog, so every
    gateway sharing a catalog shares warm models.  Thread-safe: requests
    may arrive from any number of threads (the catalog serializes its own
    state; the gateway's tallies sit behind a dedicated lock).

    Observability: ``request_counts`` tallies served rows per model (the
    quick hook A/B analysis reads), and every request's row count and
    latency land in :attr:`metrics` — a
    :class:`~repro.serving.metrics.MetricsRegistry` shared with the
    catalog by default, so one ``metrics.snapshot()`` covers routing,
    latency percentiles, cold starts, reloads and evictions together.
    """

    def __init__(
        self,
        catalog: ModelCatalog,
        default_model: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if default_model is not None:
            catalog.entry(default_model)  # fail fast on typos
        self.catalog = catalog
        self.default_model = default_model
        self.metrics = metrics if metrics is not None else catalog.metrics
        self.request_counts: Dict[str, int] = {}
        self._counts_lock = threading.Lock()
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Replace the lock a fork may have copied in a held state (child only)."""
        self._counts_lock = threading.Lock()

    def _resolve(self, model: Optional[str]) -> str:
        if model is not None:
            return model
        if self.default_model is None:
            raise ValueError(
                "request names no model and the gateway has no default_model; "
                f"catalog serves {self.catalog.names}"
            )
        return self.default_model

    def _count(self, model: str, rows: int, seconds: float) -> None:
        with self._counts_lock:
            self.request_counts[model] = self.request_counts.get(model, 0) + rows
        self.metrics.record_request(model, rows, seconds)

    # ------------------------------------------------------------------
    # Single-model entry points
    # ------------------------------------------------------------------
    def top_k(self, users: np.ndarray, k: Optional[int] = None, model: Optional[str] = None) -> TopKResult:
        """Top-k lists for ``users`` from one catalog model (or the default).

        User IDs are validated at this boundary: anything outside
        ``[0, num_users)`` raises a typed
        :class:`~repro.serving.errors.ServingError` naming the model and
        the offending IDs, instead of wrapping around (negative IDs) or
        surfacing a raw ``IndexError`` from deep in the score path.
        """
        name = self._resolve(model)
        users = validate_user_ids(users, self.catalog.num_users, model=name)
        started = time.perf_counter()
        result = self.catalog.recommender(name).recommend(users, k=k)
        self._count(name, int(users.size), time.perf_counter() - started)
        return result

    def scores(self, users: np.ndarray, item_ids: np.ndarray, model: Optional[str] = None) -> np.ndarray:
        """Raw ``(users, items)`` score block from one catalog model."""
        name = self._resolve(model)
        users = validate_user_ids(users, self.catalog.num_users, model=name)
        started = time.perf_counter()
        block = self.catalog.store(name).scores(users, np.asarray(item_ids, dtype=np.int64))
        self._count(name, int(users.size), time.perf_counter() - started)
        return block

    # ------------------------------------------------------------------
    # Multi-model entry points
    # ------------------------------------------------------------------
    def top_k_split(
        self, split: TrafficSplit, users: np.ndarray, k: Optional[int] = None
    ) -> GatewayResult:
        """A/B-serve ``users``: assign each to a variant, score grouped per model."""
        users = np.asarray(users, dtype=np.int64)
        assignments = split.assign(users)
        return self._grouped_top_k(users, [str(name) for name in assignments], k)

    def top_k_mixed(
        self, requests: Sequence[Tuple[str, int]], k: Optional[int] = None
    ) -> GatewayResult:
        """Serve a batch of ``(model_name, user)`` requests, grouped per model.

        All rows targeting the same model are answered by a single
        ``recommend`` call (one dense score block per model, not per row);
        results come back aligned with ``requests``.
        """
        if not requests:
            raise ValueError("top_k_mixed needs at least one (model, user) request")
        models = [name for name, _ in requests]
        users = np.asarray([user for _, user in requests], dtype=np.int64)
        return self._grouped_top_k(users, models, k)

    def _grouped_top_k(self, users: np.ndarray, models: List[str], k: Optional[int]) -> GatewayResult:
        if not models:
            width = self.catalog.default_k if k is None else k
            empty = np.zeros((0, width), dtype=np.int64)
            return GatewayResult(users=users, models=[], items=empty, scores=empty.astype(np.float64))
        # Validate every name before scoring anything: a bad row should fail
        # the batch up front, not after half the models already computed.
        for name in dict.fromkeys(models):
            self.catalog.entry(name)
        order = {}
        for index, name in enumerate(models):
            order.setdefault(name, []).append(index)
        # Same up-front rule for user IDs: reject the whole batch (naming
        # the model whose rows are bad) before any model scores.
        for name, indices in order.items():
            validate_user_ids(users[np.asarray(indices, dtype=np.int64)], self.catalog.num_users, model=name)
        items_out: Optional[np.ndarray] = None
        scores_out: Optional[np.ndarray] = None
        for name, indices in order.items():
            rows = np.asarray(indices, dtype=np.int64)
            started = time.perf_counter()
            result = self.catalog.recommender(name).recommend(users[rows], k=k)
            if items_out is None:
                width = result.items.shape[1]
                items_out = np.full((len(models), width), -1, dtype=np.int64)
                scores_out = np.full((len(models), width), -np.inf, dtype=np.float64)
            items_out[rows] = result.items
            scores_out[rows] = result.scores
            self._count(name, int(rows.size), time.perf_counter() - started)
        assert items_out is not None and scores_out is not None
        return GatewayResult(users=users, models=models, items=items_out, scores=scores_out)

    def __repr__(self) -> str:
        return (
            f"ServingGateway(default={self.default_model!r}, "
            f"models={self.catalog.names}, served={self.request_counts})"
        )
