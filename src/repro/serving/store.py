"""The :class:`EmbeddingStore`: cached scoring state for online serving.

Graph recommenders amortize inference by propagating embeddings once and
then answering every request with cheap matrix products over the cached
result (``model.prepare_for_evaluation`` / ``model.score_batch``).  The
store makes that lifecycle explicit and safe:

* :meth:`EmbeddingStore.refresh` runs the model's propagation once and
  bumps a monotonically increasing ``version``;
* :meth:`EmbeddingStore.invalidate` drops the cached state after the
  model's parameters change (a training step), so the next request
  re-propagates instead of serving stale scores;
* :meth:`EmbeddingStore.callback` returns a training callback that wires
  invalidation into the :class:`~repro.training.trainer.Trainer` loop and
  refreshes once when training ends;
* :meth:`EmbeddingStore.from_artifact` cold-starts the whole lifecycle
  from a ``repro.persist`` model artifact on disk — train once, serve
  anywhere, no retraining in the serving process.

Score requests (:meth:`scores` / :meth:`score_all_items`) transparently
refresh a stale store, so callers never observe pre-training embeddings.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..models.base import RecommenderModel
from ..training.callbacks import Callback

__all__ = ["EmbeddingStore", "EmbeddingStoreCallback"]


class EmbeddingStore:
    """Owns the propagate-once / serve-many lifecycle of one model.

    Usage — refresh once, then answer any number of score requests from
    the cached propagated embeddings:

    >>> import numpy as np
    >>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
    >>> from repro.models import build_model
    >>> from repro.serving import EmbeddingStore
    >>> split = leave_one_out_split(generate_dataset(
    ...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
    >>> store = EmbeddingStore(build_model("GBGCN", split.train))
    >>> store.refresh()
    1
    >>> store.score_all_items(np.asarray([0, 1])).shape
    (2, 20)
    >>> store.invalidate()          # after a parameter update
    >>> store.is_fresh              # next request re-propagates transparently
    False
    """

    def __init__(self, model: RecommenderModel, auto_refresh: bool = True) -> None:
        self.model = model
        self.auto_refresh = auto_refresh
        #: Number of completed refreshes; bumps on every :meth:`refresh`.
        self.version = 0
        self._fresh = False

    @classmethod
    def from_artifact(cls, path, train_dataset, auto_refresh: bool = True) -> "EmbeddingStore":
        """Cold-start a serving store from a model artifact on disk.

        Rebuilds the model with ``repro.persist.load_model`` (verifying the
        dataset-schema fingerprint), propagates its embeddings once, and
        returns a fresh store — top-k serving without any in-process
        training.
        """
        from ..persist import load_model

        store = cls(load_model(path, train_dataset), auto_refresh=auto_refresh)
        store.refresh()
        return store

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_fresh(self) -> bool:
        """Whether cached embeddings reflect the current parameters."""
        return self._fresh

    @contextlib.contextmanager
    def _eval_mode(self):
        """Score in eval mode, restoring the caller's train/eval state after."""
        was_training = self.model.training
        self.model.eval()
        try:
            yield
        finally:
            if was_training:
                self.model.train()

    def refresh(self) -> int:
        """Re-propagate the model's embeddings; returns the new version."""
        with self._eval_mode():
            self.model.prepare_for_evaluation()
        self._fresh = True
        self.version += 1
        return self.version

    def invalidate(self) -> None:
        """Drop cached embeddings (call after every parameter update)."""
        self.model.invalidate_cache()
        self._fresh = False

    def _ensure_fresh(self) -> None:
        if self._fresh:
            return
        if not self.auto_refresh:
            raise RuntimeError(
                "EmbeddingStore is stale and auto_refresh is disabled; call refresh()"
            )
        self.refresh()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scores(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        """``(len(users), len(item_ids))`` score block from cached state.

        May be a read-only view for some models (e.g. ItemPop broadcasts one
        popularity row across users) — copy before mutating in place.
        """
        self._ensure_fresh()
        with self._eval_mode():
            return np.asarray(self.model.score_batch(users, item_ids), dtype=np.float64)

    def score_all_items(self, users: np.ndarray) -> np.ndarray:
        """Full-catalog score block for a batch of users (may be a read-only
        view, see :meth:`scores`)."""
        self._ensure_fresh()
        with self._eval_mode():
            return np.asarray(self.model.score_all_items(users), dtype=np.float64)

    def scoring_factors(self):
        """The model's ``(user_factors, item_factors)`` over *fresh* state.

        ``None`` when the model's score is not an inner product (see
        :meth:`~repro.models.base.RecommenderModel.scoring_factors`).
        Refreshes a stale store first, so the factors always reflect the
        current parameters — the retrieval layer keys its caches on
        :attr:`version`.
        """
        self._ensure_fresh()
        with self._eval_mode():
            return self.model.scoring_factors()

    # ------------------------------------------------------------------
    # Training integration
    # ------------------------------------------------------------------
    def callback(self, refresh_on_train_end: bool = True) -> "EmbeddingStoreCallback":
        """A trainer callback keeping this store consistent during training."""
        return EmbeddingStoreCallback(self, refresh_on_train_end=refresh_on_train_end)

    def __repr__(self) -> str:
        state = "fresh" if self._fresh else "stale"
        return f"EmbeddingStore(model={self.model.name}, version={self.version}, {state})"


class EmbeddingStoreCallback(Callback):
    """Invalidates a store after every epoch; refreshes when training ends."""

    def __init__(self, store: EmbeddingStore, refresh_on_train_end: bool = True) -> None:
        self.store = store
        self.refresh_on_train_end = refresh_on_train_end

    def on_epoch_end(self, trainer, record) -> None:
        self.store.invalidate()

    def on_train_end(self, trainer, history) -> None:
        # ``Trainer.restore_best`` may have swapped parameters after the last
        # epoch, so the cache must be rebuilt regardless of epoch hooks.
        self.store.invalidate()
        if self.refresh_on_train_end:
            self.store.refresh()
