"""Seeded, deterministic fault injection for the serving stack.

A resilience layer that has never watched a fault fire is a hypothesis,
not a feature.  This module is the standing failure-mode rig: named
**hook points** threaded through the serving stack (`persist` header
reads, catalog cold starts, gateway scoring, worker request handling)
call :func:`fault_point`, and an installed :class:`FaultPlan` decides —
deterministically — whether that call raises, stalls, or kills the
process.  With no plan installed every hook is a single global read,
so production code pays nothing.

Hook map (site → where it fires → faults that make sense there):

========================  =======================================  ==================
site                      fires in                                 typical faults
========================  =======================================  ==================
``persist.read_header``   :func:`repro.persist.read_artifact_header`  transient ``OSError``
``catalog.cold_start``    :meth:`ModelCatalog._cold_start`, before    artifact read error,
                          the artifact bytes are loaded               slow-IO stall
``gateway.score``         :meth:`ServingGateway.top_k` and the        stall (deadline
                          grouped entry points, before scoring        pressure), error
``worker.request``        ``_worker_main``, before a request is       stall, SIGKILL at a
                          handled inside a pool worker                chosen request
========================  =======================================  ==================

Rules are matched by per-site **call index** (every ``fault_point`` call
increments a site counter), optionally windowed (``start``/``count``),
filtered by a ``match`` substring of the hook detail (e.g. a model
name), or fired with a seeded probability — all reproducible: the same
plan over the same call sequence fires the same faults.  Plans are
picklable, so a :class:`~repro.serving.workers.WorkerPool` can ship one
to its spawn workers.

Usage — inject one transient error into the next header read:

>>> from repro.serving.faults import FaultPlan, FaultRule, fault_point, inject
>>> plan = FaultPlan([FaultRule("persist.read_header", kind="error", error_type=OSError,
...                             error_message="injected EIO", count=1)])
>>> with inject(plan):
...     try:
...         fault_point("persist.read_header", "mf.npz")
...     except OSError as error:
...         print(error)
...     fault_point("persist.read_header", "mf.npz")   # second call: window passed
injected EIO [site=persist.read_header, call=0]
>>> plan.triggered
{('persist.read_header', 'error'): 1}
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from . import forksafe

__all__ = [
    "InjectedFaultError",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "install_plan",
    "clear_plan",
    "active_plan",
    "inject",
    "corrupt_artifact",
]


class InjectedFaultError(RuntimeError):
    """The default exception an ``error``-kind fault rule raises."""


#: Fault kinds a rule may carry.
KIND_ERROR = "error"
KIND_STALL = "stall"
KIND_KILL = "kill"
_KINDS = (KIND_ERROR, KIND_STALL, KIND_KILL)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: *where*, *what*, and *when*.

    ``site`` names the hook point (see the module hook map).  ``kind`` is
    ``"error"`` (raise ``error_type(error_message)``), ``"stall"``
    (``time.sleep(seconds)`` — then continue normally) or ``"kill"``
    (``SIGKILL`` the current process — worker-crash chaos).  The window
    ``[start, start + count)`` selects which per-site call indices fire
    (0-based; ``count=None`` means "from ``start`` forever").  ``match``
    restricts the rule to hook calls whose detail string contains it
    (e.g. a model or file name).  ``probability`` < 1.0 fires the rule on
    a seeded coin flip *within* the window — deterministic for a given
    plan seed and call sequence.
    """

    site: str
    kind: str = KIND_ERROR
    start: int = 0
    count: Optional[int] = 1
    match: Optional[str] = None
    probability: float = 1.0
    error_type: Type[BaseException] = InjectedFaultError
    error_message: str = "injected fault"
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.start < 0 or (self.count is not None and self.count < 0):
            raise ValueError(f"start/count must be non-negative, got {self.start}/{self.count}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.kind == KIND_STALL and self.seconds < 0.0:
            raise ValueError(f"stall seconds must be >= 0, got {self.seconds}")

    def in_window(self, index: int) -> bool:
        if index < self.start:
            return False
        return self.count is None or index < self.start + self.count


class FaultPlan:
    """A seeded schedule of :class:`FaultRule` firings over hook points.

    Thread-safe (one internal lock serializes counter updates) and
    picklable — the lock and per-rule RNG streams are rebuilt on
    unpickle, so a plan shipped to a spawn worker replays the same
    deterministic schedule from call index 0 in that process.

    Observability: :attr:`calls` counts hook invocations per site,
    :attr:`triggered` counts fired faults per ``(site, kind)`` — the
    numbers a chaos test reconciles against its request tally.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self._init_runtime()

    def _init_runtime(self) -> None:
        self._lock = threading.Lock()
        self.calls: Dict[str, int] = {}
        self.triggered: Dict[Tuple[str, str], int] = {}
        # One independent seeded stream per rule keeps probability draws
        # reproducible regardless of how other rules interleave.
        self._rngs = [random.Random(hash((self.seed, i)) & 0xFFFFFFFF) for i in range(len(self.rules))]
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        # A fork mid-``fire`` would hand the child a held _lock; the copied
        # counters and rule streams stay — the child continues the parent's
        # deterministic schedule from wherever the fork landed.
        self._lock = threading.Lock()

    def __getstate__(self):
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state):
        self.rules = state["rules"]
        self.seed = state["seed"]
        self._init_runtime()

    def fire(self, site: str, detail: str = "") -> None:
        """Run every rule matching this hook call (called by :func:`fault_point`).

        At most one fault actually *executes* per call: the first matching
        rule wins (a kill or raise preempts the rest anyway; a stall then
        continues to later rules would make schedules confusing).
        """
        with self._lock:
            index = self.calls.get(site, 0)
            self.calls[site] = index + 1
            chosen: Optional[FaultRule] = None
            for rule_index, rule in enumerate(self.rules):
                if rule.site != site or not rule.in_window(index):
                    continue
                if rule.match is not None and rule.match not in detail:
                    continue
                if rule.probability < 1.0 and self._rngs[rule_index].random() >= rule.probability:
                    continue
                chosen = rule
                break
            if chosen is None:
                return
            key = (site, chosen.kind)
            self.triggered[key] = self.triggered.get(key, 0) + 1
        # Execute outside the lock: a stall must never serialize other
        # sites' hook calls (that would *create* a deadlock in the rig
        # built to prove there is none).
        if chosen.kind == KIND_STALL:
            time.sleep(chosen.seconds)
            return
        if chosen.kind == KIND_KILL:
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover — the signal does not return
        raise chosen.error_type(f"{chosen.error_message} [site={site}, call={index}]")

    def total_triggered(self, site: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Fired-fault count, optionally filtered by site and/or kind."""
        with self._lock:
            return sum(
                n
                for (s, k), n in self.triggered.items()
                if (site is None or s == site) and (kind is None or k == kind)
            )

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.rules)} rule(s), seed={self.seed}, triggered={dict(self.triggered)})"


#: The process-wide active plan (None = every hook is a no-op).
_ACTIVE: Optional[FaultPlan] = None


def fault_point(site: str, detail: str = "") -> None:
    """Hook call placed at an injectable point of the serving stack.

    With no plan installed this is one global read — cheap enough to
    leave in production paths permanently.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site, detail)


def install_plan(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active plan (replacing any other)."""
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    """Deactivate fault injection (hooks become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block (test idiom)."""
    global _ACTIVE
    previous = _ACTIVE
    install_plan(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def corrupt_artifact(path: Union[str, Path], seed: int = 0, num_bytes: int = 8) -> List[int]:
    """Deterministically flip header bytes of an artifact on disk.

    The chaos-suite primitive for "a publish went bad mid-swap": for an
    ``npz`` artifact, bytes near the start of the zip stream are XOR-flipped
    (corrupting the local file header, so the next read fails as a bad
    archive); for a ``dir``-layout artifact the ``header.json`` is
    corrupted.  Returns the flipped offsets so a test can assert or undo.
    Seeded: the same ``(path, seed)`` flips the same bytes.
    """
    path = Path(path)
    target = path / "header.json" if path.is_dir() else path
    data = bytearray(target.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {target}")
    rng = random.Random(seed)
    # Flip within the first KiB: that is where the zip local header / the
    # JSON structure lives, so the corruption is guaranteed to be seen by a
    # header-only read, not hidden in an array tail nobody parses.
    window = min(len(data), 1024)
    offsets = sorted(rng.sample(range(window), min(num_bytes, window)))
    for offset in offsets:
        data[offset] ^= 0xFF
    target.write_bytes(bytes(data))
    return offsets
