"""The :class:`CatalogWarmer`: keep a catalog hot off the request path.

A lazily-loading :class:`~repro.serving.catalog.ModelCatalog` makes the
*first* request after a cold start or a hot-swap pay the full model load
(~60 ms for GBGCN at the repo's 2000-user scale) — a tail-latency cliff
under live traffic.  The warmer moves that work onto a background thread:

* **periodic rescan** — every cycle re-indexes the artifact directory
  (:meth:`ModelCatalog.scan`), picking up newly published, replaced
  (including same-size/same-mtime replacements, via the content token) and
  deleted artifacts;
* **pre-warm** — every cycle loads the configured models (all servable
  models by default) so requests never cold-start in-line;
* **off-request hot-swap** — a replaced artifact is reloaded by the cycle,
  so the next request is a plain residency hit with zero reload latency.

When the catalog has a :class:`~repro.serving.catalog.RetrievalPolicy`,
each pre-warm/hot-swap also (re)builds or re-reads the model's ANN
retrieval index inside the cold-start — on this thread, never on the
request path, so requests never pay k-means clustering latency either.

The thread is daemonic and stoppable; the context-manager form stops it on
exit.  Exceptions raised by a cycle are never swallowed: synchronous
:meth:`run_once` raises them directly, the background loop records them in
:attr:`errors` / :attr:`last_error` and keeps cycling (one bad publish must
not kill warming for the rest of the fleet), and :meth:`stop` re-raises the
last recorded error unless told not to.

Usage — run one warming cycle synchronously (deterministic; the background
form is ``with CatalogWarmer(catalog, interval_seconds=5.0):``):

>>> import tempfile
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model
>>> from repro.serving import CatalogWarmer, ModelCatalog
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> directory = Path(tempfile.mkdtemp())
>>> _ = save_model(build_model("MF", split.train), directory / "mf.npz")
>>> catalog = ModelCatalog(directory, split.train)
>>> warmer = CatalogWarmer(catalog)
>>> sorted(warmer.run_once())      # scanned, and every model pre-warmed
['mf']
>>> catalog.resident_names
['mf']
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from . import forksafe
from .catalog import CatalogError, ModelCatalog
from .resilience import ResilienceState

__all__ = ["CatalogWarmerError", "CatalogWarmer"]


class CatalogWarmerError(CatalogError):
    """A warming cycle failed; the original exception is chained as ``__cause__``."""


class CatalogWarmer:
    """Background rescan + pre-warm thread for a :class:`ModelCatalog`.

    Parameters
    ----------
    catalog:
        The catalog to keep warm.  All catalog access goes through the
        catalog's own locks, so the warmer can run concurrently with
        serving threads.
    interval_seconds:
        Sleep between cycles of the background loop (the first cycle runs
        immediately on :meth:`start`).
    names:
        The models to pre-warm each cycle; ``None`` warms every servable
        model.  With a ``resident_budget`` tighter than the fleet, pass the
        subset you want pinned — warming more models than the budget holds
        just churns the LRU.
    rescan:
        Whether each cycle re-indexes the artifact directory first
        (default).  ``False`` only re-warms/refreshes the already-known
        entries.
    max_errors:
        How many cycle errors to retain in :attr:`errors` (oldest dropped).
    resilience:
        A gateway's :class:`~repro.serving.resilience.ResilienceState`.
        When given, every cycle also drives the half-open probes of any
        open circuit breakers (``probe_open_circuits``): the warmer — not
        a live request — pays the recovery cold-start, and a recovered
        model's breaker closes before traffic touches it again.  Probe
        outcomes land in :attr:`last_probe_results`; a failed probe is the
        expected outcome while the fault persists and never fails the
        cycle.
    """

    def __init__(
        self,
        catalog: ModelCatalog,
        interval_seconds: float = 5.0,
        *,
        names: Optional[Sequence[str]] = None,
        rescan: bool = True,
        max_errors: int = 32,
        resilience: Optional[ResilienceState] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive, got {interval_seconds}")
        if max_errors < 1:
            raise ValueError(f"max_errors must be at least 1, got {max_errors}")
        self.catalog = catalog
        self.interval_seconds = float(interval_seconds)
        self.names = None if names is None else list(names)
        self.rescan = rescan
        self.max_errors = max_errors
        self.resilience = resilience
        #: name → outcome of the most recent cycle's half-open probes.
        self.last_probe_results: Dict[str, bool] = {}
        #: Completed background cycles (successful or failed).
        self.cycles = 0
        #: ``(cycle_number, exception)`` pairs from failed background cycles.
        self.errors: List[Tuple[int, BaseException]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._state_lock = threading.Lock()
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self) -> None:
        """Reset thread state a fork silently invalidated (child only).

        The daemon thread does not exist in the forked child, but the
        inherited ``_thread`` handle claims it does — ``start()`` would
        refuse to run and ``stop()`` would join a ghost.  Locks are
        replaced for the same reason as everywhere else; the child decides
        for itself whether to ``start()`` a fresh warmer.
        """
        self._thread = None
        self._stop_event = threading.Event()
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # One cycle (synchronous — raises on failure)
    # ------------------------------------------------------------------
    def run_once(self) -> Dict[str, float]:
        """Rescan (optionally) and pre-warm now, in the calling thread.

        Returns name → cold-start seconds for every warmed model (0.0 for
        models that were already resident and fresh).  Any failure raises;
        the synchronous form never hides errors.  A per-model warm failure
        (unservable replacement, vanished artifact) does *not* stop the
        cycle: the remaining models are still warmed first, then one
        :class:`CatalogWarmerError` naming every failed model is raised —
        one bad publish must not starve the rest of the fleet of its
        pre-warm/hot-swap.  An unreadable directory fails the whole cycle
        up front.
        """
        if self.rescan:
            self.catalog.scan()
        targets = self.catalog.names if self.names is None else list(self.names)
        warmed: Dict[str, float] = {}
        failures: Dict[str, BaseException] = {}
        for name in targets:
            if name not in self.catalog:
                continue  # configured name not published (yet); not an error
            try:
                warmed[name] = self.catalog.warm(name)
            except Exception as error:  # noqa: BLE001 — re-raised below
                failures[name] = error
        if self.resilience is not None:
            # Drive half-open probes here — on the warmer's thread — so a
            # recovering model's first cold start never rides a request.
            # A failed probe is the expected steady state while the fault
            # persists; it must not fail the cycle.
            self.last_probe_results = self.resilience.probe_open_circuits(self.catalog)
        if failures:
            first = next(iter(failures.values()))
            raise CatalogWarmerError(
                f"warming failed for {sorted(failures)} "
                f"(the other {len(warmed)} model(s) were still warmed)"
            ) from first
        return warmed

    # ------------------------------------------------------------------
    # Background lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def last_error(self) -> Optional[BaseException]:
        with self._state_lock:
            return self.errors[-1][1] if self.errors else None

    def start(self) -> "CatalogWarmer":
        """Start the background thread (first cycle runs immediately).

        A stopped warmer may be started again (``stop`` drains the errors
        it reports, so a restart begins with a clean slate).
        """
        if self._thread is not None:
            raise RuntimeError("CatalogWarmer is already running; stop() it before restarting")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"catalog-warmer-{id(self.catalog):x}", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while True:
            try:
                self.run_once()
            except Exception as error:  # noqa: BLE001 — recorded, surfaced on stop()
                with self._state_lock:
                    self.errors.append((self.cycles, error))
                    del self.errors[: -self.max_errors]
            with self._state_lock:
                self.cycles += 1
            if self._stop_event.wait(self.interval_seconds):
                return

    def stop(self, timeout: Optional[float] = 10.0, raise_errors: bool = True) -> None:
        """Stop the background thread and join it.

        With ``raise_errors`` (default) the last cycle error — if any
        cycle failed since the errors were last reported — is re-raised as
        a :class:`CatalogWarmerError` chained to the original exception, so
        background failures cannot pass silently.  Reported errors are
        drained, so a later :meth:`start`/:meth:`stop` round only surfaces
        its *own* failures (with ``raise_errors=False`` they stay in
        :attr:`errors` for inspection instead).
        """
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise CatalogWarmerError(
                    f"warmer thread did not stop within {timeout} s (a cycle is stuck "
                    f"in catalog IO?)"
                )
            self._thread = None
        if raise_errors and self.errors:
            with self._state_lock:
                reported, self.errors = self.errors, []
            cycle, error = reported[-1]
            raise CatalogWarmerError(
                f"{len(reported)} warming cycle(s) failed (last: cycle {cycle}); "
                f"see the chained exception"
            ) from error

    def wait_for_cycles(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` background cycles completed (True) or timeout."""
        end = time.monotonic() + timeout
        while True:
            with self._state_lock:
                if self.cycles >= count:
                    return True
            if time.monotonic() >= end:
                return False
            time.sleep(0.005)

    def __enter__(self) -> "CatalogWarmer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't mask an in-flight exception from the with-body with a
        # (possibly consequential) warmer error.
        self.stop(raise_errors=exc_type is None)

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        names = "all" if self.names is None else self.names
        return (
            f"CatalogWarmer({state}, interval={self.interval_seconds}s, names={names}, "
            f"cycles={self.cycles}, errors={len(self.errors)})"
        )
