"""Common interface for every recommender in the reproduction.

The trainer and the evaluator only rely on this interface:

* ``data_mode``     — which batch format the model consumes (pure user-item
  interactions, group-buying behaviors, or fixed groups);
* ``batch_loss``    — differentiable loss for one mini-batch;
* ``rank_scores``   — gradient-free scores for one user over a candidate
  item array (used by the leave-one-out protocol);
* ``score_batch`` / ``score_all_items`` — gradient-free scores for a
  *block* of users at once (used by the batched full-ranking evaluator and
  the serving layer); the base class falls back to per-user ``rank_scores``
  so every model works, and embedding models override it with one
  matrix-matrix product over their cached propagated embeddings;
* ``prepare_for_evaluation`` / ``invalidate_cache`` — hooks that let graph
  models propagate embeddings once per evaluation pass instead of once per
  scored user.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

import numpy as np

from ..autograd import Tensor
from ..nn import Module, l2_regularization

__all__ = ["DataMode", "RecommenderModel"]


class DataMode(str, enum.Enum):
    """Which training-data format a model consumes."""

    #: Flattened user-item pairs, initiator interactions only (``MF(oi)``).
    INTERACTIONS_OI = "interactions_oi"
    #: Flattened user-item pairs, initiator + participant interactions.
    INTERACTIONS_BOTH = "interactions_both"
    #: Raw group-buying behaviors (GBMF, GBGCN).
    GROUP_BUYING = "group_buying"
    #: Fixed groups derived from behaviors (AGREE, SIGR).
    FIXED_GROUPS = "fixed_groups"


class RecommenderModel(Module):
    """Base class for all models in :mod:`repro.models` and :mod:`repro.core`."""

    #: Overridden by subclasses.
    data_mode: DataMode = DataMode.INTERACTIONS_BOTH

    def __init__(self, num_users: int, num_items: int, l2_weight: float = 0.0) -> None:
        super().__init__()
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = num_users
        self.num_items = num_items
        self.l2_weight = l2_weight

    # ------------------------------------------------------------------
    # Training interface
    # ------------------------------------------------------------------
    def batch_loss(self, batch) -> Tensor:
        """Differentiable loss of one mini-batch (format set by ``data_mode``)."""
        raise NotImplementedError

    def regularization(self, tensors: Optional[Iterable[Tensor]] = None) -> Tensor:
        """L2 penalty over ``tensors`` (default: all parameters)."""
        if self.l2_weight == 0.0:
            return Tensor(0.0)
        return l2_regularization(tensors if tensors is not None else self.parameters(), self.l2_weight)

    # ------------------------------------------------------------------
    # Evaluation interface
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        """Cache whatever full-graph state scoring needs (optional)."""

    def invalidate_cache(self) -> None:
        """Drop evaluation caches after parameters changed (optional)."""

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        """Scores of ``item_ids`` for ``user`` as a plain NumPy array."""
        raise NotImplementedError

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        """Score a block of users against a block of items.

        Returns a ``(len(users), len(item_ids))`` float64 array where row
        ``i`` holds the scores of ``item_ids`` for ``users[i]``.  The base
        implementation loops over ``rank_scores`` so any model is batchable;
        embedding-based models override it with a single matrix product.
        """
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if users.size == 0:
            return np.zeros((0, item_ids.size), dtype=np.float64)
        return np.stack(
            [np.asarray(self.rank_scores(int(user), item_ids), dtype=np.float64) for user in users]
        )

    def score_all_items(self, users: np.ndarray) -> np.ndarray:
        """Scores of every item in the catalog for a block of users."""
        return self.score_batch(users, np.arange(self.num_items, dtype=np.int64))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(users={self.num_users}, items={self.num_items}, params={self.num_parameters()})"
