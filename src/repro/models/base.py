"""Common interface for every recommender in the reproduction.

The trainer and the evaluator only rely on this interface:

* ``data_mode``     — which batch format the model consumes (pure user-item
  interactions, group-buying behaviors, or fixed groups);
* ``batch_loss``    — differentiable loss for one mini-batch;
* ``rank_scores``   — gradient-free scores for one user over a candidate
  item array (used by the leave-one-out protocol);
* ``score_batch`` / ``score_all_items`` — gradient-free scores for a
  *block* of users at once (used by the batched full-ranking evaluator and
  the serving layer); the base class falls back to per-user ``rank_scores``
  so every model works, and embedding models override it with one
  matrix-matrix product over their cached propagated embeddings;
* ``prepare_for_evaluation`` / ``invalidate_cache`` — hooks that let graph
  models propagate embeddings once per evaluation pass instead of once per
  scored user;
* ``state_dict`` / ``load_state_dict`` — the full serialization contract
  used by the artifact layer (:mod:`repro.persist`): trainable parameters
  plus any non-parameter state a model scores with (``extra_state`` /
  ``load_extra_state`` overrides, e.g. ItemKNN's similarity matrix), keyed
  so one flat ``{name: array}`` dict round-trips the whole model.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..autograd import Tensor
from ..nn import Module, l2_regularization

__all__ = ["DataMode", "RecommenderModel", "EXTRA_STATE_PREFIX"]

#: Key prefix separating non-parameter state (ItemKNN similarity matrices,
#: ItemPop counts, ...) from trainable parameters inside ``state_dict``.
EXTRA_STATE_PREFIX = "__extra__/"


class DataMode(str, enum.Enum):
    """Which training-data format a model consumes."""

    #: Flattened user-item pairs, initiator interactions only (``MF(oi)``).
    INTERACTIONS_OI = "interactions_oi"
    #: Flattened user-item pairs, initiator + participant interactions.
    INTERACTIONS_BOTH = "interactions_both"
    #: Raw group-buying behaviors (GBMF, GBGCN).
    GROUP_BUYING = "group_buying"
    #: Fixed groups derived from behaviors (AGREE, SIGR).
    FIXED_GROUPS = "fixed_groups"


class RecommenderModel(Module):
    """Base class for all models in :mod:`repro.models` and :mod:`repro.core`."""

    #: Overridden by subclasses.
    data_mode: DataMode = DataMode.INTERACTIONS_BOTH

    def __init__(self, num_users: int, num_items: int, l2_weight: float = 0.0) -> None:
        super().__init__()
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = num_users
        self.num_items = num_items
        self.l2_weight = l2_weight

    # ------------------------------------------------------------------
    # Training interface
    # ------------------------------------------------------------------
    def batch_loss(self, batch) -> Tensor:
        """Differentiable loss of one mini-batch (format set by ``data_mode``)."""
        raise NotImplementedError

    def regularization(self, tensors: Optional[Iterable[Tensor]] = None) -> Tensor:
        """L2 penalty over ``tensors`` (default: all parameters)."""
        if self.l2_weight == 0.0:
            return Tensor(0.0)
        return l2_regularization(tensors if tensors is not None else self.parameters(), self.l2_weight)

    # ------------------------------------------------------------------
    # Evaluation interface
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        """Cache whatever full-graph state scoring needs (optional)."""

    def invalidate_cache(self) -> None:
        """Drop evaluation caches after parameters changed (optional)."""

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        """Scores of ``item_ids`` for ``user`` as a plain NumPy array."""
        raise NotImplementedError

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        """Score a block of users against a block of items.

        Returns a ``(len(users), len(item_ids))`` float64 array where row
        ``i`` holds the scores of ``item_ids`` for ``users[i]``.  The base
        implementation loops over ``rank_scores`` so any model is batchable;
        embedding-based models override it with a single matrix product.
        The result may be a read-only view (e.g. ItemPop broadcasts one
        popularity row across users) — copy before mutating in place.
        """
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if users.size == 0:
            return np.zeros((0, item_ids.size), dtype=np.float64)
        return np.stack(
            [np.asarray(self.rank_scores(int(user), item_ids), dtype=np.float64) for user in users]
        )

    def score_all_items(self, users: np.ndarray) -> np.ndarray:
        """Scores of every item in the catalog for a block of users."""
        return self.score_batch(users, np.arange(self.num_items, dtype=np.int64))

    def scoring_factors(self):
        """Optional inner-product decomposition of this model's scores.

        Models whose score is a plain inner product return a
        ``(user_factors, item_factors)`` pair of dense arrays such that
        ``score_batch(users, items)`` equals
        ``user_factors[users] @ item_factors[items].T`` (up to fp
        accumulation order).  The serving layer builds approximate-
        nearest-neighbour retrieval indexes (:mod:`repro.serving.retrieval`)
        over ``item_factors``, so top-k requests can shortlist a few
        hundred candidates instead of scoring the whole catalog.

        Models with a non-linear score (NCF's MLP, ItemKNN's sparse
        neighbourhood, attention models) return ``None`` — the serving
        layer falls back to exact brute-force scoring for them.
        Implementations may rely on cached propagated embeddings and must
        prepare them if missing, mirroring ``score_batch``.
        """
        return None

    # ------------------------------------------------------------------
    # Serialization contract (used by repro.persist)
    # ------------------------------------------------------------------
    #: Registry identity attached by ``build_model`` so ``save_model`` can
    #: write a self-describing artifact without extra arguments.  The dataset
    #: is kept by reference; its schema fingerprint is hashed lazily at save
    #: time (and cached on the dataset), so building models costs nothing.
    _registry_name: Optional[str] = None
    _registry_settings: Optional[Any] = None
    _artifact_dataset: Optional[Any] = None

    def bind_artifact_metadata(self, registry_name: str, settings: Any, dataset: Any) -> None:
        """Record how this model was built (registry name, settings, dataset)."""
        self._registry_name = registry_name
        self._registry_settings = settings
        self._artifact_dataset = dataset

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Non-parameter arrays the model scores with (override per model).

        Models whose state lives outside :class:`~repro.nn.module.Parameter`
        (ItemKNN's similarity matrix, ItemPop's popularity counts) return it
        here as a flat ``{key: ndarray}`` dict; the base class merges it
        into ``state_dict`` under :data:`EXTRA_STATE_PREFIX` keys.
        """
        return {}

    def extra_state_keys(self):
        """The keys :meth:`extra_state` would return.

        Overridden alongside ``extra_state`` when computing the arrays is
        expensive (ItemKNN's lazy similarity fit), so strict key validation
        during ``load_state_dict`` stays cheap.
        """
        return set(self.extra_state())

    def load_extra_state(self, extra: Dict[str, np.ndarray]) -> None:
        """Restore arrays produced by :meth:`extra_state` (override per model).

        Overrides must validate every array into temporaries and assign only
        after everything checks out, so a failed load never leaves the model
        half-mutated.
        """
        if extra:
            raise KeyError(f"{self.name} has no extra state, got keys {sorted(extra)}")

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        for key, value in self.extra_state().items():
            state[EXTRA_STATE_PREFIX + key] = np.array(value, copy=True, order="C")
        return state

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The full state without snapshot copies, keyed like :meth:`state_dict`.

        Used by the artifact writer, which normalizes layout itself and only
        reads the arrays for the duration of one ``np.savez`` call; anyone
        holding the result longer must treat it as read-only or snapshot
        with :meth:`state_dict`.
        """
        state = {name: parameter.data for name, parameter in self.named_parameters()}
        for key, value in self.extra_state().items():
            state[EXTRA_STATE_PREFIX + key] = value
        return state

    def load_state_dict(
        self, state: Dict[str, np.ndarray], strict: bool = True, copy: bool = True
    ) -> None:
        parameters = {k: v for k, v in state.items() if not k.startswith(EXTRA_STATE_PREFIX)}
        extra = {
            k[len(EXTRA_STATE_PREFIX):]: v for k, v in state.items() if k.startswith(EXTRA_STATE_PREFIX)
        }
        expected = self.extra_state_keys()
        if strict:
            missing = expected - set(extra)
            unexpected = set(extra) - expected
            if missing or unexpected:
                raise KeyError(
                    f"extra state mismatch for {self.name}: "
                    f"missing={sorted(missing)} unexpected={sorted(unexpected)}"
                )
        # Transactional ordering: validate parameters (no commit), apply the
        # extra state (which itself validates into temporaries before
        # assigning), then commit the parameters — a failure at any point
        # leaves the model exactly as it was.  Copies keep model state from
        # aliasing the caller's arrays (mirroring the parameter path); extra
        # state is always copied, even under copy=False, because models
        # mutate it (e.g. cached similarity rows) while mmap-bound
        # *parameters* are only ever read.  With strict=False a partial
        # extra set is skipped entirely — like missing parameters, the
        # current values are left in place.
        converted = self._validated_state(parameters, strict=strict, copy=copy)
        applicable = {k: np.array(v, copy=True) for k, v in extra.items() if k in expected}
        if expected and expected.issubset(applicable):
            self.load_extra_state(applicable)
        self._assign_state(converted)
        self.invalidate_cache()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(users={self.num_users}, items={self.num_items}, params={self.num_parameters()})"
