"""Item-based k-nearest-neighbour collaborative filtering.

``ItemKNN`` scores a candidate item for a user by summing the cosine
similarities between the candidate and the items the user interacted with
during training.  The similarity matrix is computed once from the binary
interaction matrix and truncated to each item's top-``k`` neighbours so the
model stays sparse even at the paper's 30k-item scale.

Like :class:`~repro.models.popularity.ItemPopularity`, it is not a Table III
row but a memory-based reference point that needs no gradient training.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor
from ..data.converters import InteractionConversion
from .base import DataMode, RecommenderModel

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch

__all__ = ["ItemKNN", "cosine_item_similarity"]


def cosine_item_similarity(
    interaction_matrix: sp.spmatrix,
    top_k: Optional[int] = 50,
    shrinkage: float = 0.0,
) -> sp.csr_matrix:
    """Item-item cosine similarity of a binary ``users x items`` matrix.

    Parameters
    ----------
    interaction_matrix:
        Sparse ``(num_users, num_items)`` implicit-feedback matrix.
    top_k:
        Keep only each item's ``top_k`` most similar neighbours
        (``None`` keeps everything; memory grows as ``Q^2``).
    shrinkage:
        Additive shrinkage on the denominator, damping similarities that
        are supported by very few co-occurrences.
    """
    matrix = sp.csr_matrix(interaction_matrix, dtype=np.float64)
    matrix.data[:] = 1.0
    co_occurrence = (matrix.T @ matrix).tocsr()
    norms = np.sqrt(co_occurrence.diagonal())
    co_occurrence.setdiag(0.0)
    co_occurrence.eliminate_zeros()

    coo = co_occurrence.tocoo()
    denominator = norms[coo.row] * norms[coo.col] + shrinkage
    values = np.divide(coo.data, denominator, out=np.zeros_like(coo.data), where=denominator > 0)
    similarity = sp.csr_matrix((values, (coo.row, coo.col)), shape=co_occurrence.shape)

    if top_k is None:
        return similarity

    # Truncate each row to its top_k strongest neighbours.
    rows, cols, data = [], [], []
    for row in range(similarity.shape[0]):
        start, end = similarity.indptr[row], similarity.indptr[row + 1]
        row_cols = similarity.indices[start:end]
        row_vals = similarity.data[start:end]
        if row_vals.size > top_k:
            keep = np.argpartition(row_vals, -top_k)[-top_k:]
            row_cols, row_vals = row_cols[keep], row_vals[keep]
        rows.extend([row] * row_cols.size)
        cols.extend(row_cols.tolist())
        data.extend(row_vals.tolist())
    return sp.csr_matrix((data, (rows, cols)), shape=similarity.shape)


class ItemKNN(RecommenderModel):
    """Memory-based item-item collaborative filtering."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions: InteractionConversion,
        top_k: int = 50,
        shrinkage: float = 10.0,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=0.0)
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.top_k = top_k
        self.shrinkage = shrinkage
        self._interaction_matrix = interactions.matrix()
        # Fitted lazily on first use: an artifact load supplies the saved
        # similarity matrix directly and must not pay for a full refit.
        self._similarity: Optional[sp.csr_matrix] = None

    @property
    def similarity(self) -> sp.csr_matrix:
        """The (lazily fitted) truncated item-item cosine similarity."""
        if self._similarity is None:
            self._similarity = cosine_item_similarity(
                self._interaction_matrix, top_k=self.top_k, shrinkage=self.shrinkage
            )
        return self._similarity

    def batch_loss(self, batch: "InteractionBatch") -> Tensor:
        # Memory-based model: nothing to optimize.
        return Tensor(0.0)

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        profile = self._interaction_matrix.getrow(user)
        if profile.nnz == 0:
            return np.zeros(item_ids.shape[0])
        # score(candidate) = sum_{j in profile} sim(j, candidate)
        scores = profile @ self.similarity
        return np.asarray(scores.todense()).ravel()[item_ids]

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        profiles = self._interaction_matrix[users]
        if item_ids.size >= self.num_items:
            dense = (profiles @ self.similarity).toarray()
            if item_ids.size == self.num_items and np.array_equal(
                item_ids, np.arange(self.num_items, dtype=np.int64)
            ):
                return dense  # full catalog in order: skip the column copy
            return dense[:, item_ids]
        # Candidate subset: restrict the similarity columns before the
        # product instead of densifying the whole catalog.
        return (profiles @ self.similarity[:, item_ids]).toarray()

    # ------------------------------------------------------------------
    # Serialization: the model's knowledge is its sparse matrices, not
    # trainable parameters, so they travel in the artifact's extra state.
    # ------------------------------------------------------------------
    def extra_state_keys(self):
        # Static, so checking which keys an artifact must carry never forces
        # the lazy similarity fit on a model about to be overwritten.
        return {
            "interaction_matrix.data",
            "interaction_matrix.indices",
            "interaction_matrix.indptr",
            "similarity.data",
            "similarity.indices",
            "similarity.indptr",
        }

    def extra_state(self) -> Dict[str, np.ndarray]:
        similarity = self.similarity
        return {
            "interaction_matrix.data": self._interaction_matrix.data,
            "interaction_matrix.indices": self._interaction_matrix.indices,
            "interaction_matrix.indptr": self._interaction_matrix.indptr,
            "similarity.data": similarity.data,
            "similarity.indices": similarity.indices,
            "similarity.indptr": similarity.indptr,
        }

    def load_extra_state(self, extra: Dict[str, np.ndarray]) -> None:
        def rebuild(prefix: str, shape) -> sp.csr_matrix:
            for suffix in ("indices", "indptr"):
                dtype = np.asarray(extra[f"{prefix}.{suffix}"]).dtype
                if not np.issubdtype(dtype, np.integer):
                    # scipy would silently truncate float indices to ints.
                    raise ValueError(f"{prefix}.{suffix} must be integer-typed, got {dtype}")
            try:
                matrix = sp.csr_matrix(
                    (extra[f"{prefix}.data"], extra[f"{prefix}.indices"], extra[f"{prefix}.indptr"]),
                    shape=shape,
                )
                # The constructor does not bounds-check index arrays; a
                # corrupted artifact must fail here, not score garbage.
                matrix.check_format(full_check=True)
                return matrix
            except (ValueError, IndexError) as error:
                raise ValueError(f"invalid {prefix} CSR components for shape {shape}: {error}") from error

        # Rebuild (and bounds-check) both matrices before assigning either,
        # so a corrupted artifact cannot leave the model in a mixed state.
        interaction_matrix = rebuild("interaction_matrix", (self.num_users, self.num_items))
        similarity = rebuild("similarity", (self.num_items, self.num_items))
        self._interaction_matrix = interaction_matrix
        self._similarity = similarity

    @property
    def name(self) -> str:
        return "ItemKNN"
