"""Item-based k-nearest-neighbour collaborative filtering.

``ItemKNN`` scores a candidate item for a user by summing the cosine
similarities between the candidate and the items the user interacted with
during training.  The similarity matrix is computed once from the binary
interaction matrix and truncated to each item's top-``k`` neighbours so the
model stays sparse even at the paper's 30k-item scale.

Like :class:`~repro.models.popularity.ItemPopularity`, it is not a Table III
row but a memory-based reference point that needs no gradient training.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor
from ..data.converters import InteractionConversion
from .base import DataMode, RecommenderModel

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch

__all__ = ["ItemKNN", "cosine_item_similarity"]


def cosine_item_similarity(
    interaction_matrix: sp.spmatrix,
    top_k: Optional[int] = 50,
    shrinkage: float = 0.0,
) -> sp.csr_matrix:
    """Item-item cosine similarity of a binary ``users x items`` matrix.

    Parameters
    ----------
    interaction_matrix:
        Sparse ``(num_users, num_items)`` implicit-feedback matrix.
    top_k:
        Keep only each item's ``top_k`` most similar neighbours
        (``None`` keeps everything; memory grows as ``Q^2``).
    shrinkage:
        Additive shrinkage on the denominator, damping similarities that
        are supported by very few co-occurrences.
    """
    matrix = sp.csr_matrix(interaction_matrix, dtype=np.float64)
    matrix.data[:] = 1.0
    co_occurrence = (matrix.T @ matrix).tocsr()
    norms = np.sqrt(co_occurrence.diagonal())
    co_occurrence.setdiag(0.0)
    co_occurrence.eliminate_zeros()

    coo = co_occurrence.tocoo()
    denominator = norms[coo.row] * norms[coo.col] + shrinkage
    values = np.divide(coo.data, denominator, out=np.zeros_like(coo.data), where=denominator > 0)
    similarity = sp.csr_matrix((values, (coo.row, coo.col)), shape=co_occurrence.shape)

    if top_k is None:
        return similarity

    # Truncate each row to its top_k strongest neighbours.
    rows, cols, data = [], [], []
    for row in range(similarity.shape[0]):
        start, end = similarity.indptr[row], similarity.indptr[row + 1]
        row_cols = similarity.indices[start:end]
        row_vals = similarity.data[start:end]
        if row_vals.size > top_k:
            keep = np.argpartition(row_vals, -top_k)[-top_k:]
            row_cols, row_vals = row_cols[keep], row_vals[keep]
        rows.extend([row] * row_cols.size)
        cols.extend(row_cols.tolist())
        data.extend(row_vals.tolist())
    return sp.csr_matrix((data, (rows, cols)), shape=similarity.shape)


class ItemKNN(RecommenderModel):
    """Memory-based item-item collaborative filtering."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions: InteractionConversion,
        top_k: int = 50,
        shrinkage: float = 10.0,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=0.0)
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.top_k = top_k
        self.shrinkage = shrinkage
        self._interaction_matrix = interactions.matrix()
        self._similarity = cosine_item_similarity(
            self._interaction_matrix, top_k=top_k, shrinkage=shrinkage
        )

    def batch_loss(self, batch: "InteractionBatch") -> Tensor:
        # Memory-based model: nothing to optimize.
        return Tensor(0.0)

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        profile = self._interaction_matrix.getrow(user)
        if profile.nnz == 0:
            return np.zeros(item_ids.shape[0])
        # score(candidate) = sum_{j in profile} sim(j, candidate)
        scores = profile @ self._similarity
        return np.asarray(scores.todense()).ravel()[item_ids]

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        profiles = self._interaction_matrix[users]
        if item_ids.size >= self.num_items:
            return (profiles @ self._similarity).toarray()[:, item_ids]
        # Candidate subset: restrict the similarity columns before the
        # product instead of densifying the whole catalog.
        return (profiles @ self._similarity[:, item_ids]).toarray()

    @property
    def name(self) -> str:
        return "ItemKNN"
