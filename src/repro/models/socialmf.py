"""SocialMF [Jamali & Ester, RecSys 2010].

A matrix-factorization model with trust propagation: the preference vector
of each user is regularized towards the average preference of their
friends.  Following the paper's setup it is trained with BPR over
flattened user-item interactions plus the social regularization term.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, no_grad
from ..graph.social import FriendshipGraph
from ..nn import Embedding, bpr_loss, social_regularization
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["SocialMF"]


class SocialMF(RecommenderModel):
    """BPR-MF plus the friend-average social regularizer."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        friendship: FriendshipGraph,
        embedding_dim: int = 32,
        l2_weight: float = 1e-4,
        social_weight: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        if friendship.num_users != num_users:
            raise ValueError("friendship graph does not match the user universe")
        self.embedding_dim = embedding_dim
        self.social_weight = social_weight
        self.friendship = friendship
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self._social_normalized: sp.csr_matrix = friendship.normalized()

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return (self.user_embedding(users) * self.item_embedding(items)).sum(axis=-1)

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        positive = self.score_pairs(batch.users, batch.positive_items)
        negative = self.score_pairs(batch.users, batch.negative_items)
        loss = bpr_loss(positive, negative)
        social_term = social_regularization(
            self.user_embedding.weight,
            self._social_normalized,
            weight=self.social_weight,
            user_indices=batch.users,
        ) * (1.0 / max(len(batch), 1))
        regularizer = self.regularization(
            [
                self.user_embedding(batch.users),
                self.item_embedding(batch.positive_items),
                self.item_embedding(batch.negative_items),
            ]
        ) * (1.0 / max(len(batch), 1))
        return loss + social_term + regularizer

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        with no_grad():
            user_vector = self.user_embedding.weight.data[user]
            item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
            return item_vectors @ user_vector

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        user_vectors = self.user_embedding.weight.data[np.asarray(users, dtype=np.int64)]
        item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
        return user_vectors @ item_vectors.T

    def scoring_factors(self):
        return self.user_embedding.weight.data, self.item_embedding.weight.data

    @property
    def name(self) -> str:
        return "SocialMF"
