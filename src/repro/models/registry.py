"""Model registry: build any model of Table III by name from a training dataset.

The registry hides the per-model data plumbing (interaction conversions,
bipartite/social graphs, fixed groups, the heterogeneous graph) so the
benchmark harness and the examples can simply say
``build_model("GBGCN", train_dataset)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..core.gbgcn import GBGCNConfig

from ..data.converters import to_fixed_groups, to_user_item_interactions
from ..data.dataset import GroupBuyingDataset
from ..graph.bipartite import BipartiteGraph
from ..graph.hetero import build_hetero_graph
from ..graph.social import FriendshipGraph
from .agree import AGREE
from .base import RecommenderModel
from .diffnet import DiffNet
from .gbmf import GBMF
from .itemknn import ItemKNN
from .lightgcn import LightGCN
from .mf import MatrixFactorization
from .ncf import NCF
from .ngcf import NGCF
from .popularity import ItemPopularity
from .sigr import SIGR
from .socialmf import SocialMF

__all__ = [
    "ModelSettings",
    "MODEL_NAMES",
    "EXTRA_MODEL_NAMES",
    "ALL_MODEL_NAMES",
    "SERVABLE_MODEL_NAMES",
    "build_model",
]


@dataclass
class ModelSettings:
    """Hyper-parameters shared by the registry's model builders."""

    embedding_dim: int = 32
    num_layers: int = 2
    l2_weight: float = 1e-4
    alpha: float = 0.6
    beta: float = 0.05
    social_weight: float = 0.1
    seed: int = 42

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (stored in model-artifact headers)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModelSettings":
        """Rebuild settings from :meth:`to_dict` output; rejects unknown keys."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ModelSettings fields: {sorted(unknown)} (known: {sorted(known)})")
        return cls(**payload)

    def gbgcn_config(self, **overrides) -> "GBGCNConfig":
        """The GBGCN configuration implied by these settings."""
        # Imported lazily to keep ``repro.models`` importable without
        # triggering the ``repro.core`` package (which imports this package).
        from ..core.gbgcn import GBGCNConfig

        parameters = dict(
            embedding_dim=self.embedding_dim,
            num_layers=self.num_layers,
            alpha=self.alpha,
            beta=self.beta,
            l2_weight=self.l2_weight,
            social_weight=min(self.social_weight, 1e-3),
        )
        parameters.update(overrides)
        return GBGCNConfig(**parameters)


#: Table III order of methods.
MODEL_NAMES: List[str] = [
    "MF(oi)",
    "MF",
    "NCF",
    "NGCF",
    "SocialMF",
    "DiffNet",
    "AGREE",
    "SIGR",
    "GBMF",
    "GBGCN",
]

#: Reference baselines beyond the paper's Table III (sanity checks and the
#: LightGCN propagation ablation); buildable by name but excluded from the
#: Table III benchmark by default.
EXTRA_MODEL_NAMES: List[str] = [
    "ItemPop",
    "ItemKNN",
    "LightGCN",
]

ALL_MODEL_NAMES: List[str] = MODEL_NAMES + EXTRA_MODEL_NAMES

#: Every name :func:`build_model` accepts — and therefore every model name a
#: ``repro.persist`` artifact can record and a
#: :class:`~repro.serving.catalog.ModelCatalog` can cold-start.  Extends
#: ``ALL_MODEL_NAMES`` with the pre-training stage model, which is buildable
#: and servable but not a Table III row.
SERVABLE_MODEL_NAMES: List[str] = ALL_MODEL_NAMES + ["GBGCN-pretrain"]


def _friendship(dataset: GroupBuyingDataset) -> FriendshipGraph:
    return FriendshipGraph([edge.as_tuple() for edge in dataset.social_edges], dataset.num_users)


def _interaction_graph(dataset: GroupBuyingDataset, mode: str = "both") -> BipartiteGraph:
    conversion = to_user_item_interactions(dataset, mode=mode)
    return BipartiteGraph(conversion.pairs, dataset.num_users, dataset.num_items)


def build_model(
    name: str,
    train_dataset: GroupBuyingDataset,
    settings: Optional[ModelSettings] = None,
    rng: Optional[np.random.Generator] = None,
) -> RecommenderModel:
    """Instantiate the model called ``name`` (a Table III row) on ``train_dataset``.

    The returned model carries its registry identity (name, settings and a
    reference to the training dataset), so ``repro.persist.save_model`` can
    write a self-describing artifact and ``load_model`` can rebuild the
    model from that artifact via this same function.
    """
    settings = settings or ModelSettings()
    model = _construct_model(name, train_dataset, settings, rng)
    model.bind_artifact_metadata(name, settings, train_dataset)
    return model


def _construct_model(
    name: str,
    train_dataset: GroupBuyingDataset,
    settings: ModelSettings,
    rng: Optional[np.random.Generator] = None,
) -> RecommenderModel:
    rng = rng or np.random.default_rng(settings.seed)
    num_users, num_items = train_dataset.num_users, train_dataset.num_items

    if name == "MF(oi)":
        return MatrixFactorization(
            num_users, num_items, settings.embedding_dim, settings.l2_weight, interaction_mode="oi", rng=rng
        )
    if name == "MF":
        return MatrixFactorization(
            num_users, num_items, settings.embedding_dim, settings.l2_weight, interaction_mode="both", rng=rng
        )
    if name == "NCF":
        return NCF(num_users, num_items, settings.embedding_dim, l2_weight=settings.l2_weight, rng=rng)
    if name == "NGCF":
        return NGCF(
            num_users,
            num_items,
            graph=_interaction_graph(train_dataset),
            embedding_dim=settings.embedding_dim,
            num_layers=settings.num_layers,
            l2_weight=settings.l2_weight,
            rng=rng,
        )
    if name == "SocialMF":
        return SocialMF(
            num_users,
            num_items,
            friendship=_friendship(train_dataset),
            embedding_dim=settings.embedding_dim,
            l2_weight=settings.l2_weight,
            social_weight=settings.social_weight,
            rng=rng,
        )
    if name == "DiffNet":
        return DiffNet(
            num_users,
            num_items,
            friendship=_friendship(train_dataset),
            interaction_graph=_interaction_graph(train_dataset),
            embedding_dim=settings.embedding_dim,
            num_layers=settings.num_layers,
            l2_weight=settings.l2_weight,
            rng=rng,
        )
    if name == "AGREE":
        return AGREE(
            num_users,
            num_items,
            groups=to_fixed_groups(train_dataset),
            embedding_dim=settings.embedding_dim,
            l2_weight=settings.l2_weight,
            rng=rng,
        )
    if name == "SIGR":
        return SIGR(
            num_users,
            num_items,
            groups=to_fixed_groups(train_dataset),
            friendship=_friendship(train_dataset),
            interaction_graph=_interaction_graph(train_dataset),
            embedding_dim=settings.embedding_dim,
            l2_weight=settings.l2_weight,
            rng=rng,
        )
    if name == "GBMF":
        return GBMF(
            num_users,
            num_items,
            friendship=_friendship(train_dataset),
            embedding_dim=settings.embedding_dim,
            alpha=settings.alpha,
            l2_weight=settings.l2_weight,
            rng=rng,
        )
    if name == "GBGCN":
        from ..core.gbgcn import GBGCN

        return GBGCN(
            num_users,
            num_items,
            graph=build_hetero_graph(train_dataset),
            config=settings.gbgcn_config(),
            rng=rng,
        )
    if name == "GBGCN-pretrain":
        from ..core.pretrain import GBGCNPretrainModel

        return GBGCNPretrainModel(
            num_users,
            num_items,
            graph=build_hetero_graph(train_dataset),
            config=settings.gbgcn_config(),
            rng=rng,
        )
    if name == "ItemPop":
        return ItemPopularity(
            num_users, num_items, interactions=to_user_item_interactions(train_dataset, mode="both")
        )
    if name == "ItemKNN":
        return ItemKNN(
            num_users, num_items, interactions=to_user_item_interactions(train_dataset, mode="both")
        )
    if name == "LightGCN":
        return LightGCN(
            num_users,
            num_items,
            graph=_interaction_graph(train_dataset),
            embedding_dim=settings.embedding_dim,
            num_layers=settings.num_layers,
            l2_weight=settings.l2_weight,
            rng=rng,
        )
    raise ValueError(f"unknown model '{name}'; expected one of {SERVABLE_MODEL_NAMES}")
