"""LightGCN [He et al., SIGIR 2020].

LightGCN is the simplified GCN collaborative-filtering model the paper's
in-view propagation is modelled after ("we devise graph convolution layers
without FC layers following [26]").  It propagates embeddings over the
symmetric-normalized user-item bipartite graph with no transformation, no
non-linearity and no self-connection, and averages the layer outputs.

It is not one of the Table III rows, but it is the natural extra baseline
for this reproduction: comparing GBGCN against LightGCN isolates the value
of the multi-view / cross-view design from the value of mere linear
propagation.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, concat, gathered_dot_difference, no_grad, sparse_matmul
from ..graph.bipartite import BipartiteGraph
from ..nn import Embedding, bpr_difference_loss
from .base import DataMode, RecommenderModel

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch

__all__ = ["LightGCN"]


class LightGCN(RecommenderModel):
    """Linear embedding propagation with mean layer combination."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        graph: BipartiteGraph,
        embedding_dim: int = 32,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        if graph.num_users != num_users or graph.num_items != num_items:
            raise ValueError("graph shape does not match the user/item universe")
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        self.graph = graph
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self._propagation: sp.csr_matrix = graph.symmetric_normalized()
        self._eval_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Embedding propagation
    # ------------------------------------------------------------------
    def propagate(self) -> Tensor:
        """Mean of the 0..L layer embeddings for users then items."""
        ego = concat([self.user_embedding.weight, self.item_embedding.weight], axis=0)
        accumulated = ego
        current = ego
        for _ in range(self.num_layers):
            current = sparse_matmul(self._propagation, current)
            accumulated = accumulated + current
        return accumulated * (1.0 / (self.num_layers + 1))

    def _split(self, embeddings: Tensor):
        users = embeddings[np.arange(self.num_users)]
        items = embeddings[np.arange(self.num_users, self.num_users + self.num_items)]
        return users, items

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def batch_loss(self, batch: "InteractionBatch") -> Tensor:
        embeddings = self.propagate()
        user_embeddings, item_embeddings = self._split(embeddings)
        differences = gathered_dot_difference(
            user_embeddings,
            item_embeddings,
            batch.users,
            batch.positive_items,
            batch.negative_items,
        )
        loss = bpr_difference_loss(differences)
        # LightGCN regularizes the *ego* embeddings of the sampled triples.
        regularizer = self.regularization(
            [
                self.user_embedding(batch.users),
                self.item_embedding(batch.positive_items),
                self.item_embedding(batch.negative_items),
            ]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        with no_grad():
            self._eval_cache = self.propagate().data

    def invalidate_cache(self) -> None:
        self._eval_cache = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        embeddings = self._eval_cache
        user_vector = embeddings[user]
        item_vectors = embeddings[self.num_users + np.asarray(item_ids, dtype=np.int64)]
        return item_vectors @ user_vector

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        embeddings = self._eval_cache
        user_vectors = embeddings[np.asarray(users, dtype=np.int64)]
        item_vectors = embeddings[self.num_users + np.asarray(item_ids, dtype=np.int64)]
        return user_vectors @ item_vectors.T

    def scoring_factors(self):
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        return self._eval_cache[: self.num_users], self._eval_cache[self.num_users :]

    @property
    def name(self) -> str:
        return "LightGCN"
