"""DiffNet [Wu et al., SIGIR 2019].

DiffNet simulates recursive social influence diffusion: user embeddings are
repeatedly propagated over the social network (each layer blends a user's
own state with the mean of their friends' states), and the diffused user
representation is fused with the mean embedding of the user's consumed
items before the inner-product ranking.  It is the strongest social
baseline in the paper's Table III.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, no_grad, sparse_matmul
from ..graph.bipartite import BipartiteGraph
from ..graph.social import FriendshipGraph
from ..nn import Embedding, bpr_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["DiffNet"]


class DiffNet(RecommenderModel):
    """Social-influence diffusion over the friendship network + item fusion."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        friendship: FriendshipGraph,
        interaction_graph: BipartiteGraph,
        embedding_dim: int = 32,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        if friendship.num_users != num_users:
            raise ValueError("friendship graph does not match the user universe")
        if interaction_graph.num_users != num_users or interaction_graph.num_items != num_items:
            raise ValueError("interaction graph does not match the user/item universe")
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        self.friendship = friendship
        self.interaction_graph = interaction_graph
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self._social_normalized: sp.csr_matrix = friendship.normalized()
        self._user_to_item: sp.csr_matrix = interaction_graph.user_to_item_propagation()
        self._eval_users: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Diffusion
    # ------------------------------------------------------------------
    def diffuse_users(self) -> Tensor:
        """Return the diffusion-refined user embedding matrix."""
        current = self.user_embedding.weight
        for _ in range(self.num_layers):
            neighbor_mean = sparse_matmul(self._social_normalized, current)
            current = current + neighbor_mean
        # Fuse with the mean embedding of the items each user interacted with.
        consumed_mean = sparse_matmul(self._user_to_item, self.item_embedding.weight)
        return current + consumed_mean

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        user_matrix = self.diffuse_users()
        users = user_matrix[batch.users]
        positives = self.item_embedding(batch.positive_items)
        negatives = self.item_embedding(batch.negative_items)
        positive_scores = (users * positives).sum(axis=-1)
        negative_scores = (users * negatives).sum(axis=-1)
        loss = bpr_loss(positive_scores, negative_scores)
        regularizer = self.regularization(
            [
                self.user_embedding(batch.users),
                self.item_embedding(batch.positive_items),
                self.item_embedding(batch.negative_items),
            ]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        with no_grad():
            self._eval_users = self.diffuse_users().data

    def invalidate_cache(self) -> None:
        self._eval_users = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_users is None:
            self.prepare_for_evaluation()
        user_vector = self._eval_users[user]
        item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
        return item_vectors @ user_vector

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_users is None:
            self.prepare_for_evaluation()
        user_vectors = self._eval_users[np.asarray(users, dtype=np.int64)]
        item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
        return user_vectors @ item_vectors.T

    def scoring_factors(self):
        if self._eval_users is None:
            self.prepare_for_evaluation()
        return self._eval_users, self.item_embedding.weight.data

    @property
    def name(self) -> str:
        return "DiffNet"
