"""Neural Graph Collaborative Filtering (NGCF) [Wang et al., SIGIR 2019].

NGCF propagates embeddings over the user-item bipartite graph with
per-layer transformation matrices and an affinity (elementwise product)
term, concatenating all layer outputs as the final representation.  It is
the strongest pure-CF GNN baseline in the paper's Table III.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, concat, leaky_relu, no_grad, sparse_matmul
from ..graph.bipartite import BipartiteGraph
from ..nn import Embedding, Linear, bpr_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["NGCF"]


class NGCF(RecommenderModel):
    """NGCF with symmetric-normalized propagation and layer concatenation."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        graph: BipartiteGraph,
        embedding_dim: int = 32,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        if graph.num_users != num_users or graph.num_items != num_items:
            raise ValueError("graph shape does not match the user/item universe")
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        self.graph = graph
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        #: W1 of Eq. (7) in the NGCF paper — transforms aggregated neighbors.
        self.aggregate_transforms = [Linear(embedding_dim, embedding_dim, rng=rng) for _ in range(num_layers)]
        #: W2 — transforms the elementwise affinity term.
        self.affinity_transforms = [Linear(embedding_dim, embedding_dim, rng=rng) for _ in range(num_layers)]
        self._propagation: sp.csr_matrix = graph.symmetric_normalized()
        self._eval_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Embedding propagation
    # ------------------------------------------------------------------
    def propagate(self) -> Tensor:
        """Return the concatenated multi-layer embeddings for users then items."""
        ego = concat([self.user_embedding.weight, self.item_embedding.weight], axis=0)
        layer_outputs: List[Tensor] = [ego]
        current = ego
        for layer in range(self.num_layers):
            aggregated = sparse_matmul(self._propagation, current)
            affinity = aggregated * current
            transformed = self.aggregate_transforms[layer](aggregated) + self.affinity_transforms[layer](affinity)
            current = leaky_relu(transformed, negative_slope=0.2)
            layer_outputs.append(current)
        return concat(layer_outputs, axis=-1)

    def _split(self, embeddings: Tensor) -> tuple:
        users = embeddings[np.arange(self.num_users)]
        items = embeddings[np.arange(self.num_users, self.num_users + self.num_items)]
        return users, items

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        embeddings = self.propagate()
        user_embeddings, item_embeddings = self._split(embeddings)
        users = user_embeddings[batch.users]
        positives = item_embeddings[batch.positive_items]
        negatives = item_embeddings[batch.negative_items]
        positive_scores = (users * positives).sum(axis=-1)
        negative_scores = (users * negatives).sum(axis=-1)
        loss = bpr_loss(positive_scores, negative_scores)
        regularizer = self.regularization(
            [
                self.user_embedding(batch.users),
                self.item_embedding(batch.positive_items),
                self.item_embedding(batch.negative_items),
            ]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        with no_grad():
            self._eval_cache = self.propagate().data

    def invalidate_cache(self) -> None:
        self._eval_cache = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        embeddings = self._eval_cache
        user_vector = embeddings[user]
        item_vectors = embeddings[self.num_users + np.asarray(item_ids, dtype=np.int64)]
        return item_vectors @ user_vector

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        embeddings = self._eval_cache
        user_vectors = embeddings[np.asarray(users, dtype=np.int64)]
        item_vectors = embeddings[self.num_users + np.asarray(item_ids, dtype=np.int64)]
        return user_vectors @ item_vectors.T

    def scoring_factors(self):
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        return self._eval_cache[: self.num_users], self._eval_cache[self.num_users :]

    @property
    def name(self) -> str:
        return "NGCF"
