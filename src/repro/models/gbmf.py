"""GBMF — Group-Buying Matrix Factorization (the paper's intuitive baseline).

GBMF keeps plain MF embeddings but scores a candidate launch with the same
role-weighted prediction GBGCN uses (Eq. 9): the initiator's own interest
plus the average interest of their friends, combined by the role
coefficient ``alpha``.  It is trained with the standard BPR loss over
group-buying behaviors and is the strongest baseline in Table III.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, no_grad, sparse_matmul
from ..graph.social import FriendshipGraph
from ..nn import Embedding, bpr_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import GroupBuyingBatch
from .base import DataMode, RecommenderModel

__all__ = ["GBMF"]


class GBMF(RecommenderModel):
    """MF embeddings + role-weighted friend-average prediction + BPR."""

    data_mode = DataMode.GROUP_BUYING

    def __init__(
        self,
        num_users: int,
        num_items: int,
        friendship: FriendshipGraph,
        embedding_dim: int = 32,
        alpha: float = 0.5,
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if friendship.num_users != num_users:
            raise ValueError("friendship graph does not match the user universe")
        self.embedding_dim = embedding_dim
        self.alpha = alpha
        self.friendship = friendship
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self._social_normalized: sp.csr_matrix = friendship.normalized()
        self._eval_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def friend_average_users(self) -> Tensor:
        """Per-user mean of their friends' embeddings (zero for friendless users)."""
        return sparse_matmul(self._social_normalized, self.user_embedding.weight)

    def score_pairs(self, users: np.ndarray, items: np.ndarray, friend_matrix: Optional[Tensor] = None) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        friend_matrix = friend_matrix if friend_matrix is not None else self.friend_average_users()
        own = (self.user_embedding(users) * self.item_embedding(items)).sum(axis=-1)
        friends = (friend_matrix[users] * self.item_embedding(items)).sum(axis=-1)
        return own * (1.0 - self.alpha) + friends * self.alpha

    def batch_loss(self, batch: GroupBuyingBatch) -> Tensor:
        friend_matrix = self.friend_average_users()
        positive = self.score_pairs(batch.initiators, batch.items, friend_matrix)
        negative = self.score_pairs(batch.initiators, batch.negative_items, friend_matrix)
        loss = bpr_loss(positive, negative)
        regularizer = self.regularization(
            [
                self.user_embedding(batch.initiators),
                self.item_embedding(batch.items),
                self.item_embedding(batch.negative_items),
            ]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        with no_grad():
            self._eval_cache = self.friend_average_users().data

    def invalidate_cache(self) -> None:
        self._eval_cache = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        item_ids = np.asarray(item_ids, dtype=np.int64)
        item_vectors = self.item_embedding.weight.data[item_ids]
        own = item_vectors @ self.user_embedding.weight.data[user]
        friends = item_vectors @ self._eval_cache[user]
        return (1.0 - self.alpha) * own + self.alpha * friends

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        users = np.asarray(users, dtype=np.int64)
        item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
        own = self.user_embedding.weight.data[users] @ item_vectors.T
        friends = self._eval_cache[users] @ item_vectors.T
        return (1.0 - self.alpha) * own + self.alpha * friends

    def scoring_factors(self):
        # The role blend is linear, so it folds into a concatenated factor
        # pair: [(1-a)*u, a*friend_avg(u)] · [v, v].
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        item_vectors = self.item_embedding.weight.data
        user_factors = np.hstack(
            [(1.0 - self.alpha) * self.user_embedding.weight.data, self.alpha * self._eval_cache]
        )
        return user_factors, np.hstack([item_vectors, item_vectors])

    @property
    def name(self) -> str:
        return "GBMF"
