"""Non-personalized popularity baseline.

``ItemPop`` ranks every candidate by its training interaction count.  It is
the standard sanity-check baseline in implicit-feedback evaluation: any
personalized model worth reporting must beat it, and the gap quantifies how
much of a metric is explained by popularity bias in the sampled-negative
protocol.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from ..autograd import Tensor
from ..data.converters import InteractionConversion
from .base import DataMode, RecommenderModel

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch

__all__ = ["ItemPopularity"]


class ItemPopularity(RecommenderModel):
    """Rank items by their (optionally smoothed) training popularity."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions: InteractionConversion,
        smoothing: float = 1.0,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=0.0)
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        counts = np.zeros(num_items, dtype=np.float64)
        items = interactions.pairs[:, 1] if interactions.pairs.size else np.zeros(0, dtype=np.int64)
        np.add.at(counts, items, 1.0)
        #: Log-scaled popularity scores; the log keeps blockbuster items from
        #: dominating tie-breaking noise among the long tail.
        self.scores = np.log(counts + smoothing)

    def batch_loss(self, batch: "InteractionBatch") -> Tensor:
        # The model has no trainable parameters; training it is a no-op.
        return Tensor(0.0)

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        return self.scores[np.asarray(item_ids, dtype=np.int64)]

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        row = self.scores[np.asarray(item_ids, dtype=np.int64)]
        # Read-only view: every row is the same array, with zero copies.
        return np.broadcast_to(row, (users.size, row.size))

    def scoring_factors(self):
        # Popularity is user-independent: a constant 1-dim user factor
        # against the popularity column reproduces every score.
        return (
            np.ones((self.num_users, 1), dtype=np.float64),
            self.scores.reshape(-1, 1).astype(np.float64),
        )

    # ------------------------------------------------------------------
    # Serialization: the popularity vector is the entire model.
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        return {"scores": self.scores}

    def load_extra_state(self, extra: Dict[str, np.ndarray]) -> None:
        scores = np.asarray(extra["scores"], dtype=np.float64)
        if scores.shape != (self.num_items,):
            raise ValueError(
                f"popularity scores shape {scores.shape} does not match ({self.num_items},)"
            )
        self.scores = scores

    @property
    def name(self) -> str:
        return "ItemPop"
