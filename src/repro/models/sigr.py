"""SIGR — Social Influence-based Group Recommender [Yin et al., ICDE 2019].

SIGR learns user social influence with an attention mechanism over the
social network, embeds users and groups through a bipartite graph
(user-item and group-item interactions), and aggregates member embeddings
weighted by their learned influence to represent a group.  Training uses a
pointwise log-loss over positive and sampled negative group-item pairs,
matching the loss the GBGCN paper attributes to SIGR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, concat, no_grad, segment_sum, sparse_matmul
from ..data.converters import FixedGroupDataset
from ..graph.bipartite import BipartiteGraph
from ..graph.social import FriendshipGraph
from ..nn import MLP, Embedding, log_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["SIGR"]


class SIGR(RecommenderModel):
    """Influence-weighted group aggregation with bipartite-graph user embeddings."""

    data_mode = DataMode.FIXED_GROUPS

    def __init__(
        self,
        num_users: int,
        num_items: int,
        groups: FixedGroupDataset,
        friendship: FriendshipGraph,
        interaction_graph: BipartiteGraph,
        embedding_dim: int = 32,
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        self.embedding_dim = embedding_dim
        self.groups = groups
        self.friendship = friendship
        self.interaction_graph = interaction_graph
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self.group_embedding = Embedding(max(groups.num_groups, 1), embedding_dim, rng=rng)
        #: Attention network producing a per-user social-influence logit.
        self.influence_attention = MLP([2 * embedding_dim, embedding_dim, 1], activation="tanh", rng=rng)
        self._social_normalized: sp.csr_matrix = friendship.normalized()
        self._user_to_item: sp.csr_matrix = interaction_graph.user_to_item_propagation()

        members = []
        member_group = []
        for group_index, member_array in enumerate(groups.group_members):
            members.extend(int(u) for u in member_array)
            member_group.extend([group_index] * len(member_array))
        self._members = np.asarray(members, dtype=np.int64)
        self._member_group = np.asarray(member_group, dtype=np.int64)
        self._eval_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    def user_representations(self) -> Tensor:
        """Bipartite-graph enhanced user embeddings (own + consumed-item mean)."""
        consumed_mean = sparse_matmul(self._user_to_item, self.item_embedding.weight)
        return self.user_embedding.weight + consumed_mean

    def influence_logits(self, user_matrix: Tensor) -> Tensor:
        """Per-user social influence from own embedding and friends' mean."""
        friend_mean = sparse_matmul(self._social_normalized, user_matrix)
        features = concat([user_matrix, friend_mean], axis=-1)
        return self.influence_attention(features).reshape(-1)

    def group_representations(self) -> Tensor:
        """Influence-weighted aggregation of member embeddings per group."""
        user_matrix = self.user_representations()
        logits = self.influence_logits(user_matrix)
        member_logits = logits[self._members]
        exp_logits = (member_logits - member_logits.max()).exp()
        denominators = segment_sum(exp_logits.reshape(-1, 1), self._member_group, self.groups.num_groups)
        weights = exp_logits / denominators.reshape(-1)[self._member_group]
        weighted_members = user_matrix[self._members] * weights.reshape(-1, 1)
        aggregated = segment_sum(weighted_members, self._member_group, self.groups.num_groups)
        group_ids = np.arange(self.groups.num_groups, dtype=np.int64)
        return aggregated + self.group_embedding(group_ids)

    def score_pairs(self, group_ids: np.ndarray, item_ids: np.ndarray, group_matrix: Optional[Tensor] = None) -> Tensor:
        group_matrix = group_matrix if group_matrix is not None else self.group_representations()
        group_vectors = group_matrix[np.asarray(group_ids, dtype=np.int64)]
        item_vectors = self.item_embedding(np.asarray(item_ids, dtype=np.int64))
        return (group_vectors * item_vectors).sum(axis=-1)

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        group_matrix = self.group_representations()
        positive = self.score_pairs(batch.users, batch.positive_items, group_matrix)
        negative = self.score_pairs(batch.users, batch.negative_items, group_matrix)
        scores = concat([positive, negative], axis=0)
        labels = np.concatenate([np.ones(len(batch)), np.zeros(len(batch))])
        loss = log_loss(scores, labels)
        regularizer = self.regularization(
            [self.user_embedding(self._members), self.item_embedding(batch.positive_items)]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        with no_grad():
            self._eval_cache = self.group_representations().data

    def invalidate_cache(self) -> None:
        self._eval_cache = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        group = self.groups.group_for_user(user)
        if group < 0:
            user_vector = self.user_embedding.weight.data[user]
            return self.item_embedding.weight.data[item_ids] @ user_vector
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        group_vector = self._eval_cache[group]
        return self.item_embedding.weight.data[item_ids] @ group_vector

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        # Each user scores with their group's representation; cold users
        # (no group history) fall back to their own raw embedding, exactly
        # as in the per-user path.
        groups = np.asarray([self.groups.group_for_user(int(user)) for user in users], dtype=np.int64)
        query_vectors = self.user_embedding.weight.data[users].copy()
        grouped = groups >= 0
        if grouped.any():
            query_vectors[grouped] = self._eval_cache[groups[grouped]]
        return query_vectors @ self.item_embedding.weight.data[item_ids].T

    @property
    def name(self) -> str:
        return "SIGR"
