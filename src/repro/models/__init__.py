"""Baseline models of the paper's Table III plus the model registry."""

from .base import DataMode, RecommenderModel
from .mf import MatrixFactorization
from .ncf import NCF
from .ngcf import NGCF
from .lightgcn import LightGCN
from .popularity import ItemPopularity
from .itemknn import ItemKNN, cosine_item_similarity
from .socialmf import SocialMF
from .diffnet import DiffNet
from .agree import AGREE
from .sigr import SIGR
from .gbmf import GBMF
from .registry import (
    ALL_MODEL_NAMES,
    EXTRA_MODEL_NAMES,
    MODEL_NAMES,
    SERVABLE_MODEL_NAMES,
    ModelSettings,
    build_model,
)

__all__ = [
    "DataMode",
    "RecommenderModel",
    "MatrixFactorization",
    "NCF",
    "NGCF",
    "LightGCN",
    "ItemPopularity",
    "ItemKNN",
    "cosine_item_similarity",
    "SocialMF",
    "DiffNet",
    "AGREE",
    "SIGR",
    "GBMF",
    "MODEL_NAMES",
    "EXTRA_MODEL_NAMES",
    "ALL_MODEL_NAMES",
    "SERVABLE_MODEL_NAMES",
    "ModelSettings",
    "build_model",
]
