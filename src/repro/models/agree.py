"""AGREE — Attentive Group Recommendation [Cao et al., SIGIR 2018].

AGREE represents a group as an attention-weighted aggregation of its
members' embeddings plus a learned group-specific embedding, then scores
group-item pairs with an NCF-style interaction head.  Training uses the
regression-based pairwise loss of the original paper (which the GBGCN
authors point out is one reason for its weak performance on group-buying
data).  At evaluation time a test user is replaced by the fixed group
derived from their group-buying history, as described in Section IV-A1.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autograd import Tensor, concat, no_grad, segment_sum, softmax
from ..data.converters import FixedGroupDataset
from ..nn import MLP, Embedding, Linear, regression_pairwise_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["AGREE"]


class AGREE(RecommenderModel):
    """Attention-aggregated group representations with an NCF-style head."""

    data_mode = DataMode.FIXED_GROUPS

    def __init__(
        self,
        num_users: int,
        num_items: int,
        groups: FixedGroupDataset,
        embedding_dim: int = 32,
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        self.embedding_dim = embedding_dim
        self.groups = groups
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self.group_embedding = Embedding(max(groups.num_groups, 1), embedding_dim, rng=rng)
        #: Attention network scoring (member, item) pairs.
        self.attention = MLP([2 * embedding_dim, embedding_dim, 1], activation="relu", rng=rng)
        #: NCF-style prediction head over (group representation * item).
        self.predictor = MLP([2 * embedding_dim, embedding_dim, 1], activation="relu", rng=rng)

        # Precompute flattened membership arrays for vectorized aggregation.
        members = []
        member_group = []
        for group_index, member_array in enumerate(groups.group_members):
            members.extend(int(u) for u in member_array)
            member_group.extend([group_index] * len(member_array))
        self._members = np.asarray(members, dtype=np.int64)
        self._member_group = np.asarray(member_group, dtype=np.int64)

    # ------------------------------------------------------------------
    # Group representation
    # ------------------------------------------------------------------
    def group_representation(self, group_ids: np.ndarray, item_ids: np.ndarray) -> Tensor:
        """Attention-weighted member aggregation + group-specific embedding.

        ``group_ids`` and ``item_ids`` are aligned arrays: the attention
        weights are conditioned on the candidate item, as in the original
        AGREE formulation.
        """
        group_ids = np.asarray(group_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)

        # Build a flattened (batch-position, member) table.
        rows = []
        member_users = []
        for position, group in enumerate(group_ids):
            member_array = self.groups.group_members[int(group)]
            rows.extend([position] * len(member_array))
            member_users.extend(int(u) for u in member_array)
        rows = np.asarray(rows, dtype=np.int64)
        member_users = np.asarray(member_users, dtype=np.int64)

        member_vectors = self.user_embedding(member_users)
        item_vectors = self.item_embedding(item_ids[rows])
        attention_logits = self.attention(concat([member_vectors, item_vectors], axis=-1)).reshape(-1)

        # Per-position softmax over the ragged member sets via the exp/normalize trick.
        exp_logits = (attention_logits - attention_logits.max()).exp()
        denominators = segment_sum(exp_logits.reshape(-1, 1), rows, len(group_ids)).reshape(-1)
        weights = exp_logits / denominators[rows]
        weighted = member_vectors * weights.reshape(-1, 1)
        aggregated = segment_sum(weighted, rows, len(group_ids))

        return aggregated + self.group_embedding(group_ids)

    def score_pairs(self, group_ids: np.ndarray, item_ids: np.ndarray) -> Tensor:
        group_vectors = self.group_representation(group_ids, item_ids)
        item_vectors = self.item_embedding(np.asarray(item_ids, dtype=np.int64))
        interaction = group_vectors * item_vectors
        features = concat([interaction, item_vectors], axis=-1)
        return self.predictor(features).reshape(-1)

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        positive = self.score_pairs(batch.users, batch.positive_items)
        negative = self.score_pairs(batch.users, batch.negative_items)
        loss = regression_pairwise_loss(positive, negative, margin=1.0)
        regularizer = self.regularization(
            [self.user_embedding(self._members), self.item_embedding(batch.positive_items)]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    # ------------------------------------------------------------------
    # Evaluation: a test user is replaced by their fixed group
    # ------------------------------------------------------------------
    # ``score_batch`` keeps the base per-user fallback on purpose: AGREE's
    # attention weights are conditioned on the candidate item, so there is no
    # user-independent representation to cache, and a flattened (user x item)
    # pass would rebuild the same ragged membership table position by
    # position at the same Python-loop cost.
    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        group = self.groups.group_for_user(user)
        with no_grad():
            if group < 0:
                # Cold user with no group history: fall back to their own embedding.
                user_vector = self.user_embedding.weight.data[user]
                item_vectors = self.item_embedding.weight.data[item_ids]
                return item_vectors @ user_vector
            groups = np.full(item_ids.shape[0], group, dtype=np.int64)
            return self.score_pairs(groups, item_ids).data

    @property
    def name(self) -> str:
        return "AGREE"
