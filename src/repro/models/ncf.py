"""Neural Collaborative Filtering (NCF / NeuMF) [He et al., WWW 2017].

NCF ensembles Generalized Matrix Factorization (an elementwise product
branch) with a Multi-Layer Perceptron over concatenated user/item
embeddings, modelling non-linear user-item interactions.  Following the
paper's experimental setup all ranking baselines are trained with pairwise
ranking over sampled negatives, so NCF's prediction head is used inside a
BPR objective here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor, concat, no_grad
from ..nn import MLP, Embedding, Linear, bpr_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["NCF"]


class NCF(RecommenderModel):
    """NeuMF-style model: GMF branch + MLP branch + fusion layer."""

    data_mode = DataMode.INTERACTIONS_BOTH

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embedding_dim: int = 32,
        mlp_layers: Sequence[int] = (64, 32, 16),
        l2_weight: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        self.embedding_dim = embedding_dim
        # Separate embedding tables per branch, as in the original paper.
        self.gmf_user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.gmf_item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self.mlp_user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.mlp_item_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self.mlp = MLP([2 * embedding_dim, *mlp_layers], activation="relu", rng=rng)
        self.fusion = Linear(embedding_dim + mlp_layers[-1], 1, rng=rng)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = self.gmf_user_embedding(users) * self.gmf_item_embedding(items)
        mlp_input = concat([self.mlp_user_embedding(users), self.mlp_item_embedding(items)], axis=-1)
        mlp_output = self.mlp(mlp_input)
        fused = concat([gmf, mlp_output], axis=-1)
        return self.fusion(fused).reshape(-1)

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        positive = self.score_pairs(batch.users, batch.positive_items)
        negative = self.score_pairs(batch.users, batch.negative_items)
        loss = bpr_loss(positive, negative)
        embedding_terms = [
            self.gmf_user_embedding(batch.users),
            self.gmf_item_embedding(batch.positive_items),
            self.gmf_item_embedding(batch.negative_items),
            self.mlp_user_embedding(batch.users),
            self.mlp_item_embedding(batch.positive_items),
            self.mlp_item_embedding(batch.negative_items),
        ]
        regularizer = self.regularization(embedding_terms) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        item_ids = np.asarray(item_ids, dtype=np.int64)
        users = np.full(item_ids.shape[0], user, dtype=np.int64)
        with no_grad():
            return self.score_pairs(users, item_ids).data

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        # The MLP head is pairwise, so the block is flattened into aligned
        # (user, item) arrays and pushed through one vectorized forward pass.
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        flat_users = np.repeat(users, item_ids.size)
        flat_items = np.tile(item_ids, users.size)
        with no_grad():
            flat_scores = self.score_pairs(flat_users, flat_items).data
        return flat_scores.reshape(users.size, item_ids.size)

    @property
    def name(self) -> str:
        return "NCF"
