"""Matrix Factorization with BPR (the ``MF`` and ``MF(oi)`` rows of Table III).

MF exploits implicit feedback by embedding users and items in a shared
latent space and ranking with the inner product; training minimizes the
Bayesian Personalized Ranking loss over sampled (user, positive, negative)
triples.  The two conversion modes of the paper are selected with
``interaction_mode``: ``'oi'`` keeps only initiator-item interactions,
``'both'`` also uses participant-item interactions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import Embedding, bpr_loss
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import InteractionBatch
from .base import DataMode, RecommenderModel

__all__ = ["MatrixFactorization"]


class MatrixFactorization(RecommenderModel):
    """BPR-MF over flattened user-item interactions."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embedding_dim: int = 32,
        l2_weight: float = 1e-4,
        interaction_mode: str = "both",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_users, num_items, l2_weight=l2_weight)
        if interaction_mode not in ("oi", "both"):
            raise ValueError("interaction_mode must be 'oi' or 'both'")
        self.embedding_dim = embedding_dim
        self.interaction_mode = interaction_mode
        self.data_mode = (
            DataMode.INTERACTIONS_OI if interaction_mode == "oi" else DataMode.INTERACTIONS_BOTH
        )
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Inner-product scores for aligned (user, item) index arrays."""
        user_vectors = self.user_embedding(users)
        item_vectors = self.item_embedding(items)
        return (user_vectors * item_vectors).sum(axis=-1)

    def batch_loss(self, batch: InteractionBatch) -> Tensor:
        # MF is a Table III row: its loss keeps the seed composition (two
        # score_pairs calls) so reproduction trajectories stay bitwise
        # stable; the lookups still emit row-sparse gradients.
        positive = self.score_pairs(batch.users, batch.positive_items)
        negative = self.score_pairs(batch.users, batch.negative_items)
        loss = bpr_loss(positive, negative)
        regularizer = self.regularization(
            [
                self.user_embedding(batch.users),
                self.item_embedding(batch.positive_items),
                self.item_embedding(batch.negative_items),
            ]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        with no_grad():
            user_vector = self.user_embedding.weight.data[user]
            item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
            return item_vectors @ user_vector

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        user_vectors = self.user_embedding.weight.data[np.asarray(users, dtype=np.int64)]
        item_vectors = self.item_embedding.weight.data[np.asarray(item_ids, dtype=np.int64)]
        return user_vectors @ item_vectors.T

    def scoring_factors(self):
        return self.user_embedding.weight.data, self.item_embedding.weight.data

    @property
    def name(self) -> str:
        return "MF(oi)" if self.interaction_mode == "oi" else "MF"
