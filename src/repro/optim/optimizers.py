"""Optimizers: SGD (with optional momentum), Adam, Adagrad and RMSprop.

The paper pre-trains the raw embeddings with Adam and fine-tunes the full
GBGCN with vanilla SGD "to avoid the problem of loss of momentum
information" (Section III-C3); both optimizers are provided here together
with global-norm gradient clipping.  Adagrad and RMSprop are included for
the optimizer-sensitivity ablations (several baselines the paper cites were
originally tuned with them).

Row-sparse gradients
--------------------
Embedding lookups emit :class:`~repro.autograd.RowSparseGrad` (unique
touched rows + per-row values) instead of a dense full-table gradient.
Every optimizer has a row-sliced fast path for that representation, so a
``step()`` costs ``O(rows touched)`` rather than ``O(table)``:

* **SGD** (no momentum) and **Adagrad** update touched rows exactly as the
  dense oracle would — untouched rows receive a zero update there, so the
  trajectories are identical.  SGD *with* momentum densifies (the velocity
  of every row decays each step).
* **Adam** and **RMSprop** accept ``lazy=True`` to use *lazily-corrected*
  per-row moments: each row remembers the step at which it was last
  touched and catches up the missed ``beta2``/``alpha`` decay in one
  multiply when touched again.  Untouched rows are not stepped at all
  (lazy-Adam semantics: dense Adam would keep nudging them as the first
  moment decays; skipping that is what makes the step sub-linear in table
  size).  The default (``lazy=False``) densifies sparse gradients so the
  trajectory stays exactly the dense oracle's — the reproduction
  experiments depend on that; opt into ``lazy`` for throughput.
* A nonzero ``weight_decay`` densifies every sparse fast path: the decay
  term mathematically touches all rows each step, so a row-sliced update
  would silently change the training trajectory (``torch.optim.SparseAdam``
  rejects the combination outright for the same reason).

Optimizer state is keyed by the parameter's *position* in the parameter
list — never by ``id()``, which the allocator reuses after garbage
collection and which could silently alias moment state across unrelated
parameters.  The state is inspectable/restorable through ``state_dict`` /
``load_state_dict``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from ..autograd import RowSparseGrad
from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "RMSprop", "clip_grad_norm"]


def _grad_squared_sum(grad) -> float:
    """Total squared entries of a dense or row-sparse gradient.

    Sparse gradients are densified for the reduction: NumPy's pairwise
    summation groups addends by array position, so summing the compacted
    value block directly would round differently from the dense oracle in
    the last ulp.  Scaling (the expensive repeated part) stays sparse.
    """
    if isinstance(grad, RowSparseGrad):
        grad = grad.to_dense()
    return float((grad ** 2).sum())


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Handles dense and row-sparse gradients; sparse gradients are scaled on
    their value blocks only.  Returns the norm before clipping (useful for
    monitoring).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(_grad_squared_sum(p.grad) for p in parameters)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            if isinstance(parameter.grad, RowSparseGrad):
                parameter.grad.scale_(scale)
            else:
                parameter.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate.

    Subclasses keep their per-parameter state in ``self._state[index]``
    (one dict per parameter, aligned with ``self.parameters``) and reuse
    ``_apply_weight_decay`` for the dense decoupled-L2 term, which composes
    into a persistent scratch buffer instead of allocating a fresh
    ``wd * data`` temporary every step.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.weight_decay = 0.0
        self._step_count = 0
        self._state: List[Dict[str, np.ndarray]] = [{} for _ in self.parameters]
        self._decay_scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State inspection / restoration
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Copies of all per-parameter state, keyed by parameter index."""
        return {
            "step_count": self._step_count,
            "param_state": [
                {key: value.copy() if isinstance(value, np.ndarray) else value for key, value in state.items()}
                for state in self._state
            ],
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` (index-aligned)."""
        param_state = payload["param_state"]
        if len(param_state) != len(self.parameters):
            raise ValueError(
                f"state for {len(param_state)} parameters cannot be loaded into "
                f"an optimizer holding {len(self.parameters)}"
            )
        self._step_count = int(payload["step_count"])
        self._state = [
            {key: value.copy() if isinstance(value, np.ndarray) else value for key, value in state.items()}
            for state in param_state
        ]

    # ------------------------------------------------------------------
    # Shared update helpers
    # ------------------------------------------------------------------
    def _apply_weight_decay(self, index: int, parameter: Parameter, gradient: np.ndarray) -> np.ndarray:
        """Dense ``gradient + weight_decay * parameter.data`` without the
        per-step temporary: the product lands in a persistent per-parameter
        scratch buffer (float addition is commutative bitwise, so composing
        ``wd * data`` first is identical to the naive expression)."""
        if not self.weight_decay:
            return gradient
        buffer = self._decay_scratch[index]
        if buffer is None or buffer.shape != parameter.data.shape:
            buffer = np.empty_like(parameter.data)
            self._decay_scratch[index] = buffer
        np.multiply(parameter.data, self.weight_decay, out=buffer)
        buffer += gradient
        return buffer

    @staticmethod
    def _per_row(steps: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape a per-row integer vector to broadcast over value blocks."""
        return steps.reshape((-1,) + (1,) * (ndim - 1))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._step_count += 1
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if gradient is None:
                continue
            if isinstance(gradient, RowSparseGrad):
                if self.momentum or self.weight_decay:
                    # Momentum decays every row's velocity and weight decay
                    # touches every row each step, so a row-sliced update
                    # would diverge from the oracle trajectory.
                    gradient = gradient.to_dense()
                else:
                    rows = gradient.indices
                    if rows.size:
                        parameter.data[rows] -= self.lr * gradient.values
                    continue
            gradient = self._apply_weight_decay(index, parameter, gradient)
            if self.momentum:
                state = self._state[index]
                velocity = state.get("velocity")
                if velocity is None:
                    # Copy: the gradient may live in the decay scratch
                    # buffer (reused next step) or in parameter.grad.
                    velocity = gradient.copy()
                else:
                    velocity *= self.momentum
                    velocity += gradient
                state["velocity"] = velocity
                update = velocity
            else:
                update = gradient
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam [Kingma & Ba, 2015], with opt-in lazy per-row sparse moments."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        lazy: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.lazy = lazy

    def _moment_state(self, index: int, parameter: Parameter, lazy: bool) -> Dict[str, np.ndarray]:
        state = self._state[index]
        if "first" not in state:
            state["first"] = np.zeros_like(parameter.data)
            state["second"] = np.zeros_like(parameter.data)
        if lazy and "last_step" not in state:
            # Dense history (if any) already decayed every row through the
            # previous step, so lazy tracking starts there — starting at 0
            # would double-apply that decay on the first sparse touch.
            state["last_step"] = np.full(
                parameter.data.shape[0], self._step_count - 1, dtype=np.int64
            )
        return state

    def step(self) -> None:
        self._step_count += 1
        step = self._step_count
        bias1 = 1.0 - self.beta1 ** step
        bias2 = 1.0 - self.beta2 ** step
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if gradient is None:
                continue
            if isinstance(gradient, RowSparseGrad):
                if self.weight_decay or not self.lazy:
                    # Weight decay updates every row each step (like
                    # torch.optim.SparseAdam, which rejects it outright),
                    # and without the lazy opt-in the trajectory must stay
                    # exactly the dense oracle's.
                    gradient = gradient.to_dense()
                else:
                    state = self._moment_state(index, parameter, lazy=True)
                    rows = gradient.indices
                    if not rows.size:
                        continue
                    values = gradient.values
                    first, second, last_step = state["first"], state["second"], state["last_step"]
                    # One multiply catches up the exponential decay the rows
                    # missed while untouched *and* applies this step's decay:
                    # first_t = beta1^(t-s) * first_s + (1-beta1) * g.
                    exponent = self._per_row(step - last_step[rows], parameter.data.ndim)
                    first_rows = first[rows] * self.beta1 ** exponent + (1 - self.beta1) * values
                    second_rows = second[rows] * self.beta2 ** exponent + (1 - self.beta2) * values ** 2
                    first[rows] = first_rows
                    second[rows] = second_rows
                    last_step[rows] = step
                    corrected_first = first_rows / bias1
                    corrected_second = second_rows / bias2
                    parameter.data[rows] -= self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)
                    continue
            state = self._moment_state(index, parameter, lazy=False)
            gradient = self._apply_weight_decay(index, parameter, gradient)
            last_step = state.get("last_step")
            if last_step is not None:
                # A dense step after sparse history: reconcile every row
                # first so the moments match their lazily-decayed values.
                missed = self._per_row(step - 1 - last_step, parameter.data.ndim)
                state["first"] *= self.beta1 ** missed
                state["second"] *= self.beta2 ** missed
                last_step[:] = step
            first = self.beta1 * state["first"] + (1 - self.beta1) * gradient
            second = self.beta2 * state["second"] + (1 - self.beta2) * gradient ** 2
            state["first"] = first
            state["second"] = second
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data = parameter.data - self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)


class Adagrad(Optimizer):
    """Adagrad [Duchi et al., 2011]: per-parameter learning rates from the
    accumulated squared gradient.

    The row-sparse step matches the dense trajectory exactly: Adagrad has
    no state decay, and untouched rows receive a zero update either way.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._step_count += 1
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if gradient is None:
                continue
            state = self._state[index]
            if isinstance(gradient, RowSparseGrad):
                if self.weight_decay:
                    # Weight decay touches every row each step: keep the
                    # dense trajectory.
                    gradient = gradient.to_dense()
                else:
                    rows = gradient.indices
                    if not rows.size:
                        continue
                    accumulator = state.get("accumulator")
                    if accumulator is None:
                        accumulator = state["accumulator"] = np.zeros_like(parameter.data)
                    values = gradient.values
                    accumulator[rows] += values ** 2
                    parameter.data[rows] -= self.lr * values / (np.sqrt(accumulator[rows]) + self.eps)
                    continue
            gradient = self._apply_weight_decay(index, parameter, gradient)
            accumulator = state.get("accumulator")
            accumulator = accumulator + gradient ** 2 if accumulator is not None else gradient ** 2
            state["accumulator"] = accumulator
            parameter.data = parameter.data - self.lr * gradient / (np.sqrt(accumulator) + self.eps)


class RMSprop(Optimizer):
    """RMSprop [Tieleman & Hinton, 2012]: exponentially decayed squared-gradient
    normalization, with opt-in lazily-decayed per-row sparse averages."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        lazy: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must lie in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self.lazy = lazy

    def step(self) -> None:
        self._step_count += 1
        step = self._step_count
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if gradient is None:
                continue
            state = self._state[index]
            if isinstance(gradient, RowSparseGrad):
                if self.weight_decay or not self.lazy:
                    # Weight decay touches every row each step, and without
                    # the lazy opt-in the trajectory must stay exactly the
                    # dense oracle's.
                    gradient = gradient.to_dense()
                else:
                    rows = gradient.indices
                    if not rows.size:
                        continue
                    average = state.get("square_average")
                    if average is None:
                        average = state["square_average"] = np.zeros_like(parameter.data)
                    if "last_step" not in state:
                        # Dense history already decayed every row through the
                        # previous step; lazy tracking resumes from there.
                        state["last_step"] = np.full(
                            parameter.data.shape[0], step - 1, dtype=np.int64
                        )
                    values = gradient.values
                    last_step = state["last_step"]
                    exponent = self._per_row(step - last_step[rows], parameter.data.ndim)
                    average[rows] = average[rows] * self.alpha ** exponent + (1 - self.alpha) * values ** 2
                    last_step[rows] = step
                    parameter.data[rows] -= self.lr * values / (np.sqrt(average[rows]) + self.eps)
                    continue
            gradient = self._apply_weight_decay(index, parameter, gradient)
            average = state.get("square_average")
            last_step = state.get("last_step")
            if last_step is not None:
                missed = self._per_row(step - 1 - last_step, parameter.data.ndim)
                state["square_average"] *= self.alpha ** missed
                last_step[:] = step
                average = state["square_average"]
            average = (
                self.alpha * average + (1 - self.alpha) * gradient ** 2
                if average is not None
                else (1 - self.alpha) * gradient ** 2
            )
            state["square_average"] = average
            parameter.data = parameter.data - self.lr * gradient / (np.sqrt(average) + self.eps)
