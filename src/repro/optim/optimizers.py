"""Optimizers: SGD (with optional momentum), Adam, Adagrad and RMSprop.

The paper pre-trains the raw embeddings with Adam and fine-tunes the full
GBGCN with vanilla SGD "to avoid the problem of loss of momentum
information" (Section III-C3); both optimizers are provided here together
with global-norm gradient clipping.  Adagrad and RMSprop are included for
the optimizer-sensitivity ablations (several baselines the paper cites were
originally tuned with them).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "RMSprop", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for monitoring).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                velocity = self.momentum * velocity + gradient if velocity is not None else gradient
                self._velocity[id(parameter)] = velocity
                update = velocity
            else:
                update = gradient
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer [Kingma & Ba, 2015]."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            first = self.beta1 * first + (1 - self.beta1) * gradient if first is not None else (1 - self.beta1) * gradient
            second = (
                self.beta2 * second + (1 - self.beta2) * gradient ** 2
                if second is not None
                else (1 - self.beta2) * gradient ** 2
            )
            self._first_moment[key] = first
            self._second_moment[key] = second
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data = parameter.data - self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)


class Adagrad(Optimizer):
    """Adagrad [Duchi et al., 2011]: per-parameter learning rates from the
    accumulated squared gradient."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.eps = eps
        self.weight_decay = weight_decay
        self._accumulator: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            accumulated = self._accumulator.get(key)
            accumulated = accumulated + gradient ** 2 if accumulated is not None else gradient ** 2
            self._accumulator[key] = accumulated
            parameter.data = parameter.data - self.lr * gradient / (np.sqrt(accumulated) + self.eps)


class RMSprop(Optimizer):
    """RMSprop [Tieleman & Hinton, 2012]: exponentially decayed squared-gradient
    normalization."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must lie in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_average: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            average = self._square_average.get(key)
            average = (
                self.alpha * average + (1 - self.alpha) * gradient ** 2
                if average is not None
                else (1 - self.alpha) * gradient ** 2
            )
            self._square_average[key] = average
            parameter.data = parameter.data - self.lr * gradient / (np.sqrt(average) + self.eps)
