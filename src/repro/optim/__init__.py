"""Optimization algorithms and learning-rate schedules."""

from .optimizers import Adagrad, Adam, Optimizer, RMSprop, SGD, clip_grad_norm
from .schedulers import ConstantLR, ExponentialLR, LRScheduler, StepLR

__all__ = [
    "Adagrad",
    "Adam",
    "Optimizer",
    "RMSprop",
    "SGD",
    "clip_grad_norm",
    "ConstantLR",
    "ExponentialLR",
    "LRScheduler",
    "StepLR",
]
