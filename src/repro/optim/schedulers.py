"""Learning-rate schedulers for the training harness."""

from __future__ import annotations

from .optimizers import Optimizer

__all__ = ["LRScheduler", "StepLR", "ExponentialLR", "ConstantLR"]


class LRScheduler:
    """Base scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.compute_lr(self.epoch)
        return self.optimizer.lr

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (the paper's default behaviour)."""

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** epoch)
