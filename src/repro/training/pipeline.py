"""End-to-end training pipelines.

* :func:`train_model` — generic "build iterator, train, return history"
  helper used for every baseline.
* :func:`train_gbgcn_with_pretraining` — the two-stage pipeline of
  Section III-C3: Adam pre-training of the raw embeddings with the
  propagation layers removed, L2 normalization, then SGD fine-tuning of
  the full GBGCN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.gbgcn import GBGCN, GBGCNConfig
from ..core.pretrain import GBGCNPretrainModel, transfer_pretrained_embeddings
from ..data.dataset import GroupBuyingDataset
from ..data.splits import DatasetSplit
from ..eval.protocol import LeaveOneOutEvaluator
from ..graph.hetero import build_hetero_graph
from ..models.base import RecommenderModel
from ..optim import SGD, Adam
from ..utils.logging import get_logger
from .factory import build_batch_iterator
from .trainer import Trainer, TrainingHistory

__all__ = ["TrainingSettings", "train_model", "train_gbgcn_with_pretraining"]

logger = get_logger("training.pipeline")


@dataclass
class TrainingSettings:
    """Knobs of the training pipelines (paper defaults, CPU-sized epochs)."""

    num_epochs: int = 30
    batch_size: int = 1024
    learning_rate: float = 0.01
    #: The paper searches SGD learning rates in {10, 3, 1, 0.3}; 10 is what
    #: the short CPU budgets here need to move the FC layers meaningfully.
    sgd_learning_rate: float = 10.0
    pretrain_epochs: int = 10
    weight_decay: float = 0.0
    grad_clip: float = 10.0
    patience: Optional[int] = None
    validate_every: int = 1
    selection_metric: str = "Recall@10"
    seed: int = 0


def train_model(
    model: RecommenderModel,
    train_dataset: GroupBuyingDataset,
    evaluator: Optional[LeaveOneOutEvaluator] = None,
    settings: Optional[TrainingSettings] = None,
) -> TrainingHistory:
    """Train ``model`` on ``train_dataset`` with Adam and return the history."""
    settings = settings or TrainingSettings()
    iterator = build_batch_iterator(
        model, train_dataset, batch_size=settings.batch_size, seed=settings.seed
    )
    optimizer = Adam(model.parameters(), lr=settings.learning_rate, weight_decay=settings.weight_decay)
    trainer = Trainer(
        model,
        optimizer,
        iterator,
        evaluator=evaluator,
        selection_metric=settings.selection_metric,
        grad_clip=settings.grad_clip,
        patience=settings.patience,
        validate_every=settings.validate_every,
    )
    return trainer.fit(settings.num_epochs)


def train_gbgcn_with_pretraining(
    split: DatasetSplit,
    config: Optional[GBGCNConfig] = None,
    settings: Optional[TrainingSettings] = None,
    evaluator: Optional[LeaveOneOutEvaluator] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[GBGCN, TrainingHistory, TrainingHistory]:
    """The full two-stage GBGCN pipeline of the paper.

    Returns the fine-tuned model together with the pre-training and
    fine-tuning histories.
    """
    settings = settings or TrainingSettings()
    config = config or GBGCNConfig()
    rng = rng or np.random.default_rng(settings.seed)
    train_dataset = split.train
    graph = build_hetero_graph(train_dataset)

    # Stage 1: Adam pre-training of the raw embeddings without propagation.
    pretrain_model = GBGCNPretrainModel(
        train_dataset.num_users, train_dataset.num_items, graph, config=config, rng=rng
    )
    pretrain_iterator = build_batch_iterator(
        pretrain_model, train_dataset, batch_size=settings.batch_size, seed=settings.seed
    )
    pretrain_optimizer = Adam(pretrain_model.parameters(), lr=settings.learning_rate)
    pretrain_trainer = Trainer(
        pretrain_model,
        pretrain_optimizer,
        pretrain_iterator,
        evaluator=None,
        grad_clip=settings.grad_clip,
    )
    pretrain_history = pretrain_trainer.fit(settings.pretrain_epochs)
    pretrain_model.normalize_embeddings()
    logger.info("pre-training finished: %d epochs", pretrain_history.num_epochs)

    # Stage 2: SGD fine-tuning of the full model initialized from stage 1.
    model = GBGCN(train_dataset.num_users, train_dataset.num_items, graph, config=config, rng=rng)
    transfer_pretrained_embeddings(pretrain_model, model)
    finetune_iterator = build_batch_iterator(
        model, train_dataset, batch_size=settings.batch_size, seed=settings.seed + 1
    )
    finetune_optimizer = SGD(model.parameters(), lr=settings.sgd_learning_rate)
    finetune_trainer = Trainer(
        model,
        finetune_optimizer,
        finetune_iterator,
        evaluator=evaluator,
        selection_metric=settings.selection_metric,
        grad_clip=settings.grad_clip,
        patience=settings.patience,
        validate_every=settings.validate_every,
    )
    finetune_history = finetune_trainer.fit(settings.num_epochs)
    logger.info("fine-tuning finished: %d epochs", finetune_history.num_epochs)
    return model, finetune_history, pretrain_history
