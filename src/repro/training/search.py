"""Hyper-parameter grid search.

The paper tunes every method on the validation set over explicit grids
(learning rate, regularization coefficient, the role coefficient alpha,
the loss coefficient beta, ...).  This module provides the generic search
loop: expand a grid, build/train one model per configuration via the
registry, evaluate each on the validation holdout and report the winner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence

from ..data.splits import DatasetSplit
from ..eval.protocol import LeaveOneOutEvaluator
from ..models.registry import ModelSettings, build_model
from ..utils.logging import get_logger
from ..utils.tables import format_table
from .pipeline import TrainingSettings, train_model

__all__ = ["GridSearchEntry", "GridSearchResult", "parameter_grid", "grid_search"]

logger = get_logger("training.search")


def parameter_grid(grid: Dict[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand ``{"alpha": [0.4, 0.6], "beta": [0.05]}`` into all combinations.

    Combinations are emitted in a deterministic order (keys sorted, values
    in the given order) so a search is reproducible across runs.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        if not grid[key]:
            raise ValueError(f"parameter '{key}' has an empty candidate list")
    combinations = itertools.product(*(grid[key] for key in keys))
    return [dict(zip(keys, values)) for values in combinations]


@dataclass
class GridSearchEntry:
    """One evaluated configuration."""

    parameters: Dict[str, Any]
    validation_metrics: Dict[str, float]

    def metric(self, name: str) -> float:
        return self.validation_metrics.get(name, 0.0)


@dataclass
class GridSearchResult:
    """All evaluated configurations plus the selected one."""

    model_name: str
    selection_metric: str
    entries: List[GridSearchEntry] = field(default_factory=list)

    @property
    def best(self) -> GridSearchEntry:
        if not self.entries:
            raise ValueError("the search evaluated no configuration")
        return max(self.entries, key=lambda entry: entry.metric(self.selection_metric))

    @property
    def best_parameters(self) -> Dict[str, Any]:
        return self.best.parameters

    @property
    def best_metric(self) -> float:
        return self.best.metric(self.selection_metric)

    def format(self) -> str:
        """Render the searched configurations as a text table."""
        parameter_names = sorted({name for entry in self.entries for name in entry.parameters})
        headers = parameter_names + [self.selection_metric]
        rows = [
            [entry.parameters.get(name, "") for name in parameter_names]
            + [entry.metric(self.selection_metric)]
            for entry in self.entries
        ]
        return format_table(headers, rows)


def _apply_parameters(settings: ModelSettings, parameters: Dict[str, Any]) -> ModelSettings:
    """Return a copy of ``settings`` with ``parameters`` applied.

    Unknown keys raise immediately: silently ignoring a typo like
    ``"lerning_rate"`` would make the whole search meaningless.
    """
    known = {f.name for f in fields(ModelSettings)}
    unknown = set(parameters) - known
    if unknown:
        raise ValueError(f"unknown ModelSettings field(s): {sorted(unknown)}; known: {sorted(known)}")
    return replace(settings, **parameters)


def grid_search(
    model_name: str,
    split: DatasetSplit,
    grid: Dict[str, Sequence[Any]],
    base_settings: Optional[ModelSettings] = None,
    training: Optional[TrainingSettings] = None,
    evaluator: Optional[LeaveOneOutEvaluator] = None,
    selection_metric: str = "Recall@10",
) -> GridSearchResult:
    """Train ``model_name`` once per grid point and pick the best validation score.

    Parameters map onto :class:`~repro.models.registry.ModelSettings`
    fields (``embedding_dim``, ``num_layers``, ``l2_weight``, ``alpha``,
    ``beta``, ``social_weight``, ``seed``).  Training-loop knobs stay fixed
    at ``training`` for every configuration, exactly like the paper's
    protocol of tuning model hyper-parameters at a fixed budget.
    """
    base_settings = base_settings or ModelSettings()
    training = training or TrainingSettings()
    evaluator = evaluator or LeaveOneOutEvaluator(split)

    result = GridSearchResult(model_name=model_name, selection_metric=selection_metric)
    for parameters in parameter_grid(grid):
        settings = _apply_parameters(base_settings, parameters)
        model = build_model(model_name, split.train, settings=settings)
        train_model(model, split.train, evaluator=None, settings=training)
        metrics = evaluator.evaluate_validation(model).metrics
        result.entries.append(GridSearchEntry(parameters=parameters, validation_metrics=metrics))
        logger.info(
            "%s %s -> %s=%.4f",
            model_name,
            parameters,
            selection_metric,
            metrics.get(selection_metric, 0.0),
        )
    return result
