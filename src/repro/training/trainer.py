"""Generic mini-batch trainer with validation-based model selection.

The paper trains every model for up to 500 epochs and keeps the epoch that
performs best on the validation set; :class:`Trainer` implements exactly
that loop (with optional early stopping so CPU runs stay affordable) for
any :class:`~repro.models.base.RecommenderModel` and any batch iterator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..eval.protocol import LeaveOneOutEvaluator
from ..models.base import RecommenderModel
from ..optim import Optimizer, clip_grad_norm
from ..utils.logging import get_logger
from ..utils.timer import Timer
from .callbacks import Callback, CallbackList

__all__ = ["EpochRecord", "TrainingHistory", "Trainer"]

logger = get_logger("training")


@dataclass
class EpochRecord:
    """Loss and (optional) validation metric of one epoch."""

    epoch: int
    mean_loss: float
    validation_metric: Optional[float] = None
    seconds: float = 0.0


@dataclass
class TrainingHistory:
    """Per-epoch records plus the index of the selected (best) epoch."""

    records: List[EpochRecord] = field(default_factory=list)
    best_epoch: int = -1
    best_metric: float = -np.inf

    @property
    def num_epochs(self) -> int:
        return len(self.records)

    def losses(self) -> List[float]:
        return [record.mean_loss for record in self.records]


class Trainer:
    """Runs epochs of ``model.batch_loss`` / ``optimizer.step`` with selection."""

    def __init__(
        self,
        model: RecommenderModel,
        optimizer: Optimizer,
        batch_iterator,
        evaluator: Optional[LeaveOneOutEvaluator] = None,
        selection_metric: str = "Recall@10",
        grad_clip: float = 0.0,
        patience: Optional[int] = None,
        validate_every: int = 1,
        callbacks: Optional[List[Callback]] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.batch_iterator = batch_iterator
        self.evaluator = evaluator
        self.selection_metric = selection_metric
        self.grad_clip = grad_clip
        self.patience = patience
        self.validate_every = max(1, validate_every)
        self.callbacks = CallbackList(callbacks)
        self._best_state: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Core loops
    # ------------------------------------------------------------------
    def train_epoch(self) -> float:
        """One pass over the batch iterator; returns the mean batch loss."""
        self.model.train()
        losses: List[float] = []
        for batch in self.batch_iterator:
            self.optimizer.zero_grad()
            loss = self.model.batch_loss(batch)
            loss.backward()
            if self.grad_clip > 0:
                clip_grad_norm(self.optimizer.parameters, self.grad_clip)
            self.optimizer.step()
            losses.append(float(loss.data))
        self.model.invalidate_cache()
        return float(np.mean(losses)) if losses else 0.0

    def fit(self, num_epochs: int) -> TrainingHistory:
        """Train for ``num_epochs`` epochs with validation-based selection."""
        history = TrainingHistory()
        epochs_without_improvement = 0
        timer = Timer()
        self.callbacks.on_train_begin(self)

        for epoch in range(1, num_epochs + 1):
            with timer.time("epoch"):
                mean_loss = self.train_epoch()

            validation_metric: Optional[float] = None
            if self.evaluator is not None and epoch % self.validate_every == 0:
                result = self.evaluator.evaluate_validation(self.model)
                validation_metric = result.metrics.get(self.selection_metric, 0.0)
                if validation_metric > history.best_metric:
                    history.best_metric = validation_metric
                    history.best_epoch = epoch
                    self._best_state = self.model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1

            record = EpochRecord(
                epoch=epoch,
                mean_loss=mean_loss,
                validation_metric=validation_metric,
                # This epoch's own duration — the running mean would make
                # every record after epoch 1 wrong in history/Table-IV
                # outputs and callbacks.
                seconds=timer.last("epoch"),
            )
            history.records.append(record)
            self.callbacks.on_epoch_end(self, record)
            logger.debug(
                "epoch %d/%d loss=%.4f validation=%s",
                epoch,
                num_epochs,
                mean_loss,
                f"{validation_metric:.4f}" if validation_metric is not None else "-",
            )

            if self.patience is not None and epochs_without_improvement >= self.patience:
                logger.info("early stopping at epoch %d (no improvement for %d validations)", epoch, self.patience)
                break

        self.restore_best()
        self.callbacks.on_train_end(self, history)
        return history

    def restore_best(self, checkpoint_path=None, dataset=None) -> None:
        """Load the parameters of the best validation epoch, if any were saved.

        An explicit ``checkpoint_path`` always wins: the parameters are
        restored from that model artifact (written by
        :class:`ModelCheckpoint` / ``repro.persist.save_model``); pass the
        training ``dataset`` as well to verify the artifact's schema
        fingerprint before loading.  Without a path, the in-memory best
        state tracked during :meth:`fit` is restored — or nothing happens
        when none was tracked, so the implicit end-of-``fit`` restore never
        overwrites freshly trained weights with an old artifact from disk.
        """
        if checkpoint_path is not None:
            from ..persist import load_state_into

            load_state_into(self.model, checkpoint_path, dataset=dataset)
            return
        if self._best_state is not None:
            # load_state_dict invalidates the model's evaluation cache itself.
            self.model.load_state_dict(self._best_state)
