"""Mini-batch construction (Section III-C2 of the paper).

Two batch shapes exist:

* :class:`InteractionBatch` — ``(user, positive item, negative item)``
  triples used by the CF / social / group baselines;
* :class:`GroupBuyingBatch` — full group-buying behaviors with their
  success flag, participants, the initiator's friends and one sampled
  negative item per behavior, used by GBMF and GBGCN (whose fine-grained
  loss needs the participants of successful behaviors and the friends of
  initiators of failed behaviors).

Ragged structures (participants, friends) are stored flattened together
with a segment index so losses can be computed fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..data.converters import FixedGroupDataset, InteractionConversion
from ..data.dataset import GroupBuyingDataset
from ..data.negative_sampling import TrainingNegativeSampler
from ..utils.rng import make_rng

__all__ = [
    "InteractionBatch",
    "GroupBuyingBatch",
    "InteractionBatchIterator",
    "GroupBuyingBatchIterator",
    "FixedGroupBatchIterator",
]


@dataclass
class InteractionBatch:
    """``(user, positive, negative)`` triples for pairwise ranking losses."""

    users: np.ndarray
    positive_items: np.ndarray
    negative_items: np.ndarray

    def __len__(self) -> int:
        return int(self.users.shape[0])


@dataclass
class GroupBuyingBatch:
    """A batch of group-buying behaviors with the context their losses need."""

    #: Initiators, target items, sampled negatives and success flags, all ``(B,)``.
    initiators: np.ndarray
    items: np.ndarray
    negative_items: np.ndarray
    success: np.ndarray

    #: Participants of *successful* behaviors, flattened; ``participant_segment``
    #: maps each entry back to its behavior's row index in the batch.
    participants: np.ndarray
    participant_segment: np.ndarray

    #: Friends of initiators of *failed* behaviors, flattened with segments.
    failed_friends: np.ndarray
    failed_friend_segment: np.ndarray

    def __len__(self) -> int:
        return int(self.initiators.shape[0])

    @property
    def num_successful(self) -> int:
        return int(self.success.sum())

    @property
    def num_failed(self) -> int:
        return len(self) - self.num_successful


class InteractionBatchIterator:
    """Shuffled epochs of :class:`InteractionBatch` over flattened interactions."""

    def __init__(
        self,
        conversion: InteractionConversion,
        sampler: TrainingNegativeSampler,
        batch_size: int = 4096,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.conversion = conversion
        self.sampler = sampler
        self.batch_size = batch_size
        self._rng = make_rng(seed)

    def __iter__(self) -> Iterator[InteractionBatch]:
        pairs = self.conversion.pairs
        if pairs.shape[0] == 0:
            return
        order = self._rng.permutation(pairs.shape[0])
        for start in range(0, len(order), self.batch_size):
            chunk = pairs[order[start : start + self.batch_size]]
            users = chunk[:, 0]
            positives = chunk[:, 1]
            negatives = self.sampler.sample_batch(users, count=1)[:, 0]
            yield InteractionBatch(users=users, positive_items=positives, negative_items=negatives)

    def num_batches(self) -> int:
        return int(np.ceil(self.conversion.pairs.shape[0] / self.batch_size))


class FixedGroupBatchIterator:
    """Batches of ``(group, positive, negative)`` triples for AGREE / SIGR."""

    def __init__(
        self,
        groups: FixedGroupDataset,
        batch_size: int = 4096,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.groups = groups
        self.batch_size = batch_size
        self._rng = make_rng(seed)
        self._group_items: Dict[int, set] = {}
        for group, item in groups.group_item_pairs:
            self._group_items.setdefault(int(group), set()).add(int(item))

    def _sample_negative(self, group: int) -> int:
        observed = self._group_items.get(group, set())
        while True:
            candidate = int(self._rng.integers(self.groups.num_items))
            if candidate not in observed:
                return candidate

    def __iter__(self) -> Iterator[InteractionBatch]:
        pairs = self.groups.group_item_pairs
        if pairs.shape[0] == 0:
            return
        order = self._rng.permutation(pairs.shape[0])
        for start in range(0, len(order), self.batch_size):
            chunk = pairs[order[start : start + self.batch_size]]
            groups = chunk[:, 0]
            positives = chunk[:, 1]
            negatives = np.array([self._sample_negative(int(g)) for g in groups], dtype=np.int64)
            yield InteractionBatch(users=groups, positive_items=positives, negative_items=negatives)

    def num_batches(self) -> int:
        return int(np.ceil(self.groups.group_item_pairs.shape[0] / self.batch_size))


class GroupBuyingBatchIterator:
    """Shuffled epochs of :class:`GroupBuyingBatch` over raw behaviors."""

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        sampler: TrainingNegativeSampler,
        batch_size: int = 4096,
        seed: int = 0,
        max_failed_friends: int = 20,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.sampler = sampler
        self.batch_size = batch_size
        self.max_failed_friends = max_failed_friends
        self._rng = make_rng(seed)
        self._friend_lists = dataset.friend_lists()
        # Columnar views of the (immutable) behavior list, built once so
        # each batch is a handful of fancy-index gathers instead of a
        # Python loop over behavior objects.
        behaviors = dataset.behaviors
        self._initiators = np.asarray([b.initiator for b in behaviors], dtype=np.int64)
        self._items = np.asarray([b.item for b in behaviors], dtype=np.int64)
        self._success = np.asarray([b.is_successful for b in behaviors], dtype=bool)
        counts = np.asarray([len(b.participants) for b in behaviors], dtype=np.int64)
        self._participant_counts = counts
        self._participant_offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
        self._participant_flat = np.asarray(
            [p for b in behaviors for p in b.participants], dtype=np.int64
        )

    def _build_batch(self, behavior_indices: np.ndarray) -> GroupBuyingBatch:
        behavior_indices = np.asarray(behavior_indices, dtype=np.int64)
        num_rows = behavior_indices.size
        initiators = self._initiators[behavior_indices]
        items = self._items[behavior_indices]
        success = self._success[behavior_indices]
        negatives = self.sampler.sample_batch(initiators, count=1)[:, 0]

        # Participants of successful behaviors: one ragged gather from the
        # flattened participant array.
        counts = np.where(success, self._participant_counts[behavior_indices], 0)
        total = int(counts.sum())
        if total:
            ends = np.cumsum(counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
            positions = np.repeat(self._participant_offsets[behavior_indices], counts) + within
            participants = self._participant_flat[positions]
            participant_segment = np.repeat(np.arange(num_rows, dtype=np.int64), counts)
        else:
            participants = np.empty(0, dtype=np.int64)
            participant_segment = np.empty(0, dtype=np.int64)

        # Friends of initiators of failed behaviors (subsampled above the
        # cap, consuming the RNG in row order exactly as the original loop).
        friend_blocks: List[np.ndarray] = []
        friend_rows: List[int] = []
        for row in np.flatnonzero(~success):
            friends = self._friend_lists[initiators[row]]
            if friends.size > self.max_failed_friends:
                friends = self._rng.choice(friends, size=self.max_failed_friends, replace=False)
            friend_blocks.append(friends)
            friend_rows.append(int(row))
        if friend_blocks:
            failed_friends = np.concatenate(friend_blocks).astype(np.int64, copy=False)
            failed_friend_segment = np.repeat(
                np.asarray(friend_rows, dtype=np.int64),
                np.asarray([block.size for block in friend_blocks], dtype=np.int64),
            )
        else:
            failed_friends = np.empty(0, dtype=np.int64)
            failed_friend_segment = np.empty(0, dtype=np.int64)

        return GroupBuyingBatch(
            initiators=initiators,
            items=items,
            negative_items=negatives,
            success=success,
            participants=participants,
            participant_segment=participant_segment,
            failed_friends=failed_friends,
            failed_friend_segment=failed_friend_segment,
        )

    def __iter__(self) -> Iterator[GroupBuyingBatch]:
        if not self.dataset.behaviors:
            return
        order = self._rng.permutation(len(self.dataset.behaviors))
        for start in range(0, len(order), self.batch_size):
            yield self._build_batch(order[start : start + self.batch_size])

    def num_batches(self) -> int:
        return int(np.ceil(len(self.dataset.behaviors) / self.batch_size))
