"""Mini-batch construction, trainers, callbacks and end-to-end pipelines."""

from .batches import (
    FixedGroupBatchIterator,
    GroupBuyingBatch,
    GroupBuyingBatchIterator,
    InteractionBatch,
    InteractionBatchIterator,
)
from .factory import build_batch_iterator
from .callbacks import Callback, CallbackList, CSVLogger, LambdaCallback, ModelCheckpoint
from .trainer import EpochRecord, Trainer, TrainingHistory
from .pipeline import TrainingSettings, train_gbgcn_with_pretraining, train_model
from .search import GridSearchEntry, GridSearchResult, grid_search, parameter_grid

__all__ = [
    "FixedGroupBatchIterator",
    "GroupBuyingBatch",
    "GroupBuyingBatchIterator",
    "InteractionBatch",
    "InteractionBatchIterator",
    "build_batch_iterator",
    "Callback",
    "CallbackList",
    "CSVLogger",
    "LambdaCallback",
    "ModelCheckpoint",
    "EpochRecord",
    "Trainer",
    "TrainingHistory",
    "TrainingSettings",
    "train_gbgcn_with_pretraining",
    "train_model",
    "GridSearchEntry",
    "GridSearchResult",
    "grid_search",
    "parameter_grid",
]
