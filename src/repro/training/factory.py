"""Builds the right mini-batch iterator for a model's ``data_mode``."""

from __future__ import annotations

from typing import Optional

from ..data.converters import to_fixed_groups, to_user_item_interactions
from ..data.dataset import GroupBuyingDataset
from ..data.negative_sampling import TrainingNegativeSampler
from ..models.base import DataMode, RecommenderModel
from .batches import (
    FixedGroupBatchIterator,
    GroupBuyingBatchIterator,
    InteractionBatchIterator,
)

__all__ = ["build_batch_iterator"]


def build_batch_iterator(
    model: RecommenderModel,
    train_dataset: GroupBuyingDataset,
    batch_size: int = 4096,
    seed: int = 0,
    max_failed_friends: int = 20,
):
    """Return an iterable of mini-batches matching ``model.data_mode``."""
    mode = model.data_mode
    if mode == DataMode.INTERACTIONS_OI or mode == DataMode.INTERACTIONS_BOTH:
        conversion_mode = "oi" if mode == DataMode.INTERACTIONS_OI else "both"
        conversion = to_user_item_interactions(train_dataset, mode=conversion_mode)
        sampler = TrainingNegativeSampler(
            train_dataset,
            seed=seed,
            include_participants=(conversion_mode == "both"),
        )
        return InteractionBatchIterator(conversion, sampler, batch_size=batch_size, seed=seed)
    if mode == DataMode.FIXED_GROUPS:
        groups = to_fixed_groups(train_dataset)
        return FixedGroupBatchIterator(groups, batch_size=batch_size, seed=seed)
    if mode == DataMode.GROUP_BUYING:
        sampler = TrainingNegativeSampler(train_dataset, seed=seed, include_participants=True)
        return GroupBuyingBatchIterator(
            train_dataset,
            sampler,
            batch_size=batch_size,
            seed=seed,
            max_failed_friends=max_failed_friends,
        )
    raise ValueError(f"unsupported data mode: {mode}")
