"""Training callbacks.

The paper's training protocol ("train for 500 epochs, keep the best
validation epoch") is implemented inside :class:`~repro.training.trainer.Trainer`;
callbacks add the operational pieces a long run needs around that loop —
persisting per-epoch curves to CSV, checkpointing parameters to disk and
hooking arbitrary user code — without growing the trainer itself.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..utils.logging import get_logger

__all__ = ["Callback", "CallbackList", "CSVLogger", "ModelCheckpoint", "LambdaCallback"]

logger = get_logger("training.callbacks")


class Callback:
    """Base class; override any subset of the hooks."""

    def on_train_begin(self, trainer) -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, trainer, record) -> None:
        """Called after every epoch with the trainer and its :class:`EpochRecord`."""

    def on_train_end(self, trainer, history) -> None:
        """Called once after the last epoch with the full :class:`TrainingHistory`."""


class CallbackList(Callback):
    """Dispatches every hook to a sequence of callbacks, in order."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None) -> None:
        self.callbacks: List[Callback] = list(callbacks or [])

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_train_begin(self, trainer) -> None:
        for callback in self.callbacks:
            callback.on_train_begin(trainer)

    def on_epoch_end(self, trainer, record) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(trainer, record)

    def on_train_end(self, trainer, history) -> None:
        for callback in self.callbacks:
            callback.on_train_end(trainer, history)

    def __len__(self) -> int:
        return len(self.callbacks)


class CSVLogger(Callback):
    """Appends one CSV row per epoch: epoch, mean loss, validation metric, seconds."""

    FIELDS = ("epoch", "mean_loss", "validation_metric", "seconds")

    def __init__(self, path: Union[str, Path], overwrite: bool = True) -> None:
        self.path = Path(path)
        self.overwrite = overwrite

    def on_train_begin(self, trainer) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.overwrite or not self.path.exists():
            with self.path.open("w", newline="") as handle:
                csv.writer(handle).writerow(self.FIELDS)

    def on_epoch_end(self, trainer, record) -> None:
        with self.path.open("a", newline="") as handle:
            csv.writer(handle).writerow(
                [
                    record.epoch,
                    f"{record.mean_loss:.6f}",
                    "" if record.validation_metric is None else f"{record.validation_metric:.6f}",
                    f"{record.seconds:.4f}",
                ]
            )


class ModelCheckpoint(Callback):
    """Writes full model artifacts (``repro.persist`` format) during training.

    Two modes:

    * ``save_best_only`` (default) — an artifact is written only when the
      epoch's validation metric improves on every previous epoch;
    * periodic — with ``save_best_only=False`` an artifact is written every
      ``period`` epochs (overwriting the previous one).

    Each save is a complete versioned artifact — JSON header (model name,
    settings, dataset fingerprint) plus the full ``state_dict`` — written
    atomically (temp file + ``os.replace``), so a crash mid-write leaves the
    previous artifact intact.  Load with ``repro.persist.load_model(path,
    train_dataset)`` for registry-built models, or restore weights into a
    pre-built model with ``repro.persist.load_state_into``.

    ``dataset`` / ``settings`` / ``model_name`` are forwarded to
    :func:`repro.persist.save_model` for models that do not already carry
    their registry identity.

    With ``catalog_dir`` set, every save is additionally *published* into
    that directory as ``<catalog_name>.npz`` (``catalog_name`` defaults to
    the model's registry name) — the file a
    :class:`~repro.serving.catalog.ModelCatalog` pointed at the directory
    picks up.  Publishes are atomic like every artifact write, so a serving
    process hot-swaps from the old model straight to the new one, never
    through a half-written file.

    ``on_publish`` is called with the published path after every catalog
    publish — the hook for a co-located serving catalog that should pick
    the new bytes up *immediately* rather than on its next access or
    warmer cycle::

        ModelCheckpoint("best.npz", catalog_dir=fleet_dir,
                        on_publish=lambda path: catalog.reload(path.stem, force=True))

    With ``publish_retrieval=True`` every saved artifact additionally
    embeds a prebuilt :class:`~repro.serving.retrieval.RetrievalIndex`
    over the model's item factors (``retrieval_num_cells`` /
    ``retrieval_nprobe`` tune it; defaults scale with catalog size), so
    the serving side cold-starts ANN retrieval without re-clustering.
    Models whose score is not an inner product save without an index and
    serve through the dense path — no configuration needed.
    """

    def __init__(
        self,
        path: Union[str, Path],
        save_best_only: bool = True,
        period: int = 1,
        dataset=None,
        settings=None,
        model_name: Optional[str] = None,
        catalog_dir: Optional[Union[str, Path]] = None,
        catalog_name: Optional[str] = None,
        on_publish: Optional[Callable[[Path], None]] = None,
        publish_retrieval: bool = False,
        retrieval_num_cells: Optional[int] = None,
        retrieval_nprobe: Optional[int] = None,
    ) -> None:
        if period < 1:
            raise ValueError("period must be at least 1")
        if save_best_only and period != 1:
            raise ValueError(
                "period applies to periodic checkpointing; pass save_best_only=False with it"
            )
        if catalog_name is not None and catalog_dir is None:
            raise ValueError("catalog_name without catalog_dir publishes nowhere; set catalog_dir")
        if on_publish is not None and catalog_dir is None:
            raise ValueError("on_publish without catalog_dir never fires; set catalog_dir")
        if not publish_retrieval and (retrieval_num_cells is not None or retrieval_nprobe is not None):
            raise ValueError(
                "retrieval_num_cells/retrieval_nprobe tune the embedded index; "
                "set publish_retrieval=True with them"
            )
        self.path = Path(path)
        self.save_best_only = save_best_only
        self.period = period
        self.dataset = dataset
        self.settings = settings
        self.model_name = model_name
        self.catalog_dir = None if catalog_dir is None else Path(catalog_dir)
        self.catalog_name = catalog_name
        self.on_publish = on_publish
        self.publish_retrieval = publish_retrieval
        self.retrieval_num_cells = retrieval_num_cells
        self.retrieval_nprobe = retrieval_nprobe
        self._best_metric = -np.inf
        self.num_saves = 0
        self.num_publishes = 0

    def catalog_path(self, model) -> Optional[Path]:
        """Where this checkpoint publishes ``model``, or ``None`` when it doesn't."""
        if self.catalog_dir is None:
            return None
        name = (
            self.catalog_name
            or self.model_name
            or getattr(model, "_registry_name", None)
            or model.name
        )
        return self.catalog_dir / f"{name}.npz"

    def _save(self, trainer) -> None:
        from ..persist import copy_artifact, save_model

        retrieval_index = None
        if self.publish_retrieval:
            from ..serving.retrieval import build_index_for_model

            # None for non-inner-product models: the artifact then saves
            # state-only and the serving side falls back to dense scoring.
            retrieval_index = build_index_for_model(
                trainer.model,
                num_cells=self.retrieval_num_cells,
                nprobe=self.retrieval_nprobe,
            )
        save_model(
            trainer.model,
            self.path,
            dataset=self.dataset,
            settings=self.settings,
            model_name=self.model_name,
            retrieval_index=retrieval_index,
        )
        self.num_saves += 1
        logger.debug("checkpoint artifact written to %s", self.path)
        publish_path = self.catalog_path(trainer.model)
        if publish_path is not None:
            # Byte-for-byte replication of the artifact just written: no
            # second model snapshot or npz compression inside the training
            # loop, and published == checkpoint bytes by construction.
            copy_artifact(self.path, publish_path)
            self.num_publishes += 1
            logger.debug("checkpoint artifact published to catalog at %s", publish_path)
            if self.on_publish is not None:
                self.on_publish(publish_path)

    def on_epoch_end(self, trainer, record) -> None:
        if not self.save_best_only:
            if record.epoch % self.period == 0:
                self._save(trainer)
            return
        metric = record.validation_metric
        if metric is None:
            return
        if metric > self._best_metric:
            self._best_metric = metric
            self._save(trainer)


class LambdaCallback(Callback):
    """Wraps plain functions as a callback (handy in notebooks and tests)."""

    def __init__(
        self,
        on_train_begin: Optional[Callable] = None,
        on_epoch_end: Optional[Callable] = None,
        on_train_end: Optional[Callable] = None,
    ) -> None:
        self._on_train_begin = on_train_begin
        self._on_epoch_end = on_epoch_end
        self._on_train_end = on_train_end

    def on_train_begin(self, trainer) -> None:
        if self._on_train_begin is not None:
            self._on_train_begin(trainer)

    def on_epoch_end(self, trainer, record) -> None:
        if self._on_epoch_end is not None:
            self._on_epoch_end(trainer, record)

    def on_train_end(self, trainer, history) -> None:
        if self._on_train_end is not None:
            self._on_train_end(trainer, history)
