"""User-item bipartite interaction graphs.

These back the in-view propagation of GBGCN (Eq. 1-2) and the propagation
layers of the NGCF / DiffNet / LightGCN-style baselines.  The central
artifacts are row-normalized sparse matrices: multiplying a row-normalized
``users x items`` matrix by the item embedding table computes, for every
user, the mean of their neighbors' embeddings in one shot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd.sparse import row_normalize

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """A binary user-item interaction graph with propagation matrices."""

    def __init__(self, pairs: np.ndarray, num_users: int, num_items: int) -> None:
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size:
            if pairs[:, 0].max() >= num_users:
                raise ValueError("user index out of range")
            if pairs[:, 1].max() >= num_items:
                raise ValueError("item index out of range")
        self.num_users = num_users
        self.num_items = num_items
        # Deduplicate pairs so repeated interactions do not over-weight edges.
        unique = np.unique(pairs, axis=0) if pairs.size else pairs
        self.pairs = unique
        self._adjacency: Optional[sp.csr_matrix] = None
        self._user_to_item: Optional[sp.csr_matrix] = None
        self._item_to_user: Optional[sp.csr_matrix] = None
        self._symmetric: Optional[sp.csr_matrix] = None

    @property
    def num_edges(self) -> int:
        return int(self.pairs.shape[0])

    # ------------------------------------------------------------------
    # Adjacency matrices
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Binary ``users x items`` adjacency matrix."""
        if self._adjacency is None:
            if self.num_edges:
                values = np.ones(self.num_edges, dtype=np.float64)
                self._adjacency = sp.coo_matrix(
                    (values, (self.pairs[:, 0], self.pairs[:, 1])),
                    shape=(self.num_users, self.num_items),
                ).tocsr()
            else:
                self._adjacency = sp.csr_matrix((self.num_users, self.num_items), dtype=np.float64)
        return self._adjacency

    def user_to_item_propagation(self) -> sp.csr_matrix:
        """Row-normalized ``users x items`` matrix: mean over a user's items."""
        if self._user_to_item is None:
            self._user_to_item = row_normalize(self.adjacency())
        return self._user_to_item

    def item_to_user_propagation(self) -> sp.csr_matrix:
        """Row-normalized ``items x users`` matrix: mean over an item's users."""
        if self._item_to_user is None:
            self._item_to_user = row_normalize(self.adjacency().T)
        return self._item_to_user

    def symmetric_normalized(self) -> sp.csr_matrix:
        """GCN-style ``D^{-1/2} A D^{-1/2}`` over the joined (users+items) graph.

        Used by NGCF, which propagates over the full bipartite adjacency
        with symmetric normalization rather than mean aggregation.
        """
        if self._symmetric is None:
            total = self.num_users + self.num_items
            adjacency = self.adjacency()
            full = sp.lil_matrix((total, total), dtype=np.float64)
            full[: self.num_users, self.num_users:] = adjacency
            full[self.num_users:, : self.num_users] = adjacency.T
            full = full.tocsr()
            degrees = np.asarray(full.sum(axis=1)).flatten()
            inv_sqrt = np.zeros_like(degrees)
            nonzero = degrees > 0
            inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
            scaling = sp.diags(inv_sqrt)
            self._symmetric = (scaling @ full @ scaling).tocsr()
        return self._symmetric

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def items_of_user(self, user: int) -> np.ndarray:
        """Item neighborhood of one user."""
        return self.adjacency()[user].indices.astype(np.int64)

    def users_of_item(self, item: int) -> np.ndarray:
        """User neighborhood of one item."""
        return self.adjacency().T.tocsr()[item].indices.astype(np.int64)

    def user_degree(self) -> np.ndarray:
        """Number of interacted items per user."""
        return np.asarray(self.adjacency().sum(axis=1)).flatten().astype(np.int64)

    def item_degree(self) -> np.ndarray:
        """Number of interacting users per item."""
        return np.asarray(self.adjacency().sum(axis=0)).flatten().astype(np.int64)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(users={self.num_users}, items={self.num_items}, edges={self.num_edges})"
        )
