"""The directed heterogeneous graph set ``G = {G_i, G_p, G_s}`` (Section III-A).

Given a training :class:`~repro.data.GroupBuyingDataset`, this module builds
the three graphs GBGCN propagates over:

* ``G_i`` — initiator view: a bidirectional edge between the initiator and
  the target item of each behavior;
* ``G_p`` — participant view: bidirectional edges between each participant
  and the target item;
* ``G_s`` — sharing relations: a directed edge from the initiator to every
  participant of each behavior.

The friendship network ``S`` (needed by the prediction function and the
social regularizer) is carried alongside.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..data.dataset import GroupBuyingDataset
from .bipartite import BipartiteGraph
from .social import FriendshipGraph, SharingGraph

__all__ = ["HeteroGroupBuyingGraph", "build_hetero_graph"]


class HeteroGroupBuyingGraph:
    """Container for ``{G_i, G_p, G_s}`` plus the friendship network ``S``."""

    def __init__(
        self,
        initiator_view: BipartiteGraph,
        participant_view: BipartiteGraph,
        sharing: SharingGraph,
        friendship: FriendshipGraph,
    ) -> None:
        if initiator_view.num_users != participant_view.num_users:
            raise ValueError("initiator and participant views must share the user universe")
        if initiator_view.num_items != participant_view.num_items:
            raise ValueError("initiator and participant views must share the item universe")
        if sharing.num_users != initiator_view.num_users:
            raise ValueError("sharing graph user count mismatch")
        if friendship.num_users != initiator_view.num_users:
            raise ValueError("friendship graph user count mismatch")
        self.initiator_view = initiator_view
        self.participant_view = participant_view
        self.sharing = sharing
        self.friendship = friendship

    @property
    def num_users(self) -> int:
        return self.initiator_view.num_users

    @property
    def num_items(self) -> int:
        return self.initiator_view.num_items

    def summary(self) -> dict:
        """Edge counts of every component graph."""
        return {
            "initiator_view_edges": self.initiator_view.num_edges,
            "participant_view_edges": self.participant_view.num_edges,
            "sharing_edges": self.sharing.num_edges,
            "friendship_edges": self.friendship.num_edges,
        }

    def __repr__(self) -> str:
        return (
            f"HeteroGroupBuyingGraph(users={self.num_users}, items={self.num_items}, "
            f"Gi={self.initiator_view.num_edges}, Gp={self.participant_view.num_edges}, "
            f"Gs={self.sharing.num_edges}, S={self.friendship.num_edges})"
        )


def build_hetero_graph(dataset: GroupBuyingDataset) -> HeteroGroupBuyingGraph:
    """Construct ``{G_i, G_p, G_s}`` and ``S`` from (training) behaviors."""
    initiator_pairs = dataset.initiator_item_pairs()
    participant_pairs = dataset.participant_item_pairs()

    sharing_edges: List[Tuple[int, int]] = []
    for behavior in dataset.behaviors:
        sharing_edges.extend((behavior.initiator, participant) for participant in behavior.participants)

    friendship_edges = [edge.as_tuple() for edge in dataset.social_edges]

    return HeteroGroupBuyingGraph(
        initiator_view=BipartiteGraph(initiator_pairs, dataset.num_users, dataset.num_items),
        participant_view=BipartiteGraph(participant_pairs, dataset.num_users, dataset.num_items),
        sharing=SharingGraph(sharing_edges, dataset.num_users),
        friendship=FriendshipGraph(friendship_edges, dataset.num_users),
    )
