"""Graph substrate: bipartite interaction graphs, social graphs and the
directed heterogeneous graph set used by GBGCN."""

from .bipartite import BipartiteGraph
from .social import FriendshipGraph, SharingGraph
from .hetero import HeteroGroupBuyingGraph, build_hetero_graph

__all__ = [
    "BipartiteGraph",
    "FriendshipGraph",
    "SharingGraph",
    "HeteroGroupBuyingGraph",
    "build_hetero_graph",
]
