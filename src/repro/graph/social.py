"""Social graphs: the undirected friendship network and the directed sharing graph.

The paper uses two different user-user structures:

* the *friendship* network ``S`` (symmetric) — used in the prediction
  function (Eq. 9) to average friends' scores, by SocialMF/DiffNet, and by
  the social regularizer;
* the *sharing* graph ``G_s`` (directed, initiator → participant) — used by
  GBGCN's cross-view propagation, where incoming and outgoing
  neighborhoods are distinguished (``N^I_s`` and ``N^O_s``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd.sparse import row_normalize

__all__ = ["FriendshipGraph", "SharingGraph"]


class FriendshipGraph:
    """Symmetric binary friendship network over ``num_users`` users."""

    def __init__(self, edges: Sequence[Tuple[int, int]], num_users: int) -> None:
        self.num_users = num_users
        unique = sorted({(min(a, b), max(a, b)) for a, b in edges if a != b})
        if unique and max(max(a, b) for a, b in unique) >= num_users:
            raise ValueError("social edge endpoint out of range")
        self.edges = unique
        self._matrix: Optional[sp.csr_matrix] = None
        self._normalized: Optional[sp.csr_matrix] = None

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def matrix(self) -> sp.csr_matrix:
        """The symmetric binary matrix ``S``."""
        if self._matrix is None:
            if self.edges:
                rows = np.asarray([a for a, _ in self.edges] + [b for _, b in self.edges])
                cols = np.asarray([b for _, b in self.edges] + [a for a, _ in self.edges])
                values = np.ones(rows.size, dtype=np.float64)
                self._matrix = sp.coo_matrix(
                    (values, (rows, cols)), shape=(self.num_users, self.num_users)
                ).tocsr()
            else:
                self._matrix = sp.csr_matrix((self.num_users, self.num_users), dtype=np.float64)
        return self._matrix

    def normalized(self) -> sp.csr_matrix:
        """Row-normalized ``S`` (friend averaging matrix)."""
        if self._normalized is None:
            self._normalized = row_normalize(self.matrix())
        return self._normalized

    def friends_of(self, user: int) -> np.ndarray:
        """IDs of the user's friends."""
        return self.matrix()[user].indices.astype(np.int64)

    def degrees(self) -> np.ndarray:
        """Friend counts per user."""
        return np.asarray(self.matrix().sum(axis=1)).flatten().astype(np.int64)

    def __repr__(self) -> str:
        return f"FriendshipGraph(users={self.num_users}, edges={self.num_edges})"


class SharingGraph:
    """Directed sharing graph ``G_s``: edges go from initiator to participant."""

    def __init__(self, edges: Sequence[Tuple[int, int]], num_users: int) -> None:
        self.num_users = num_users
        unique = sorted({(int(src), int(dst)) for src, dst in edges if src != dst})
        if unique and max(max(a, b) for a, b in unique) >= num_users:
            raise ValueError("sharing edge endpoint out of range")
        self.edges = unique
        self._matrix: Optional[sp.csr_matrix] = None
        self._outgoing: Optional[sp.csr_matrix] = None
        self._incoming: Optional[sp.csr_matrix] = None

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def matrix(self) -> sp.csr_matrix:
        """Binary directed adjacency: ``matrix[i, p] = 1`` iff ``i`` shared to ``p``."""
        if self._matrix is None:
            if self.edges:
                rows = np.asarray([src for src, _ in self.edges])
                cols = np.asarray([dst for _, dst in self.edges])
                values = np.ones(rows.size, dtype=np.float64)
                self._matrix = sp.coo_matrix(
                    (values, (rows, cols)), shape=(self.num_users, self.num_users)
                ).tocsr()
                self._matrix.data[:] = 1.0
            else:
                self._matrix = sp.csr_matrix((self.num_users, self.num_users), dtype=np.float64)
        return self._matrix

    def outgoing_propagation(self) -> sp.csr_matrix:
        """Row-normalized mean over ``N^O_s(m)`` — users ``m`` shared to."""
        if self._outgoing is None:
            self._outgoing = row_normalize(self.matrix())
        return self._outgoing

    def incoming_propagation(self) -> sp.csr_matrix:
        """Row-normalized mean over ``N^I_s(m)`` — users who shared to ``m``."""
        if self._incoming is None:
            self._incoming = row_normalize(self.matrix().T)
        return self._incoming

    def shared_to(self, user: int) -> np.ndarray:
        """Users this user has shared groups to (outgoing neighborhood)."""
        return self.matrix()[user].indices.astype(np.int64)

    def shared_from(self, user: int) -> np.ndarray:
        """Users who have shared groups to this user (incoming neighborhood)."""
        return self.matrix().T.tocsr()[user].indices.astype(np.int64)

    def __repr__(self) -> str:
        return f"SharingGraph(users={self.num_users}, edges={self.num_edges})"
