"""repro — a full reproduction of "Group-Buying Recommendation for Social
E-Commerce" (GBGCN, ICDE 2021).

The package is organized bottom-up:

* :mod:`repro.autograd` — NumPy reverse-mode autodiff (the PyTorch substitute);
* :mod:`repro.nn`, :mod:`repro.optim` — layers, losses and optimizers;
* :mod:`repro.graph` — bipartite / social / heterogeneous graph substrate;
* :mod:`repro.data` — the group-buying data model and the Beibei-like
  synthetic dataset generator;
* :mod:`repro.models` — every baseline of the paper's Table III;
* :mod:`repro.core` — GBGCN itself (propagation, prediction, loss);
* :mod:`repro.training`, :mod:`repro.eval` — training pipelines and the
  leave-one-out evaluation protocol;
* :mod:`repro.serving` — the online serving layer: cached batch scoring,
  top-K recommendation, and the multi-model fleet (artifact-backed
  ``ModelCatalog`` + routing ``ServingGateway``);
* :mod:`repro.persist` — versioned model artifacts (train once, serve
  anywhere: save/load any registry model with bitwise score parity,
  header-only directory indexing for catalogs);
* :mod:`repro.analysis`, :mod:`repro.experiments` — embedding analyses and
  the scripts regenerating every table and figure.

Quickstart::

    from repro.data import generate_dataset, leave_one_out_split
    from repro.eval import LeaveOneOutEvaluator
    from repro.training import TrainingSettings, train_gbgcn_with_pretraining

    split = leave_one_out_split(generate_dataset())
    evaluator = LeaveOneOutEvaluator(split)
    model, history, _ = train_gbgcn_with_pretraining(split)
    print(evaluator.evaluate_test(model).metrics)
"""

__version__ = "1.0.0"

from . import autograd, data, eval, graph, models, nn, optim, persist, serving, training, utils
from .core import GBGCN, GBGCNConfig
from .data import BeibeiLikeConfig, GroupBuyingDataset, generate_dataset, leave_one_out_split
from .eval import LeaveOneOutEvaluator
from .models import MODEL_NAMES, ModelSettings, build_model
from .training import TrainingSettings, train_gbgcn_with_pretraining, train_model

__all__ = [
    "__version__",
    "autograd",
    "data",
    "eval",
    "graph",
    "models",
    "nn",
    "optim",
    "persist",
    "training",
    "serving",
    "utils",
    "GBGCN",
    "GBGCNConfig",
    "BeibeiLikeConfig",
    "GroupBuyingDataset",
    "generate_dataset",
    "leave_one_out_split",
    "LeaveOneOutEvaluator",
    "MODEL_NAMES",
    "ModelSettings",
    "build_model",
    "TrainingSettings",
    "train_gbgcn_with_pretraining",
    "train_model",
]
