"""Seeded random-number management.

Every stochastic component in the library (dataset synthesis, parameter
initialization, negative sampling, mini-batch shuffling, dropout) receives
an explicit ``numpy.random.Generator`` so that experiments are exactly
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["SeedSequenceFactory", "make_rng", "spawn_rngs"]


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a generator; ``None`` gives OS entropy (only for interactive use)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, names: list[str]) -> Dict[str, np.random.Generator]:
    """Derive one independent generator per name from a single root seed."""
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names))
    return {name: np.random.default_rng(child) for name, child in zip(names, children)}


class SeedSequenceFactory:
    """Hands out independent generators derived from one root seed.

    The trainer uses this to give dataset synthesis, model initialization
    and sampling their own streams, so that e.g. changing the number of
    training epochs does not perturb the dataset.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._sequence = np.random.SeedSequence(seed)
        self._count = 0

    def next_rng(self) -> np.random.Generator:
        """Return a fresh generator independent of all previous ones."""
        child = self._sequence.spawn(1)[0]
        self._count += 1
        return np.random.default_rng(child)

    def named(self, names: list[str]) -> Dict[str, np.random.Generator]:
        """Return a dict of named independent generators."""
        return {name: self.next_rng() for name in names}

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(seed={self.seed}, spawned={self._count})"
