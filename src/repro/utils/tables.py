"""Plain-text table rendering used by the experiment scripts.

The benchmark harness prints the same rows the paper reports (Tables II-V,
Figures 4-5 series); this module renders them as aligned ASCII tables so
experiment output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_table", "format_float"]

Cell = Union[str, float, int]


def format_float(value: float, digits: int = 4) -> str:
    """Format a metric the way the paper does (4 decimal places)."""
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], digits: int = 4) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format_float(cell, digits))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_line(list(headers)), separator]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
