"""Wall-clock timing helpers for the time-efficiency experiment (Table IV)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Timer", "TimingRecord", "Stopwatch"]


@dataclass
class TimingRecord:
    """Accumulated wall-clock statistics for one named phase."""

    name: str
    total_seconds: float = 0.0
    calls: int = 0
    #: Duration of the most recent call (not the running mean).
    last_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Stopwatch:
    """A simple start/stop stopwatch."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class Timer:
    """Collects named timing records, e.g. ``train_epoch`` and ``test_epoch``."""

    def __init__(self) -> None:
        self.records: Dict[str, TimingRecord] = {}

    def time(self, name: str):
        """Context manager measuring one call of phase ``name``."""
        timer = self

        class _Context:
            def __enter__(self_inner):
                self_inner._start = time.perf_counter()
                return self_inner

            def __exit__(self_inner, *exc_info):
                elapsed = time.perf_counter() - self_inner._start
                record = timer.records.setdefault(name, TimingRecord(name))
                record.total_seconds += elapsed
                record.calls += 1
                record.last_seconds = elapsed

        return _Context()

    def mean(self, name: str) -> float:
        """Mean seconds per call for phase ``name`` (0 if never timed)."""
        record = self.records.get(name)
        return record.mean_seconds if record else 0.0

    def last(self, name: str) -> float:
        """Seconds of the most recent call of phase ``name`` (0 if never timed)."""
        record = self.records.get(name)
        return record.last_seconds if record else 0.0

    def summary(self) -> List[TimingRecord]:
        """All records sorted by name."""
        return [self.records[key] for key in sorted(self.records)]
