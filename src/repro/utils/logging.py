"""Logging configuration shared by examples, experiments and benchmarks."""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(level: int = logging.INFO, stream=None) -> None:
    """Configure the root ``repro`` logger once, idempotently."""
    logger = logging.getLogger("repro")
    if logger.handlers:
        logger.setLevel(level)
        return
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    if name is None or name == "repro":
        return logging.getLogger("repro")
    if name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
