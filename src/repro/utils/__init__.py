"""Shared utilities: seeded RNG management, timing, logging, table rendering."""

from .rng import SeedSequenceFactory, make_rng, spawn_rngs
from .timer import Stopwatch, Timer, TimingRecord
from .logging import configure_logging, get_logger
from .tables import format_float, format_table

__all__ = [
    "SeedSequenceFactory",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "Timer",
    "TimingRecord",
    "configure_logging",
    "get_logger",
    "format_float",
    "format_table",
]
