"""In-view and cross-view embedding propagation (Section III-B of the paper).

* :class:`InViewPropagation` implements Eq. 1-3: parameter-free mean
  aggregation over the initiator-view and participant-view user-item
  bipartite graphs, with all layer outputs concatenated.
* :class:`CrossViewPropagation` implements Eq. 4-8: FC-transformed message
  passing that moves information between the two views along the directed
  sharing graph ``G_s`` (plus another pass over the in-view graphs), again
  concatenated with its input.

Both layers support the multi-view ablations of Table V through the
``share_user_roles`` / ``share_item_roles`` flags: when a flag is set the
corresponding initiator-view and participant-view embeddings are replaced
by their average after every propagation step, which removes the role
distinction without changing model capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, cache_transpose, concat, sparse_matmul
from ..graph.hetero import HeteroGroupBuyingGraph
from ..nn import Linear, Module, resolve_activation

__all__ = ["ViewEmbeddings", "InViewPropagation", "CrossViewPropagation"]


@dataclass
class ViewEmbeddings:
    """Embeddings of users and items in both views (one propagation stage)."""

    user_initiator: Tensor
    item_initiator: Tensor
    user_participant: Tensor
    item_participant: Tensor

    def pooled(self, share_user_roles: bool, share_item_roles: bool) -> "ViewEmbeddings":
        """Average the two views per the Table V ablations (no-op if both flags are False)."""
        user_i, user_p = self.user_initiator, self.user_participant
        item_i, item_p = self.item_initiator, self.item_participant
        if share_user_roles:
            user_mean = (user_i + user_p) * 0.5
            user_i, user_p = user_mean, user_mean
        if share_item_roles:
            item_mean = (item_i + item_p) * 0.5
            item_i, item_p = item_mean, item_mean
        return ViewEmbeddings(user_i, item_i, user_p, item_p)


class InViewPropagation(Module):
    """Parameter-free LightGCN-style propagation inside each view (Eq. 1-3)."""

    def __init__(
        self,
        graph: HeteroGroupBuyingGraph,
        num_layers: int = 2,
        share_user_roles: bool = False,
        share_item_roles: bool = False,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one propagation layer")
        self.num_layers = num_layers
        self.share_user_roles = share_user_roles
        self.share_item_roles = share_item_roles
        # Row-normalized propagation matrices of both views.  Their CSR
        # transposes (the backward operand) are precomputed once here, not
        # re-derived on every backward call.
        self._init_user_from_item = graph.initiator_view.user_to_item_propagation()
        self._init_item_from_user = graph.initiator_view.item_to_user_propagation()
        self._part_user_from_item = graph.participant_view.user_to_item_propagation()
        self._part_item_from_user = graph.participant_view.item_to_user_propagation()
        for matrix in (
            self._init_user_from_item,
            self._init_item_from_user,
            self._part_user_from_item,
            self._part_item_from_user,
        ):
            cache_transpose(matrix)

    def forward(self, user_embedding: Tensor, item_embedding: Tensor) -> ViewEmbeddings:
        """Propagate raw embeddings and return per-view concatenated embeddings."""
        user_i, item_i = user_embedding, item_embedding
        user_p, item_p = user_embedding, item_embedding

        user_i_layers: List[Tensor] = [user_embedding]
        item_i_layers: List[Tensor] = [item_embedding]
        user_p_layers: List[Tensor] = [user_embedding]
        item_p_layers: List[Tensor] = [item_embedding]

        for _ in range(self.num_layers):
            next_user_i = sparse_matmul(self._init_user_from_item, item_i)
            next_item_i = sparse_matmul(self._init_item_from_user, user_i)
            next_user_p = sparse_matmul(self._part_user_from_item, item_p)
            next_item_p = sparse_matmul(self._part_item_from_user, user_p)

            stage = ViewEmbeddings(next_user_i, next_item_i, next_user_p, next_item_p).pooled(
                self.share_user_roles, self.share_item_roles
            )
            user_i, item_i = stage.user_initiator, stage.item_initiator
            user_p, item_p = stage.user_participant, stage.item_participant

            user_i_layers.append(user_i)
            item_i_layers.append(item_i)
            user_p_layers.append(user_p)
            item_p_layers.append(item_p)

        return ViewEmbeddings(
            user_initiator=concat(user_i_layers, axis=-1),
            item_initiator=concat(item_i_layers, axis=-1),
            user_participant=concat(user_p_layers, axis=-1),
            item_participant=concat(item_p_layers, axis=-1),
        )


class CrossViewPropagation(Module):
    """FC-transformed propagation across views along ``G_s`` (Eq. 4-8)."""

    def __init__(
        self,
        graph: HeteroGroupBuyingGraph,
        feature_dim: int,
        activation: str = "sigmoid",
        share_user_roles: bool = False,
        share_item_roles: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.feature_dim = feature_dim
        self.share_user_roles = share_user_roles
        self.share_item_roles = share_item_roles
        self._activation = resolve_activation(activation)

        # In-view propagation matrices reused for the preference supplement.
        self._init_user_from_item = graph.initiator_view.user_to_item_propagation()
        self._init_item_from_user = graph.initiator_view.item_to_user_propagation()
        self._part_user_from_item = graph.participant_view.user_to_item_propagation()
        self._part_item_from_user = graph.participant_view.item_to_user_propagation()
        # Directed sharing graph: outgoing (initiator -> their participants)
        # and incoming (participant <- initiators who shared to them).
        self._share_outgoing = graph.sharing.outgoing_propagation()
        self._share_incoming = graph.sharing.incoming_propagation()
        for matrix in (
            self._init_user_from_item,
            self._init_item_from_user,
            self._part_user_from_item,
            self._part_item_from_user,
            self._share_outgoing,
            self._share_incoming,
        ):
            cache_transpose(matrix)

        # Transformation matrices W_{source,target} with their biases.
        self.transform_vi_ui = Linear(feature_dim, feature_dim, rng=rng)
        self.transform_up_ui = Linear(feature_dim, feature_dim, rng=rng)
        self.transform_ui_vi = Linear(feature_dim, feature_dim, rng=rng)
        self.transform_vp_up = Linear(feature_dim, feature_dim, rng=rng)
        self.transform_ui_up = Linear(feature_dim, feature_dim, rng=rng)
        self.transform_up_vp = Linear(feature_dim, feature_dim, rng=rng)

    def forward(
        self,
        in_view: ViewEmbeddings,
        user_initiator_rows: Optional[np.ndarray] = None,
        item_rows: Optional[np.ndarray] = None,
    ) -> ViewEmbeddings:
        """Apply Eq. 4-7 and return the concatenation of input and output (Eq. 8).

        ``user_initiator_rows`` / ``item_rows`` optionally restrict the
        *output* stage to the given (sorted, unique) rows.  The cross-view
        stage is the last propagation step, so its initiator-view user rows
        and both item-view rows are consumed exclusively by per-row score
        gathers during training — computing the FC transform, activation and
        Eq. 8 concatenation only for the rows a mini-batch actually scores
        makes the stage cost ``O(batch)`` instead of ``O(table)``, with
        row-identical results (each output row depends only on its own
        slice of the propagation matrix).  The participant-view *user*
        embeddings are always computed in full: the role-weighted predictor
        averages them over every friend of a scored user.  Restricted rows
        come back as compact tensors (row ``k`` is table row
        ``user_initiator_rows[k]`` / ``item_rows[k]``); the default
        (``None``) keeps the full-table behavior, which evaluation and the
        Table V ablations use.  Row restriction is ignored for a view whose
        roles are shared (the pooling average needs aligned shapes).
        """
        activation = self._activation
        restrict_users = user_initiator_rows is not None and not self.share_user_roles
        restrict_items = item_rows is not None and not self.share_item_roles

        def maybe_rows(matrix, restrict: bool, rows):
            return matrix[rows] if restrict else matrix

        # Eq. 4: initiator-view users hear from their items and from the
        # participant-view embeddings of users they shared to.
        item_message_i = sparse_matmul(
            maybe_rows(self._init_user_from_item, restrict_users, user_initiator_rows),
            in_view.item_initiator,
        )
        shared_to_message = sparse_matmul(
            maybe_rows(self._share_outgoing, restrict_users, user_initiator_rows),
            in_view.user_participant,
        )
        user_initiator = activation(self.transform_vi_ui(item_message_i)) + activation(
            self.transform_up_ui(shared_to_message)
        )

        # Eq. 5: initiator-view items hear from initiator-view users.
        user_message_i = sparse_matmul(
            maybe_rows(self._init_item_from_user, restrict_items, item_rows),
            in_view.user_initiator,
        )
        item_initiator = activation(self.transform_ui_vi(user_message_i))

        # Eq. 6: participant-view users hear from their items and from the
        # initiator-view embeddings of users who shared to them.
        item_message_p = sparse_matmul(self._part_user_from_item, in_view.item_participant)
        shared_from_message = sparse_matmul(self._share_incoming, in_view.user_initiator)
        user_participant = activation(self.transform_vp_up(item_message_p)) + activation(
            self.transform_ui_up(shared_from_message)
        )

        # Eq. 7: participant-view items hear from participant-view users.
        user_message_p = sparse_matmul(
            maybe_rows(self._part_item_from_user, restrict_items, item_rows),
            in_view.user_participant,
        )
        item_participant = activation(self.transform_up_vp(user_message_p))

        stage = ViewEmbeddings(user_initiator, item_initiator, user_participant, item_participant).pooled(
            self.share_user_roles, self.share_item_roles
        )

        # Eq. 8: concatenate the cross-view output with its input (gathered
        # down to the same rows when the stage is restricted).
        in_user_initiator = (
            in_view.user_initiator[user_initiator_rows] if restrict_users else in_view.user_initiator
        )
        in_item_initiator = in_view.item_initiator[item_rows] if restrict_items else in_view.item_initiator
        in_item_participant = (
            in_view.item_participant[item_rows] if restrict_items else in_view.item_participant
        )
        return ViewEmbeddings(
            user_initiator=concat([in_user_initiator, stage.user_initiator], axis=-1),
            item_initiator=concat([in_item_initiator, stage.item_initiator], axis=-1),
            user_participant=concat([in_view.user_participant, stage.user_participant], axis=-1),
            item_participant=concat([in_item_participant, stage.item_participant], axis=-1),
        )
