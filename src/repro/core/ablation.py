"""Factories for the multi-view ablation variants of Table V.

The paper degrades GBGCN by replacing, after every propagation layer, the
two views' embeddings with their average — removing the role distinction
for users, for items, or for both, without changing model capacity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from ..graph.hetero import HeteroGroupBuyingGraph
from .gbgcn import GBGCN, GBGCNConfig

__all__ = ["AblationVariant", "ABLATION_VARIANTS", "build_ablation_model"]

#: Mapping from the Table V row label to the (share_user_roles, share_item_roles) flags.
ABLATION_VARIANTS: Dict[str, Dict[str, bool]] = {
    "GBGCN": {"share_user_roles": False, "share_item_roles": False},
    "Without Item Roles": {"share_user_roles": False, "share_item_roles": True},
    "Without User Roles": {"share_user_roles": True, "share_item_roles": False},
    "Without Item and User Roles": {"share_user_roles": True, "share_item_roles": True},
}

AblationVariant = str


def build_ablation_model(
    variant: AblationVariant,
    num_users: int,
    num_items: int,
    graph: HeteroGroupBuyingGraph,
    config: Optional[GBGCNConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> GBGCN:
    """Build the GBGCN variant named by a Table V row label."""
    if variant not in ABLATION_VARIANTS:
        raise ValueError(f"unknown ablation variant '{variant}'; expected one of {list(ABLATION_VARIANTS)}")
    base = config or GBGCNConfig()
    flags = ABLATION_VARIANTS[variant]
    variant_config = replace(base, **flags)
    return GBGCN(num_users, num_items, graph, config=variant_config, rng=rng)
