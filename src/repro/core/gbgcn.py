"""GBGCN — Group-Buying Graph Convolutional Network (the paper's contribution).

The model cascades four stages (Figure 2 of the paper):

1. **Raw embedding layer** — one embedding per user and item, shared by
   both views.
2. **In-view propagation** (Eq. 1-3) — parameter-free mean aggregation on
   the initiator-view and participant-view bipartite graphs.
3. **Cross-view propagation** (Eq. 4-8) — FC-transformed message passing
   along the directed sharing graph plus another in-view pass.
4. **Prediction** (Eq. 9) — role-weighted combination of the initiator's
   own interest and the average interest of their friends.

Training minimizes the double-pairwise fine-grained loss (Eq. 10-12) plus
L2 and social regularization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, gathered_dot_difference, no_grad
from ..graph.hetero import HeteroGroupBuyingGraph
from ..models.base import DataMode, RecommenderModel
from ..nn import Embedding, social_regularization
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import GroupBuyingBatch
from .loss import DoublePairwiseLoss
from .prediction import RoleWeightedPredictor
from .propagation import CrossViewPropagation, InViewPropagation, ViewEmbeddings

__all__ = ["GBGCNConfig", "GBGCN"]


@dataclass
class GBGCNConfig:
    """Hyper-parameters of GBGCN (defaults follow Section IV-A of the paper)."""

    embedding_dim: int = 32
    num_layers: int = 2
    #: Role coefficient of Eq. 9 (paper's best value on Beibei: 0.6).
    alpha: float = 0.6
    #: Loss coefficient of Eq. 10 (paper's best value: 0.05).
    beta: float = 0.05
    l2_weight: float = 1e-4
    social_weight: float = 1e-3
    activation: str = "sigmoid"
    #: Table V ablations: average the two views' user/item embeddings.
    share_user_roles: bool = False
    share_item_roles: bool = False

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")


class GBGCN(RecommenderModel):
    """The full GBGCN model over a :class:`HeteroGroupBuyingGraph`."""

    data_mode = DataMode.GROUP_BUYING

    def __init__(
        self,
        num_users: int,
        num_items: int,
        graph: HeteroGroupBuyingGraph,
        config: Optional[GBGCNConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        config = config or GBGCNConfig()
        super().__init__(num_users, num_items, l2_weight=config.l2_weight)
        if graph.num_users != num_users or graph.num_items != num_items:
            raise ValueError("graph shape does not match the user/item universe")
        self.config = config
        self.graph = graph

        self.user_embedding = Embedding(num_users, config.embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, config.embedding_dim, rng=rng)

        self.in_view = InViewPropagation(
            graph,
            num_layers=config.num_layers,
            share_user_roles=config.share_user_roles,
            share_item_roles=config.share_item_roles,
        )
        in_view_dim = (config.num_layers + 1) * config.embedding_dim
        self.cross_view = CrossViewPropagation(
            graph,
            feature_dim=in_view_dim,
            activation=config.activation,
            share_user_roles=config.share_user_roles,
            share_item_roles=config.share_item_roles,
            rng=rng,
        )
        self._social_normalized: sp.csr_matrix = graph.friendship.normalized()
        self.predictor = RoleWeightedPredictor(self._social_normalized, alpha=config.alpha)
        self.loss_function = DoublePairwiseLoss(beta=config.beta)
        self._eval_cache: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def propagate(self) -> ViewEmbeddings:
        """Run in-view then cross-view propagation over the full graph."""
        in_view = self.in_view(self.user_embedding.weight, self.item_embedding.weight)
        return self.cross_view(in_view)

    def in_view_embeddings(self) -> ViewEmbeddings:
        """Only the in-view stage (used by the embedding analysis, Figure 5)."""
        return self.in_view(self.user_embedding.weight, self.item_embedding.weight)

    @property
    def final_dim(self) -> int:
        """Dimensionality of the final per-view embeddings."""
        return 2 * (self.config.num_layers + 1) * self.config.embedding_dim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def batch_loss(self, batch: GroupBuyingBatch) -> Tensor:
        touched_users = np.unique(
            np.concatenate([batch.initiators, batch.participants, batch.failed_friends])
        ) if batch.participants.size or batch.failed_friends.size else np.unique(batch.initiators)
        touched_items = np.unique(np.concatenate([batch.items, batch.negative_items]))

        # Cross-view outputs are consumed only by the per-row score gathers
        # below, so the training pass restricts that stage to the touched
        # rows (row-identical results, O(batch) instead of O(table) FC
        # transforms).  The ablation flags need full-width pooling, so the
        # restriction is dropped for a shared view.
        restrict_users = not self.config.share_user_roles
        restrict_items = not self.config.share_item_roles
        in_view = self.in_view(self.user_embedding.weight, self.item_embedding.weight)
        embeddings = self.cross_view(
            in_view,
            user_initiator_rows=touched_users if restrict_users else None,
            item_rows=touched_items if restrict_items else None,
        )
        friend_average = self.predictor.friend_average(embeddings.user_participant)
        alpha = self.predictor.alpha

        def score_pair_difference(users, positive_items, negative_items) -> Tensor:
            # Map the global index arrays onto the compact (restricted) rows.
            user_rows = np.searchsorted(touched_users, users) if restrict_users else users
            positive_rows = (
                np.searchsorted(touched_items, positive_items) if restrict_items else positive_items
            )
            negative_rows = (
                np.searchsorted(touched_items, negative_items) if restrict_items else negative_items
            )
            own = gathered_dot_difference(
                embeddings.user_initiator, embeddings.item_initiator, user_rows, positive_rows, negative_rows
            )
            # The friend average stays in the full user index space (it is
            # built from every friend of a scored user).
            friends = gathered_dot_difference(
                friend_average, embeddings.item_participant, users, positive_rows, negative_rows
            )
            return own * (1.0 - alpha) + friends * alpha

        loss = self.loss_function(batch, score_pair_difference=score_pair_difference)

        regularizer = self.regularization(
            [self.user_embedding(touched_users), self.item_embedding(touched_items)]
        ) * (1.0 / max(len(batch), 1))

        social_term = Tensor(0.0)
        if self.config.social_weight > 0:
            social_term = social_regularization(
                self.user_embedding.weight,
                self._social_normalized,
                weight=self.config.social_weight,
                user_indices=batch.initiators,
            ) * (1.0 / max(len(batch), 1))

        return loss + regularizer + social_term

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare_for_evaluation(self) -> None:
        with no_grad():
            embeddings = self.propagate()
            friend_average = self.predictor.friend_average(embeddings.user_participant)
            self._eval_cache = {
                "user_initiator": embeddings.user_initiator.data,
                "item_initiator": embeddings.item_initiator.data,
                "user_participant": embeddings.user_participant.data,
                "item_participant": embeddings.item_participant.data,
                "friend_average": friend_average.data,
            }

    def invalidate_cache(self) -> None:
        self._eval_cache = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        cache = self._eval_cache
        return self.predictor.score_candidates(
            user,
            item_ids,
            cache["user_initiator"],
            cache["item_initiator"],
            cache["friend_average"],
            cache["item_participant"],
        )

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        cache = self._eval_cache
        return self.predictor.score_candidates_batch(
            users,
            item_ids,
            cache["user_initiator"],
            cache["item_initiator"],
            cache["friend_average"],
            cache["item_participant"],
        )

    def scoring_factors(self):
        # Eq. 9 is linear in the two item views, so it folds into one
        # concatenated inner product: [(1-a)*u_init, a*friend_avg(u_part)]
        # against [v_init, v_part].
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        cache = self._eval_cache
        alpha = self.predictor.alpha
        user_factors = np.hstack(
            [(1.0 - alpha) * cache["user_initiator"], alpha * cache["friend_average"]]
        )
        item_factors = np.hstack([cache["item_initiator"], cache["item_participant"]])
        return user_factors, item_factors

    def final_embeddings(self) -> Dict[str, np.ndarray]:
        """Final per-view user/item embeddings as NumPy arrays (Figures 5-6)."""
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        return {
            "user_initiator": self._eval_cache["user_initiator"],
            "item_initiator": self._eval_cache["item_initiator"],
            "user_participant": self._eval_cache["user_participant"],
            "item_participant": self._eval_cache["item_participant"],
        }

    @property
    def name(self) -> str:
        if self.config.share_user_roles and self.config.share_item_roles:
            return "GBGCN (w/o user & item roles)"
        if self.config.share_user_roles:
            return "GBGCN (w/o user roles)"
        if self.config.share_item_roles:
            return "GBGCN (w/o item roles)"
        return "GBGCN"
