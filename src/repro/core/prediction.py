"""The role-weighted prediction function of GBGCN (Eq. 9).

The score of user ``m`` launching a successful group for item ``n`` blends
(1) the initiator-view affinity between ``m`` and ``n`` and (2) the average
participant-view affinity between ``m``'s friends and ``n``, weighted by the
role coefficient ``alpha``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, sparse_matmul

__all__ = ["RoleWeightedPredictor"]


class RoleWeightedPredictor:
    """Computes ``y_mn = (1-alpha) * <u_i, v_i> + alpha * <mean_friends(u_p), v_p>``."""

    def __init__(self, social_normalized: sp.spmatrix, alpha: float) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.social_normalized = social_normalized.tocsr()
        self.alpha = alpha

    # ------------------------------------------------------------------
    # Differentiable scoring (training)
    # ------------------------------------------------------------------
    def friend_average(self, user_participant: Tensor) -> Tensor:
        """Mean participant-view embedding of each user's friends."""
        return sparse_matmul(self.social_normalized, user_participant)

    def score_pairs(
        self,
        users: np.ndarray,
        items: np.ndarray,
        user_initiator: Tensor,
        item_initiator: Tensor,
        friend_average_participant: Tensor,
        item_participant: Tensor,
    ) -> Tensor:
        """Differentiable scores for aligned (user, item) arrays."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        own = (user_initiator[users] * item_initiator[items]).sum(axis=-1)
        friends = (friend_average_participant[users] * item_participant[items]).sum(axis=-1)
        return own * (1.0 - self.alpha) + friends * self.alpha

    # ------------------------------------------------------------------
    # NumPy scoring (evaluation)
    # ------------------------------------------------------------------
    def score_candidates(
        self,
        user: int,
        item_ids: np.ndarray,
        user_initiator: np.ndarray,
        item_initiator: np.ndarray,
        friend_average_participant: np.ndarray,
        item_participant: np.ndarray,
    ) -> np.ndarray:
        """Gradient-free scores of a candidate item array for one user."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        own = item_initiator[item_ids] @ user_initiator[user]
        friends = item_participant[item_ids] @ friend_average_participant[user]
        return (1.0 - self.alpha) * own + self.alpha * friends

    def score_candidates_batch(
        self,
        users: np.ndarray,
        item_ids: np.ndarray,
        user_initiator: np.ndarray,
        item_initiator: np.ndarray,
        friend_average_participant: np.ndarray,
        item_participant: np.ndarray,
    ) -> np.ndarray:
        """Gradient-free ``(len(users), len(item_ids))`` score block.

        Two matrix-matrix products over the cached propagated embeddings
        replace ``len(users)`` matrix-vector products of
        :meth:`score_candidates` — the serving/batched-evaluation hot path.
        """
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        own = user_initiator[users] @ item_initiator[item_ids].T
        friends = friend_average_participant[users] @ item_participant[item_ids].T
        return (1.0 - self.alpha) * own + self.alpha * friends
