"""The role-weighted prediction function of GBGCN (Eq. 9).

The score of user ``m`` launching a successful group for item ``n`` blends
(1) the initiator-view affinity between ``m`` and ``n`` and (2) the average
participant-view affinity between ``m``'s friends and ``n``, weighted by the
role coefficient ``alpha``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, cache_transpose, gathered_dot_difference, sparse_matmul

__all__ = ["RoleWeightedPredictor"]


class RoleWeightedPredictor:
    """Computes ``y_mn = (1-alpha) * <u_i, v_i> + alpha * <mean_friends(u_p), v_p>``."""

    def __init__(self, social_normalized: sp.spmatrix, alpha: float) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.social_normalized = social_normalized.tocsr()
        # friend_average runs once per batch; precompute the CSR transpose
        # its backward needs instead of deriving it per call.
        cache_transpose(self.social_normalized)
        self.alpha = alpha

    # ------------------------------------------------------------------
    # Differentiable scoring (training)
    # ------------------------------------------------------------------
    def friend_average(self, user_participant: Tensor) -> Tensor:
        """Mean participant-view embedding of each user's friends."""
        return sparse_matmul(self.social_normalized, user_participant)

    def score_pairs(
        self,
        users: np.ndarray,
        items: np.ndarray,
        user_initiator: Tensor,
        item_initiator: Tensor,
        friend_average_participant: Tensor,
        item_participant: Tensor,
    ) -> Tensor:
        """Differentiable scores for aligned (user, item) arrays."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        own = (user_initiator[users] * item_initiator[items]).sum(axis=-1)
        friends = (friend_average_participant[users] * item_participant[items]).sum(axis=-1)
        return own * (1.0 - self.alpha) + friends * self.alpha

    def score_pair_difference(
        self,
        users: np.ndarray,
        positive_items: np.ndarray,
        negative_items: np.ndarray,
        user_initiator: Tensor,
        item_initiator: Tensor,
        friend_average_participant: Tensor,
        item_participant: Tensor,
    ) -> Tensor:
        """Differentiable ``score(u, pos) - score(u, neg)`` for aligned arrays.

        The pairwise-ranking hot path: both dots share one gather of the
        user-side rows and each embedding table receives a single fused
        scatter in the backward (see
        :func:`~repro.autograd.gathered_dot_difference`), instead of the
        four gathers and four scatters that two :meth:`score_pairs` calls
        would cost.
        """
        users = np.asarray(users, dtype=np.int64)
        positive_items = np.asarray(positive_items, dtype=np.int64)
        negative_items = np.asarray(negative_items, dtype=np.int64)
        own = gathered_dot_difference(user_initiator, item_initiator, users, positive_items, negative_items)
        friends = gathered_dot_difference(
            friend_average_participant, item_participant, users, positive_items, negative_items
        )
        return own * (1.0 - self.alpha) + friends * self.alpha

    # ------------------------------------------------------------------
    # NumPy scoring (evaluation)
    # ------------------------------------------------------------------
    def score_candidates(
        self,
        user: int,
        item_ids: np.ndarray,
        user_initiator: np.ndarray,
        item_initiator: np.ndarray,
        friend_average_participant: np.ndarray,
        item_participant: np.ndarray,
    ) -> np.ndarray:
        """Gradient-free scores of a candidate item array for one user."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        own = item_initiator[item_ids] @ user_initiator[user]
        friends = item_participant[item_ids] @ friend_average_participant[user]
        return (1.0 - self.alpha) * own + self.alpha * friends

    def score_candidates_batch(
        self,
        users: np.ndarray,
        item_ids: np.ndarray,
        user_initiator: np.ndarray,
        item_initiator: np.ndarray,
        friend_average_participant: np.ndarray,
        item_participant: np.ndarray,
    ) -> np.ndarray:
        """Gradient-free ``(len(users), len(item_ids))`` score block.

        Two matrix-matrix products over the cached propagated embeddings
        replace ``len(users)`` matrix-vector products of
        :meth:`score_candidates` — the serving/batched-evaluation hot path.
        """
        users = np.asarray(users, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        own = user_initiator[users] @ item_initiator[item_ids].T
        friends = friend_average_participant[users] @ item_participant[item_ids].T
        return (1.0 - self.alpha) * own + self.alpha * friends
