"""The fine-grained double-pairwise loss of GBGCN (Eq. 10-12).

Successful behaviors contribute a BPR term for the initiator *and* one BPR
term per participant (all of them preferred the target item over a sampled
negative).  Failed behaviors contribute the initiator's BPR term (they did
pay for the item) plus a reversed, ``beta``-weighted BPR term per friend of
the initiator — the friends implicitly preferred the negative item, which
is the strong-negative signal the paper distills from failed groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..autograd import Tensor, log_sigmoid
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import GroupBuyingBatch

__all__ = ["DoublePairwiseLoss"]

ScoreFunction = Callable[[np.ndarray, np.ndarray], Tensor]


@dataclass
class DoublePairwiseLoss:
    """Configuration + implementation of the fine-grained loss.

    Parameters
    ----------
    beta:
        The loss coefficient controlling how strongly a failed group is
        interpreted as the friends disliking the item.  ``beta=0`` recovers
        the standard BPR loss over initiator-item pairs (the paper's
        comparison point in Section IV-E2).
    """

    beta: float = 0.05

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError("beta must be non-negative")

    def __call__(
        self,
        batch: GroupBuyingBatch,
        score_pairs: Optional[ScoreFunction] = None,
        score_pair_difference: Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], Tensor]] = None,
    ) -> Tensor:
        """Mean fine-grained loss of ``batch`` given a differentiable scorer.

        ``score_pairs(users, items)`` must return the Eq. 9 scores for the
        aligned index arrays; the loss calls it for initiators,
        participants of successful behaviors and friends of initiators of
        failed behaviors.

        When the scorer also provides ``score_pair_difference(users, pos,
        neg)`` (returning ``score(u, pos) - score(u, neg)`` per row), the
        loss uses that instead: every BPR term only ever consumes the
        difference, all three terms are scored through one call on
        concatenated index arrays, and the fused form shares the user-side
        gather between the positive and negative dot — this is the training
        hot path for GBGCN and its pre-training stage.
        """
        batch_size = max(len(batch), 1)
        if score_pair_difference is not None:
            return self._from_differences(batch, score_pair_difference, batch_size)
        if score_pairs is None:
            raise TypeError("either score_pairs or score_pair_difference is required")

        # Initiator term, shared by Eq. 10 and Eq. 11: the initiator prefers
        # the launched item over the sampled negative in both cases.
        initiator_positive = score_pairs(batch.initiators, batch.items)
        initiator_negative = score_pairs(batch.initiators, batch.negative_items)
        loss = -log_sigmoid(initiator_positive - initiator_negative).sum()

        # Participant term of successful behaviors (Eq. 11).
        if batch.participants.size:
            rows = batch.participant_segment
            participant_positive = score_pairs(batch.participants, batch.items[rows])
            participant_negative = score_pairs(batch.participants, batch.negative_items[rows])
            loss = loss + (-log_sigmoid(participant_positive - participant_negative)).sum()

        # Friend term of failed behaviors (Eq. 10): friends are assumed to
        # prefer the negative item over the failed target, down-weighted by beta.
        if self.beta > 0 and batch.failed_friends.size:
            rows = batch.failed_friend_segment
            friend_positive = score_pairs(batch.failed_friends, batch.items[rows])
            friend_negative = score_pairs(batch.failed_friends, batch.negative_items[rows])
            loss = loss + (-log_sigmoid(friend_negative - friend_positive)).sum() * self.beta

        return loss * (1.0 / batch_size)

    def _from_differences(
        self,
        batch: GroupBuyingBatch,
        score_pair_difference: Callable[[np.ndarray, np.ndarray, np.ndarray], Tensor],
        batch_size: int,
    ) -> Tensor:
        """Loss from one fused ``score(u, pos) - score(u, neg)`` evaluation."""
        user_parts = [batch.initiators]
        positive_parts = [batch.items]
        negative_parts = [batch.negative_items]
        has_participants = bool(batch.participants.size)
        if has_participants:
            rows = batch.participant_segment
            user_parts.append(batch.participants)
            positive_parts.append(batch.items[rows])
            negative_parts.append(batch.negative_items[rows])
        has_failed = self.beta > 0 and bool(batch.failed_friends.size)
        if has_failed:
            rows = batch.failed_friend_segment
            user_parts.append(batch.failed_friends)
            positive_parts.append(batch.items[rows])
            negative_parts.append(batch.negative_items[rows])

        differences = score_pair_difference(
            np.concatenate(user_parts),
            np.concatenate(positive_parts),
            np.concatenate(negative_parts),
        )
        bounds = np.cumsum([0] + [part.shape[0] for part in user_parts])

        loss = -log_sigmoid(differences[slice(bounds[0], bounds[1])]).sum()
        if has_participants:
            loss = loss + (-log_sigmoid(differences[slice(bounds[1], bounds[2])])).sum()
        if has_failed:
            start = 2 if has_participants else 1
            # Friends of failed groups prefer the negative item: the BPR
            # argument is score(neg) - score(pos) = -difference.
            friend_differences = differences[slice(bounds[start], bounds[start + 1])]
            loss = loss + (-log_sigmoid(-friend_differences)).sum() * self.beta
        return loss * (1.0 / batch_size)
