"""The pre-training model of GBGCN (Section III-C3).

Because training embeddings and FC layers jointly from scratch is unstable
on sparse data, the paper first trains "an extremely simplified version of
GBGCN that removes all propagation layers" with Adam, L2-normalizes the
learned raw embeddings, and then fine-tunes the full model with SGD.

:class:`GBGCNPretrainModel` is exactly that simplified model: raw
embeddings scored with the role-weighted prediction function and trained
with the same double-pairwise loss.  Its embedding parameters share the
qualified names of GBGCN's raw embeddings so the state transfer is a
``load_state_dict(strict=False)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, no_grad
from ..graph.hetero import HeteroGroupBuyingGraph
from ..models.base import DataMode, RecommenderModel
from ..nn import Embedding
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..training.batches import GroupBuyingBatch
from .gbgcn import GBGCN, GBGCNConfig
from .loss import DoublePairwiseLoss
from .prediction import RoleWeightedPredictor

__all__ = ["GBGCNPretrainModel", "transfer_pretrained_embeddings"]


class GBGCNPretrainModel(RecommenderModel):
    """GBGCN with every propagation layer removed (raw embeddings only)."""

    data_mode = DataMode.GROUP_BUYING

    def __init__(
        self,
        num_users: int,
        num_items: int,
        graph: HeteroGroupBuyingGraph,
        config: Optional[GBGCNConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        config = config or GBGCNConfig()
        super().__init__(num_users, num_items, l2_weight=config.l2_weight)
        self.config = config
        self.user_embedding = Embedding(num_users, config.embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, config.embedding_dim, rng=rng)
        self._social_normalized: sp.csr_matrix = graph.friendship.normalized()
        self.predictor = RoleWeightedPredictor(self._social_normalized, alpha=config.alpha)
        self.loss_function = DoublePairwiseLoss(beta=config.beta)
        self._eval_cache: Optional[np.ndarray] = None

    def batch_loss(self, batch: GroupBuyingBatch) -> Tensor:
        friend_average = self.predictor.friend_average(self.user_embedding.weight)

        def score_pair_difference(users, positive_items, negative_items) -> Tensor:
            return self.predictor.score_pair_difference(
                users,
                positive_items,
                negative_items,
                self.user_embedding.weight,
                self.item_embedding.weight,
                friend_average,
                self.item_embedding.weight,
            )

        loss = self.loss_function(batch, score_pair_difference=score_pair_difference)
        touched_items = np.unique(np.concatenate([batch.items, batch.negative_items]))
        regularizer = self.regularization(
            [self.user_embedding(batch.initiators), self.item_embedding(touched_items)]
        ) * (1.0 / max(len(batch), 1))
        return loss + regularizer

    def prepare_for_evaluation(self) -> None:
        with no_grad():
            self._eval_cache = self.predictor.friend_average(self.user_embedding.weight).data

    def invalidate_cache(self) -> None:
        self._eval_cache = None

    def rank_scores(self, user: int, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        return self.predictor.score_candidates(
            user,
            item_ids,
            self.user_embedding.weight.data,
            self.item_embedding.weight.data,
            self._eval_cache,
            self.item_embedding.weight.data,
        )

    def score_batch(self, users: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        return self.predictor.score_candidates_batch(
            users,
            item_ids,
            self.user_embedding.weight.data,
            self.item_embedding.weight.data,
            self._eval_cache,
            self.item_embedding.weight.data,
        )

    def scoring_factors(self):
        # Same linear fold as GBGCN's Eq. 9, over the raw (un-propagated)
        # embeddings the pretrain stage scores with — both item views share
        # one table here.
        if self._eval_cache is None:
            self.prepare_for_evaluation()
        alpha = self.predictor.alpha
        item_vectors = self.item_embedding.weight.data
        user_factors = np.hstack(
            [(1.0 - alpha) * self.user_embedding.weight.data, alpha * self._eval_cache]
        )
        return user_factors, np.hstack([item_vectors, item_vectors])

    def normalize_embeddings(self) -> None:
        """L2-normalize the raw embeddings, as the paper does before fine-tuning."""
        self.user_embedding.normalize_()
        self.item_embedding.normalize_()

    @property
    def name(self) -> str:
        return "GBGCN-pretrain"


def transfer_pretrained_embeddings(pretrained: GBGCNPretrainModel, model: GBGCN) -> None:
    """Copy the (normalized) pre-trained raw embeddings into a full GBGCN."""
    state = {
        "user_embedding.weight": pretrained.user_embedding.weight.data,
        "item_embedding.weight": pretrained.item_embedding.weight.data,
    }
    model.load_state_dict(state, strict=False)
