"""The paper's primary contribution: GBGCN and its components."""

from .propagation import CrossViewPropagation, InViewPropagation, ViewEmbeddings
from .prediction import RoleWeightedPredictor
from .loss import DoublePairwiseLoss
from .gbgcn import GBGCN, GBGCNConfig
from .pretrain import GBGCNPretrainModel, transfer_pretrained_embeddings
from .ablation import ABLATION_VARIANTS, build_ablation_model

__all__ = [
    "CrossViewPropagation",
    "InViewPropagation",
    "ViewEmbeddings",
    "RoleWeightedPredictor",
    "DoublePairwiseLoss",
    "GBGCN",
    "GBGCNConfig",
    "GBGCNPretrainModel",
    "transfer_pretrained_embeddings",
    "ABLATION_VARIANTS",
    "build_ablation_model",
]
