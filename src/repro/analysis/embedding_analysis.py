"""Embedding analyses behind Figures 5 and 6 of the paper.

Figure 5 plots, per entity, the probability density of the cosine
similarity between its initiator-view embedding and its participant-view
embedding — once for the in-view propagation outputs and once for the
cross-view propagation outputs.  Figure 6 projects the final embeddings of
sampled users and items from both views with t-SNE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import stats

from ..autograd import cosine_similarity, no_grad
from ..core.gbgcn import GBGCN
from ..utils.rng import make_rng
from .tsne import TSNEConfig, tsne_embed

__all__ = [
    "SimilarityDistribution",
    "cross_view_similarity",
    "gbgcn_view_similarities",
    "tsne_projection",
]


@dataclass
class SimilarityDistribution:
    """Cosine similarities between two embedding sets plus a density estimate."""

    similarities: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.similarities)) if self.similarities.size else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.similarities)) if self.similarities.size else 0.0

    def pdf(self, grid_points: int = 200) -> Dict[str, np.ndarray]:
        """Kernel-density estimate of the similarity distribution.

        Returns a dict with ``x`` (grid) and ``density`` arrays, the series
        plotted in Figure 5.  Falls back to a histogram density if the
        similarities are (numerically) constant.
        """
        values = self.similarities
        low, high = float(values.min()), float(values.max())
        if np.isclose(low, high):
            center = low
            x = np.linspace(center - 0.01, center + 0.01, grid_points)
            density = np.zeros_like(x)
            density[np.argmin(np.abs(x - center))] = 1.0
            return {"x": x, "density": density}
        kde = stats.gaussian_kde(values)
        x = np.linspace(low, high, grid_points)
        return {"x": x, "density": kde(x)}


def cross_view_similarity(first: np.ndarray, second: np.ndarray) -> SimilarityDistribution:
    """Row-wise cosine similarity between two aligned embedding matrices."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError("embedding matrices must have the same shape")
    return SimilarityDistribution(similarities=cosine_similarity(first, second, axis=1))


def gbgcn_view_similarities(model: GBGCN) -> Dict[str, SimilarityDistribution]:
    """The four distributions of Figure 5 for a trained GBGCN.

    Keys: ``user_in_view``, ``item_in_view`` (in-view propagation outputs)
    and ``user_cross_view``, ``item_cross_view`` (cross-view outputs, i.e.
    the newly generated part of Eq. 8's concatenation).
    """
    with no_grad():
        in_view = model.in_view_embeddings()
        full = model.propagate()

    in_view_dim = (model.config.num_layers + 1) * model.config.embedding_dim

    # The cross-view output is the second half of the Eq. 8 concatenation.
    user_cross_i = full.user_initiator.data[:, in_view_dim:]
    user_cross_p = full.user_participant.data[:, in_view_dim:]
    item_cross_i = full.item_initiator.data[:, in_view_dim:]
    item_cross_p = full.item_participant.data[:, in_view_dim:]

    return {
        "user_in_view": cross_view_similarity(in_view.user_initiator.data, in_view.user_participant.data),
        "item_in_view": cross_view_similarity(in_view.item_initiator.data, in_view.item_participant.data),
        "user_cross_view": cross_view_similarity(user_cross_i, user_cross_p),
        "item_cross_view": cross_view_similarity(item_cross_i, item_cross_p),
    }


def tsne_projection(
    model: GBGCN,
    num_users: int = 1000,
    num_items: int = 1000,
    config: Optional[TSNEConfig] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Figure 6: 2-D t-SNE of sampled users/items in both views.

    Returns four ``N x 2`` arrays keyed ``user_initiator``,
    ``user_participant``, ``item_initiator`` and ``item_participant``; all
    four embedding sets are projected jointly so the views share one space.
    """
    embeddings = model.final_embeddings()
    rng = make_rng(seed)
    user_count = min(num_users, model.num_users)
    item_count = min(num_items, model.num_items)
    user_sample = rng.choice(model.num_users, size=user_count, replace=False)
    item_sample = rng.choice(model.num_items, size=item_count, replace=False)

    stacked = np.vstack(
        [
            embeddings["user_initiator"][user_sample],
            embeddings["user_participant"][user_sample],
            embeddings["item_initiator"][item_sample],
            embeddings["item_participant"][item_sample],
        ]
    )
    projected = tsne_embed(stacked, config=config)

    boundaries = np.cumsum([user_count, user_count, item_count, item_count])
    return {
        "user_initiator": projected[: boundaries[0]],
        "user_participant": projected[boundaries[0] : boundaries[1]],
        "item_initiator": projected[boundaries[1] : boundaries[2]],
        "item_participant": projected[boundaries[2] : boundaries[3]],
        "user_sample": user_sample,
        "item_sample": item_sample,
    }
