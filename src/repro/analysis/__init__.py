"""Analyses of trained models and datasets: embedding similarity, t-SNE,
hyper-parameter sweeps, data-sparsity studies and social-influence analysis."""

from .tsne import TSNE, TSNEConfig, tsne_embed
from .embedding_analysis import (
    SimilarityDistribution,
    cross_view_similarity,
    gbgcn_view_similarities,
    tsne_projection,
)
from .hyperparam import (
    PAPER_ALPHA_GRID,
    PAPER_BETA_GRID,
    SweepPoint,
    sweep_loss_coefficient,
    sweep_role_coefficient,
)
from .sparsity import SparsityPoint, SparsityStudy, run_sparsity_study
from .influence import (
    InfluenceReport,
    InitiatorInfluence,
    analyze_social_influence,
    initiator_influence,
)

__all__ = [
    "TSNE",
    "TSNEConfig",
    "tsne_embed",
    "SimilarityDistribution",
    "cross_view_similarity",
    "gbgcn_view_similarities",
    "tsne_projection",
    "SweepPoint",
    "PAPER_ALPHA_GRID",
    "PAPER_BETA_GRID",
    "sweep_loss_coefficient",
    "sweep_role_coefficient",
    "SparsityPoint",
    "SparsityStudy",
    "run_sparsity_study",
    "InfluenceReport",
    "InitiatorInfluence",
    "analyze_social_influence",
    "initiator_influence",
]
