"""Social-influence analysis of a group-buying log.

The paper's second challenge is that "the initiator's influence on the
social network is another significant factor determining whether the friend
joins".  This module quantifies that factor directly from the data (no
model involved):

* per-initiator clinch rates,
* the relationship between an initiator's social degree and their clinch
  rate (more friends means more potential participants),
* the conversion rate of invitations (participants per friend), which is
  the empirical footprint of "social influence" in the log.

The synthetic generator plants these effects; the analysis verifies they
exist with the same direction the paper's challenge statement assumes, and
it works unchanged on a real log loaded via :mod:`repro.data.io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy import stats

from ..data.dataset import GroupBuyingDataset
from ..utils.tables import format_table

__all__ = [
    "InitiatorInfluence",
    "InfluenceReport",
    "initiator_influence",
    "analyze_social_influence",
]


@dataclass(frozen=True)
class InitiatorInfluence:
    """Per-initiator aggregates of launching activity and clinch success."""

    user: int
    num_launched: int
    num_successful: int
    num_friends: int
    mean_participants: float

    @property
    def success_rate(self) -> float:
        if self.num_launched == 0:
            return 0.0
        return self.num_successful / self.num_launched


@dataclass(frozen=True)
class InfluenceReport:
    """Dataset-level summary of the social-influence footprint."""

    #: Spearman correlation between an initiator's friend count and clinch rate.
    degree_success_correlation: float
    degree_success_p_value: float
    #: Mean participants per launched group, split by success.
    mean_participants_successful: float
    mean_participants_failed: float
    #: Overall probability that an invited friend joins (participants / friends).
    invitation_conversion_rate: float
    num_initiators: int

    def format(self) -> str:
        rows = [
            ("degree vs. success-rate correlation (Spearman)", self.degree_success_correlation),
            ("correlation p-value", self.degree_success_p_value),
            ("mean participants in successful groups", self.mean_participants_successful),
            ("mean participants in failed groups", self.mean_participants_failed),
            ("invitation conversion rate", self.invitation_conversion_rate),
            ("initiators analyzed", self.num_initiators),
        ]
        return format_table(["Quantity", "Value"], rows)


def initiator_influence(dataset: GroupBuyingDataset) -> List[InitiatorInfluence]:
    """Per-initiator launching/clinching aggregates."""
    friends = dataset.friend_lists()
    grouped = dataset.behaviors_of_initiator()
    results: List[InitiatorInfluence] = []
    for user in sorted(grouped):
        behaviors = grouped[user]
        participant_counts = [len(b.participants) for b in behaviors]
        results.append(
            InitiatorInfluence(
                user=user,
                num_launched=len(behaviors),
                num_successful=sum(1 for b in behaviors if b.is_successful),
                num_friends=int(friends[user].size),
                mean_participants=float(np.mean(participant_counts)) if participant_counts else 0.0,
            )
        )
    return results


def analyze_social_influence(dataset: GroupBuyingDataset, min_launched: int = 1) -> InfluenceReport:
    """Compute the :class:`InfluenceReport` for one dataset.

    ``min_launched`` filters out one-shot initiators whose empirical clinch
    rate (0 or 1) would only add noise to the correlation.
    """
    per_initiator = [
        record for record in initiator_influence(dataset) if record.num_launched >= min_launched
    ]
    if not per_initiator:
        raise ValueError("no initiator launches at least min_launched groups")

    degrees = np.array([record.num_friends for record in per_initiator], dtype=np.float64)
    success_rates = np.array([record.success_rate for record in per_initiator], dtype=np.float64)
    if np.ptp(degrees) > 0 and np.ptp(success_rates) > 0:
        correlation, p_value = stats.spearmanr(degrees, success_rates)
    else:
        correlation, p_value = 0.0, 1.0

    successful_sizes = [len(b.participants) for b in dataset.successful_behaviors]
    failed_sizes = [len(b.participants) for b in dataset.failed_behaviors]

    friends = dataset.friend_lists()
    invited = sum(min(friends[b.initiator].size, 10) for b in dataset.behaviors)
    joined = sum(len(b.participants) for b in dataset.behaviors)

    return InfluenceReport(
        degree_success_correlation=float(correlation),
        degree_success_p_value=float(p_value),
        mean_participants_successful=float(np.mean(successful_sizes)) if successful_sizes else 0.0,
        mean_participants_failed=float(np.mean(failed_sizes)) if failed_sizes else 0.0,
        invitation_conversion_rate=float(joined / invited) if invited else 0.0,
        num_initiators=len(per_initiator),
    )
