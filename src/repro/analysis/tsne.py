"""Exact t-SNE [van der Maaten & Hinton, 2008] implemented in NumPy.

The paper's Figure 6 visualizes 1000 user and 1000 item embeddings per view
with t-SNE.  scikit-learn is not available offline, so this module provides
an exact (non-Barnes-Hut) implementation, which is entirely adequate at a
few thousand points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..utils.rng import make_rng

__all__ = ["TSNEConfig", "TSNE", "tsne_embed"]


@dataclass
class TSNEConfig:
    """Hyper-parameters of the t-SNE optimization."""

    perplexity: float = 30.0
    num_iterations: int = 300
    learning_rate: float = 100.0
    momentum: float = 0.8
    early_exaggeration: float = 4.0
    exaggeration_iterations: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        if self.perplexity <= 1:
            raise ValueError("perplexity must be greater than 1")
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be positive")


def _pairwise_squared_distances(data: np.ndarray) -> np.ndarray:
    sum_squares = (data ** 2).sum(axis=1)
    distances = sum_squares[:, None] + sum_squares[None, :] - 2.0 * data @ data.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _binary_search_beta(distances_row: np.ndarray, target_entropy: float, tolerance: float = 1e-5) -> np.ndarray:
    """Find the Gaussian precision (beta) matching the target entropy for one row."""
    beta, beta_min, beta_max = 1.0, -np.inf, np.inf
    probabilities = np.zeros_like(distances_row)
    for _ in range(50):
        exponent = np.exp(-distances_row * beta)
        total = exponent.sum()
        if total <= 0:
            total = 1e-12
        probabilities = exponent / total
        entropy = -np.sum(probabilities * np.log2(np.maximum(probabilities, 1e-12)))
        difference = entropy - target_entropy
        if abs(difference) < tolerance:
            break
        if difference > 0:
            beta_min = beta
            beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
        else:
            beta_max = beta
            beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2.0
    return probabilities


def _joint_probabilities(data: np.ndarray, perplexity: float) -> np.ndarray:
    num_points = data.shape[0]
    distances = _pairwise_squared_distances(data)
    target_entropy = np.log2(perplexity)
    conditional = np.zeros((num_points, num_points))
    for index in range(num_points):
        mask = np.arange(num_points) != index
        conditional[index, mask] = _binary_search_beta(distances[index, mask], target_entropy)
    joint = (conditional + conditional.T) / (2.0 * num_points)
    return np.maximum(joint, 1e-12)


class TSNE:
    """Exact t-SNE projecting vectors to (by default) two dimensions."""

    def __init__(self, config: Optional[TSNEConfig] = None, num_components: int = 2) -> None:
        self.config = config or TSNEConfig()
        self.num_components = num_components

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` (``N x D``) to ``N x num_components``."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array")
        num_points = data.shape[0]
        if num_points < 5:
            raise ValueError("t-SNE needs at least 5 points")
        config = self.config
        perplexity = min(config.perplexity, (num_points - 1) / 3.0)

        joint = _joint_probabilities(data, perplexity)
        rng = make_rng(config.seed)
        embedding = rng.normal(0.0, 1e-4, size=(num_points, self.num_components))
        velocity = np.zeros_like(embedding)

        exaggerated = joint * config.early_exaggeration
        for iteration in range(config.num_iterations):
            target = exaggerated if iteration < config.exaggeration_iterations else joint

            distances = _pairwise_squared_distances(embedding)
            student = 1.0 / (1.0 + distances)
            np.fill_diagonal(student, 0.0)
            low_dim = student / np.maximum(student.sum(), 1e-12)
            low_dim = np.maximum(low_dim, 1e-12)

            weights = (target - low_dim) * student
            gradient = 4.0 * (
                np.diag(weights.sum(axis=1)) - weights
            ) @ embedding

            velocity = config.momentum * velocity - config.learning_rate * gradient
            embedding = embedding + velocity
            embedding = embedding - embedding.mean(axis=0)

        return embedding


def tsne_embed(data: np.ndarray, config: Optional[TSNEConfig] = None) -> np.ndarray:
    """Convenience wrapper around :class:`TSNE`."""
    return TSNE(config).fit_transform(data)
