"""Data-sparsity study.

The paper's stated future work is "to study the data sparsity issue": how
quickly does group-buying recommendation quality degrade as the behavior
log thins out, and do friend-aware models (GBMF, GBGCN) hold up better than
pure CF because they can lean on the social network?  This module provides
the controlled experiment: train the selected models on progressively
subsampled training behaviors while keeping the *test set, social network
and candidate lists fixed*, so the only thing that changes is training
density.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data.splits import DatasetSplit
from ..data.transforms import subsample_behaviors
from ..eval.protocol import LeaveOneOutEvaluator
from ..models.registry import ModelSettings, build_model
from ..training.pipeline import TrainingSettings, train_model
from ..utils.logging import get_logger
from ..utils.tables import format_table

__all__ = ["SparsityPoint", "SparsityStudy", "run_sparsity_study"]

logger = get_logger("analysis.sparsity")

#: Default training-set fractions for the study.
DEFAULT_FRACTIONS: Sequence[float] = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class SparsityPoint:
    """Metrics of one model trained on one training-set fraction."""

    model_name: str
    fraction: float
    num_train_behaviors: int
    metrics: Dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class SparsityStudy:
    """All (model, fraction) points of one study."""

    metric: str
    points: List[SparsityPoint] = field(default_factory=list)

    def series(self, model_name: str) -> List[SparsityPoint]:
        """Points of one model, ordered by increasing fraction."""
        return sorted(
            (point for point in self.points if point.model_name == model_name),
            key=lambda point: point.fraction,
        )

    def model_names(self) -> List[str]:
        return sorted({point.model_name for point in self.points})

    def degradation(self, model_name: str) -> float:
        """Relative metric drop from the densest to the sparsest fraction.

        0.0 means no degradation; 0.5 means the metric halves at the
        sparsest setting.  Models robust to sparsity have small values.
        """
        series = self.series(model_name)
        if len(series) < 2:
            raise ValueError(f"need at least two fractions for '{model_name}'")
        dense = series[-1][self.metric]
        sparse = series[0][self.metric]
        if dense <= 0:
            return 0.0
        return max(0.0, (dense - sparse) / dense)

    def format(self) -> str:
        """Table of metric values: one row per model, one column per fraction."""
        fractions = sorted({point.fraction for point in self.points})
        headers = ["Method"] + [f"{fraction:.0%}" for fraction in fractions]
        rows = []
        for model_name in self.model_names():
            values = {point.fraction: point[self.metric] for point in self.series(model_name)}
            rows.append([model_name] + [values.get(fraction, float("nan")) for fraction in fractions])
        return format_table(headers, rows)


def run_sparsity_study(
    split: DatasetSplit,
    evaluator: LeaveOneOutEvaluator,
    model_names: Sequence[str] = ("MF", "GBMF", "GBGCN"),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    model_settings: Optional[ModelSettings] = None,
    training: Optional[TrainingSettings] = None,
    metric: str = "Recall@10",
    seed: int = 0,
) -> SparsityStudy:
    """Train every model on every training fraction and collect test metrics.

    All models are trained with the single-stage Adam pipeline
    (:func:`~repro.training.pipeline.train_model`) for comparability; the
    GBGCN point therefore slightly understates what the two-stage pipeline
    reaches, which is irrelevant for the study's question (relative
    degradation across sparsity levels).
    """
    model_settings = model_settings or ModelSettings()
    training = training or TrainingSettings()
    study = SparsityStudy(metric=metric)

    for fraction in sorted(fractions):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fractions must lie in (0, 1]")
        if fraction == 1.0:
            train_dataset = split.train
        else:
            train_dataset = subsample_behaviors(split.train, fraction, seed=seed)
        logger.info("sparsity fraction %.2f: %d training behaviors", fraction, train_dataset.num_behaviors)

        for model_name in model_names:
            model = build_model(model_name, train_dataset, settings=model_settings)
            train_model(model, train_dataset, evaluator=None, settings=training)
            metrics = evaluator.evaluate_test(model).metrics
            study.points.append(
                SparsityPoint(
                    model_name=model_name,
                    fraction=fraction,
                    num_train_behaviors=train_dataset.num_behaviors,
                    metrics=metrics,
                )
            )
            logger.info("  %s: %s=%.4f", model_name, metric, metrics.get(metric, 0.0))
    return study
