"""Hyper-parameter sweeps behind Figure 4 of the paper.

Figure 4 plots Recall@10 and NDCG@10 of GBGCN as a function of the role
coefficient ``alpha`` (Eq. 9) and the loss coefficient ``beta`` (Eq. 10).
The sweep helpers retrain the model per value (as the paper does) and
return one row per setting; the benchmark harness prints them as series.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.gbgcn import GBGCNConfig
from ..data.splits import DatasetSplit
from ..eval.protocol import LeaveOneOutEvaluator
from ..training.pipeline import TrainingSettings, train_gbgcn_with_pretraining
from ..utils.logging import get_logger

__all__ = ["SweepPoint", "sweep_role_coefficient", "sweep_loss_coefficient"]

logger = get_logger("analysis.hyperparam")

#: Grids used in the paper.
PAPER_ALPHA_GRID: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
PAPER_BETA_GRID: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5)


@dataclass(frozen=True)
class SweepPoint:
    """One hyper-parameter setting and the metrics it reached on the test set."""

    parameter: str
    value: float
    metrics: Dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


def _run_configuration(
    split: DatasetSplit,
    config: GBGCNConfig,
    evaluator: LeaveOneOutEvaluator,
    settings: TrainingSettings,
) -> Dict[str, float]:
    model, _, _ = train_gbgcn_with_pretraining(split, config=config, settings=settings, evaluator=evaluator)
    return evaluator.evaluate_test(model).metrics


def sweep_role_coefficient(
    split: DatasetSplit,
    evaluator: LeaveOneOutEvaluator,
    base_config: Optional[GBGCNConfig] = None,
    settings: Optional[TrainingSettings] = None,
    alphas: Sequence[float] = PAPER_ALPHA_GRID,
) -> List[SweepPoint]:
    """Retrain GBGCN for each role coefficient ``alpha`` and collect metrics."""
    base_config = base_config or GBGCNConfig()
    settings = settings or TrainingSettings()
    points: List[SweepPoint] = []
    for alpha in alphas:
        config = replace(base_config, alpha=float(alpha))
        metrics = _run_configuration(split, config, evaluator, settings)
        logger.info("alpha=%.2f Recall@10=%.4f NDCG@10=%.4f", alpha, metrics["Recall@10"], metrics["NDCG@10"])
        points.append(SweepPoint(parameter="alpha", value=float(alpha), metrics=metrics))
    return points


def sweep_loss_coefficient(
    split: DatasetSplit,
    evaluator: LeaveOneOutEvaluator,
    base_config: Optional[GBGCNConfig] = None,
    settings: Optional[TrainingSettings] = None,
    betas: Sequence[float] = PAPER_BETA_GRID,
) -> List[SweepPoint]:
    """Retrain GBGCN for each loss coefficient ``beta`` and collect metrics.

    ``beta=0`` degenerates the double-pairwise loss to standard BPR, the
    comparison point the paper uses to show the fine-grained loss helps.
    """
    base_config = base_config or GBGCNConfig()
    settings = settings or TrainingSettings()
    points: List[SweepPoint] = []
    for beta in betas:
        config = replace(base_config, beta=float(beta))
        metrics = _run_configuration(split, config, evaluator, settings)
        logger.info("beta=%.3f Recall@10=%.4f NDCG@10=%.4f", beta, metrics["Recall@10"], metrics["NDCG@10"])
        points.append(SweepPoint(parameter="beta", value=float(beta), metrics=metrics))
    return points
