"""Loss functions used by GBGCN and the baseline models.

* :func:`bpr_loss` — Bayesian Personalized Ranking (MF, NCF-as-ranker,
  NGCF, SocialMF, DiffNet, GBMF, and the building block of GBGCN's
  fine-grained loss).
* :func:`log_loss` — pointwise binary cross entropy on scores (SIGR).
* :func:`regression_pairwise_loss` — the margin-regression pairwise loss
  used by AGREE.
* :func:`l2_regularization` — weight decay over an iterable of tensors.
* :func:`social_regularization` — the SocialMF-style constraint that pulls
  a user's embedding towards the mean of their friends' embeddings, which
  the paper adds to GBGCN's objective ("social regularization term
  proposed in [1]").
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, as_tensor, l2_norm_squared, log_sigmoid, sigmoid, sparse_matmul

__all__ = [
    "bpr_loss",
    "bpr_difference_loss",
    "log_loss",
    "regression_pairwise_loss",
    "l2_regularization",
    "social_regularization",
]


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Mean BPR loss ``-log sigmoid(pos - neg)`` over paired score tensors."""
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    if positive_scores.size == 0:
        return Tensor(0.0)
    return -log_sigmoid(positive_scores - negative_scores).mean()


def bpr_difference_loss(differences: Tensor) -> Tensor:
    """Mean BPR loss from precomputed ``pos - neg`` score differences.

    Models whose scores are embedding inner products feed this from
    :func:`~repro.autograd.gathered_dot_difference`, which shares the
    user-side gather between the positive and negative dot and emits one
    row-sparse scatter per table in the backward.  An empty batch yields a
    zero loss instead of a division by zero.
    """
    differences = as_tensor(differences)
    if differences.size == 0:
        return Tensor(0.0)
    return -log_sigmoid(differences).mean()


def log_loss(scores: Tensor, labels: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Binary cross-entropy of sigmoid(scores) against 0/1 ``labels``."""
    scores = as_tensor(scores)
    labels = np.asarray(labels, dtype=np.float64)
    probabilities = sigmoid(scores).clip(eps, 1.0 - eps)
    losses = -(as_tensor(labels) * probabilities.log() + as_tensor(1.0 - labels) * (1.0 - probabilities).log())
    return losses.mean()


def regression_pairwise_loss(positive_scores: Tensor, negative_scores: Tensor, margin: float = 1.0) -> Tensor:
    """AGREE's regression-based pairwise loss ``(pos - neg - margin)^2``."""
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    return ((positive_scores - negative_scores - margin) ** 2).mean()


def l2_regularization(parameters: Iterable[Tensor], weight: float) -> Tensor:
    """``weight * sum_i ||p_i||^2`` over the given parameters."""
    if weight == 0.0:
        return Tensor(0.0)
    return l2_norm_squared(parameters) * weight


def social_regularization(
    user_embeddings: Tensor,
    social_matrix: sp.spmatrix,
    weight: float,
    user_indices: Optional[np.ndarray] = None,
) -> Tensor:
    """SocialMF-style regularizer pulling users towards their friends' mean.

    Parameters
    ----------
    user_embeddings:
        The full ``P x d`` user embedding tensor.
    social_matrix:
        Row-normalized ``P x P`` social adjacency (friend averaging matrix).
    weight:
        Regularization strength; 0 disables the term.
    user_indices:
        Optionally restrict the penalty to the users present in the current
        mini-batch (keeps the cost proportional to the batch).
    """
    if weight == 0.0:
        return Tensor(0.0)
    # Users with no friends have an all-zero friend mean; penalizing them
    # would just shrink their embeddings towards zero, so mask them out.
    has_friends = (social_matrix.getnnz(axis=1) > 0).astype(np.float64).reshape(-1, 1)
    if user_indices is not None:
        # Batch-restricted form: slice the averaging matrix down to the
        # batch rows *before* propagating, so the term costs O(batch) — the
        # full-table matmul, subtraction and masking below would each touch
        # every user per mini-batch.
        rows = np.asarray(user_indices, dtype=np.int64)
        friend_mean = sparse_matmul(social_matrix.tocsr()[rows], user_embeddings)
        difference = user_embeddings[rows] - friend_mean
        difference = difference * Tensor(has_friends[rows])
        return (difference ** 2).sum() * weight
    friend_mean = sparse_matmul(social_matrix, user_embeddings)
    difference = user_embeddings - friend_mean
    difference = difference * Tensor(has_friends)
    return (difference ** 2).sum() * weight
