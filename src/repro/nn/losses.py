"""Loss functions used by GBGCN and the baseline models.

* :func:`bpr_loss` — Bayesian Personalized Ranking (MF, NCF-as-ranker,
  NGCF, SocialMF, DiffNet, GBMF, and the building block of GBGCN's
  fine-grained loss).
* :func:`log_loss` — pointwise binary cross entropy on scores (SIGR).
* :func:`regression_pairwise_loss` — the margin-regression pairwise loss
  used by AGREE.
* :func:`l2_regularization` — weight decay over an iterable of tensors.
* :func:`social_regularization` — the SocialMF-style constraint that pulls
  a user's embedding towards the mean of their friends' embeddings, which
  the paper adds to GBGCN's objective ("social regularization term
  proposed in [1]").
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, as_tensor, l2_norm_squared, log_sigmoid, sigmoid, sparse_matmul

__all__ = [
    "bpr_loss",
    "log_loss",
    "regression_pairwise_loss",
    "l2_regularization",
    "social_regularization",
]


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Mean BPR loss ``-log sigmoid(pos - neg)`` over paired score tensors."""
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    return -log_sigmoid(positive_scores - negative_scores).mean()


def log_loss(scores: Tensor, labels: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Binary cross-entropy of sigmoid(scores) against 0/1 ``labels``."""
    scores = as_tensor(scores)
    labels = np.asarray(labels, dtype=np.float64)
    probabilities = sigmoid(scores).clip(eps, 1.0 - eps)
    losses = -(as_tensor(labels) * probabilities.log() + as_tensor(1.0 - labels) * (1.0 - probabilities).log())
    return losses.mean()


def regression_pairwise_loss(positive_scores: Tensor, negative_scores: Tensor, margin: float = 1.0) -> Tensor:
    """AGREE's regression-based pairwise loss ``(pos - neg - margin)^2``."""
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    return ((positive_scores - negative_scores - margin) ** 2).mean()


def l2_regularization(parameters: Iterable[Tensor], weight: float) -> Tensor:
    """``weight * sum_i ||p_i||^2`` over the given parameters."""
    if weight == 0.0:
        return Tensor(0.0)
    return l2_norm_squared(parameters) * weight


def social_regularization(
    user_embeddings: Tensor,
    social_matrix: sp.spmatrix,
    weight: float,
    user_indices: Optional[np.ndarray] = None,
) -> Tensor:
    """SocialMF-style regularizer pulling users towards their friends' mean.

    Parameters
    ----------
    user_embeddings:
        The full ``P x d`` user embedding tensor.
    social_matrix:
        Row-normalized ``P x P`` social adjacency (friend averaging matrix).
    weight:
        Regularization strength; 0 disables the term.
    user_indices:
        Optionally restrict the penalty to the users present in the current
        mini-batch (keeps the cost proportional to the batch).
    """
    if weight == 0.0:
        return Tensor(0.0)
    friend_mean = sparse_matmul(social_matrix, user_embeddings)
    difference = user_embeddings - friend_mean
    # Users with no friends have an all-zero friend mean; penalizing them
    # would just shrink their embeddings towards zero, so mask them out.
    has_friends = (social_matrix.getnnz(axis=1) > 0).astype(np.float64).reshape(-1, 1)
    difference = difference * Tensor(has_friends)
    if user_indices is not None:
        difference = difference[np.asarray(user_indices, dtype=np.int64)]
    return (difference ** 2).sum() * weight
