"""Minimal module / parameter system layered on the autograd engine.

Mirrors the part of ``torch.nn`` that the paper's models require: named
parameters, nested submodules, train/eval mode, and state serialization so
that the pre-training stage can hand its embeddings to the fine-tuning
stage (Section III-C3 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`.

    A parameter's ``grad`` holds either a dense ``numpy.ndarray`` or a
    :class:`~repro.autograd.RowSparseGrad` (when every contribution came
    from row gathers such as embedding lookups); ``zero_grad`` resets both.
    The optimizers in :mod:`repro.optim` consume either representation —
    sparse gradients take the row-sliced fast path.  Unlike interior graph
    nodes, a parameter always *owns* its gradient buffer (the first dense
    contribution is copied), so in-place gradient clipping and accumulation
    across batches can never write through an aliased activation buffer.
    """

    _copy_first_grad = True
    _keep_sparse_grad = True

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by :meth:`parameters`,
    :meth:`named_parameters`, :meth:`state_dict` and friends.
    """

    def __init__(self) -> None:
        self._training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for attr_name, attr_value in vars(self).items():
            if attr_name.startswith("_") and not isinstance(attr_value, (Parameter, Module, list, dict)):
                continue
            qualified = f"{prefix}{attr_name}"
            if isinstance(attr_value, Parameter):
                yield qualified, attr_value
            elif isinstance(attr_value, Module):
                yield from attr_value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(attr_value, (list, tuple)):
                for index, element in enumerate(attr_value):
                    if isinstance(element, Parameter):
                        yield f"{qualified}.{index}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{qualified}.{index}.")
            elif isinstance(attr_value, dict):
                for key, element in attr_value.items():
                    if isinstance(element, Parameter):
                        yield f"{qualified}.{key}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{qualified}.{key}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self``."""
        yield prefix.rstrip("."), self
        for attr_name, attr_value in vars(self).items():
            qualified = f"{prefix}{attr_name}"
            if isinstance(attr_value, Module):
                yield from attr_value.named_modules(prefix=f"{qualified}.")
            elif isinstance(attr_value, (list, tuple)):
                for index, element in enumerate(attr_value):
                    if isinstance(element, Module):
                        yield from element.named_modules(prefix=f"{qualified}.{index}.")
            elif isinstance(attr_value, dict):
                for key, element in attr_value.items():
                    if isinstance(element, Module):
                        yield from element.named_modules(prefix=f"{qualified}.{key}.")

    # ------------------------------------------------------------------
    # Training / evaluation state
    # ------------------------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        """Put this module and all children in training mode."""
        for _, module in self.named_modules():
            module._training = True
        return self

    def eval(self) -> "Module":
        """Put this module and all children in evaluation mode."""
        for _, module in self.named_modules():
            module._training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(
        self, state: Dict[str, np.ndarray], strict: bool = True, copy: bool = True
    ) -> None:
        """Load parameter values from :meth:`state_dict` output.

        With ``strict=False`` unknown keys are ignored and missing keys are
        left at their current values, which is how the pre-trained raw
        embeddings are transferred into the full GBGCN model.

        ``copy=False`` binds parameters directly to the caller's arrays
        instead of private copies — the zero-copy path used by mmap-backed
        artifact loads, where the arrays are read-only memory maps shared
        across processes.  A module bound to read-only arrays can score but
        not train; callers passing ``copy=False`` own that trade-off.
        """
        converted = self._validated_state(state, strict=strict, copy=copy)
        self._assign_state(converted)

    def _validated_state(
        self, state: Dict[str, np.ndarray], strict: bool = True, copy: bool = True
    ) -> Dict[str, np.ndarray]:
        """Check keys and shapes, returning converted arrays without assigning.

        Splitting validation from assignment keeps :meth:`load_state_dict`
        all-or-nothing: a bad entry can never leave the module with half of
        its parameters loaded.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        converted = {}
        for name, value in state.items():
            if name not in own:
                continue
            value = np.asarray(value, dtype=np.float64)
            if own[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for parameter '{name}': "
                    f"{own[name].data.shape} vs {value.shape}"
                )
            converted[name] = value.copy() if copy else value
        return converted

    def _assign_state(self, converted: Dict[str, np.ndarray]) -> None:
        """Commit arrays produced by :meth:`_validated_state` (cannot fail)."""
        own = dict(self.named_parameters())
        for name, value in converted.items():
            own[name].data = value

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(parameter.data.size for parameter in self.parameters()))

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
