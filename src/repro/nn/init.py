"""Parameter initialization schemes.

The paper initializes every model with Xavier (Glorot) initialization
[Glorot & Bengio, 2010]; normal and uniform fallbacks are provided for the
baselines that historically used them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "normal", "uniform", "zeros"]


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a zero-dimensional shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in, fan_out = shape[0], shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.01, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Zero-mean Gaussian initialization with standard deviation ``std``."""
    rng = rng or np.random.default_rng()
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], low: float = -0.05, high: float = 0.05, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    rng = rng or np.random.default_rng()
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
