"""Neural-network building blocks (modules, layers, initializers, losses)."""

from .module import Module, Parameter
from .layers import (
    AttentionPooling,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    resolve_activation,
)
from .losses import (
    bpr_difference_loss,
    bpr_loss,
    l2_regularization,
    log_loss,
    regression_pairwise_loss,
    social_regularization,
)
from . import init

__all__ = [
    "Module",
    "Parameter",
    "MLP",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "AttentionPooling",
    "Linear",
    "resolve_activation",
    "bpr_loss",
    "bpr_difference_loss",
    "l2_regularization",
    "log_loss",
    "regression_pairwise_loss",
    "social_regularization",
    "init",
]
