"""Neural-network layers used across GBGCN and the baselines."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..autograd import ACTIVATIONS, Tensor, dropout, embedding_lookup
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "Embedding", "MLP", "Dropout", "LayerNorm", "AttentionPooling"]


def resolve_activation(activation: Union[str, Callable[[Tensor], Tensor], None]) -> Callable[[Tensor], Tensor]:
    """Map an activation name (or callable, or None) to a callable."""
    if activation is None:
        return ACTIVATIONS["identity"]
    if callable(activation):
        return activation
    if activation not in ACTIVATIONS:
        raise ValueError(f"unknown activation '{activation}', expected one of {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[activation]


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    The cross-view propagation of GBGCN (Eq. 4-7) uses these layers to
    transform embeddings between the initiator and participant subspaces.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """A table of ``num_embeddings`` x ``embedding_dim`` trainable vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        scheme: str = "xavier_uniform",
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        if scheme == "xavier_uniform":
            values = init.xavier_uniform((num_embeddings, embedding_dim), rng=rng)
        elif scheme == "normal":
            values = init.normal((num_embeddings, embedding_dim), std=0.01, rng=rng)
        else:
            raise ValueError(f"unknown initialization scheme '{scheme}'")
        self.weight = Parameter(values, name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)

    def all(self) -> Tensor:
        """Return the full embedding table as a tensor in the graph."""
        return self.weight

    def normalize_(self) -> None:
        """L2-normalize every row in place (used after pre-training)."""
        norms = np.linalg.norm(self.weight.data, axis=1, keepdims=True)
        self.weight.data = self.weight.data / np.maximum(norms, 1e-12)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class Dropout(Module):
    """Dropout layer that respects the module train/eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        return dropout(inputs, self.rate, rng=self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class MLP(Module):
    """Multi-layer perceptron used by NCF, AGREE and SIGR.

    ``layer_sizes`` includes the input size, e.g. ``[64, 32, 16, 8]`` builds
    three Linear layers with the given activation between them.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: Union[str, Callable[[Tensor], Tensor]] = "relu",
        output_activation: Union[str, Callable[[Tensor], Tensor], None] = None,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.layer_sizes = list(layer_sizes)
        self.layers: List[Linear] = [
            Linear(in_size, out_size, rng=rng)
            for in_size, out_size in zip(layer_sizes[:-1], layer_sizes[1:])
        ]
        self._activation = resolve_activation(activation)
        self._output_activation = resolve_activation(output_activation)
        self._dropout = Dropout(dropout_rate, rng=rng) if dropout_rate > 0 else None

    def forward(self, inputs: Tensor) -> Tensor:
        hidden = inputs
        for index, layer in enumerate(self.layers):
            hidden = layer(hidden)
            is_last = index == len(self.layers) - 1
            hidden = self._output_activation(hidden) if is_last else self._activation(hidden)
            if self._dropout is not None and not is_last:
                hidden = self._dropout(hidden)
        return hidden

    def __repr__(self) -> str:
        return f"MLP(sizes={self.layer_sizes})"


class LayerNorm(Module):
    """Layer normalization over the last axis, with learnable scale and shift.

    Not used by the paper's published architecture, but exposed so the
    stability ablations can test whether normalizing the concatenated
    multi-layer embeddings changes GBGCN's behaviour.
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_dim < 1:
            raise ValueError("normalized_dim must be positive")
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim), name="gamma")
        self.beta = Parameter(np.zeros(normalized_dim), name="beta")

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.normalized_dim})"


class AttentionPooling(Module):
    """Additive attention pooling of a variable-length set of vectors.

    This is the aggregation mechanism of the group-recommendation baselines
    (AGREE/SIGR aggregate member embeddings into a group embedding with a
    learned attention weight per member): ``score_i = v^T tanh(W x_i + b)``,
    softmax over the set, weighted sum of the inputs.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        hidden_dim = hidden_dim or input_dim
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.projection = Linear(input_dim, hidden_dim, rng=rng)
        self.score = Linear(hidden_dim, 1, bias=False, rng=rng)

    def weights(self, inputs: Tensor) -> Tensor:
        """Softmax attention weights of shape ``(n, 1)`` for ``(n, d)`` inputs."""
        from ..autograd import softmax, tanh

        scores = self.score(tanh(self.projection(inputs)))
        return softmax(scores, axis=0)

    def forward(self, inputs: Tensor) -> Tensor:
        """Pool ``(n, d)`` inputs into a single ``(d,)`` vector."""
        weights = self.weights(inputs)
        return (inputs * weights).sum(axis=0)

    def __repr__(self) -> str:
        return f"AttentionPooling(input={self.input_dim}, hidden={self.hidden_dim})"
