"""Experiment: Table III — overall performance of GBGCN vs. all baselines.

Trains every method of the paper on the same workload, evaluates it with
the leave-one-out protocol, and prints the same rows as Table III:
Recall@{3,5,10,20} and NDCG@{3,5,10,20} per method plus the relative
improvement of GBGCN over the best baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eval.protocol import EvaluationResult
from ..eval.significance import improvement, paired_t_test
from ..models.registry import MODEL_NAMES, build_model
from ..training.pipeline import train_gbgcn_with_pretraining, train_model
from ..utils.logging import get_logger
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Table3Result", "run_table3", "PAPER_TABLE3"]

logger = get_logger("experiments.table3")

#: Metric columns in the paper's order.
METRIC_COLUMNS = (
    "Recall@3",
    "Recall@5",
    "Recall@10",
    "Recall@20",
    "NDCG@3",
    "NDCG@5",
    "NDCG@10",
    "NDCG@20",
)

#: The numbers reported in the paper's Table III (Beibei dataset).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "MF(oi)": {"Recall@3": 0.0762, "Recall@5": 0.1055, "Recall@10": 0.1567, "Recall@20": 0.2219,
               "NDCG@3": 0.0590, "NDCG@5": 0.0710, "NDCG@10": 0.0875, "NDCG@20": 0.1039},
    "MF": {"Recall@3": 0.1086, "Recall@5": 0.1456, "Recall@10": 0.2106, "Recall@20": 0.2886,
           "NDCG@3": 0.0847, "NDCG@5": 0.0999, "NDCG@10": 0.1208, "NDCG@20": 0.1405},
    "NCF": {"Recall@3": 0.1231, "Recall@5": 0.1640, "Recall@10": 0.2327, "Recall@20": 0.3142,
            "NDCG@3": 0.0961, "NDCG@5": 0.1129, "NDCG@10": 0.1351, "NDCG@20": 0.1556},
    "NGCF": {"Recall@3": 0.1171, "Recall@5": 0.1556, "Recall@10": 0.2190, "Recall@20": 0.2958,
             "NDCG@3": 0.0922, "NDCG@5": 0.1080, "NDCG@10": 0.1284, "NDCG@20": 0.1478},
    "SocialMF": {"Recall@3": 0.1135, "Recall@5": 0.1532, "Recall@10": 0.2202, "Recall@20": 0.3013,
                 "NDCG@3": 0.0889, "NDCG@5": 0.1051, "NDCG@10": 0.1268, "NDCG@20": 0.1472},
    "DiffNet": {"Recall@3": 0.1249, "Recall@5": 0.1664, "Recall@10": 0.2332, "Recall@20": 0.3153,
                "NDCG@3": 0.0981, "NDCG@5": 0.1151, "NDCG@10": 0.1366, "NDCG@20": 0.1573},
    "AGREE": {"Recall@3": 0.1036, "Recall@5": 0.1441, "Recall@10": 0.2097, "Recall@20": 0.2806,
              "NDCG@3": 0.0798, "NDCG@5": 0.0964, "NDCG@10": 0.1175, "NDCG@20": 0.1355},
    "SIGR": {"Recall@3": 0.1038, "Recall@5": 0.1405, "Recall@10": 0.2034, "Recall@20": 0.2809,
             "NDCG@3": 0.0806, "NDCG@5": 0.0956, "NDCG@10": 0.1159, "NDCG@20": 0.1354},
    "GBMF": {"Recall@3": 0.1262, "Recall@5": 0.1678, "Recall@10": 0.2350, "Recall@20": 0.3141,
             "NDCG@3": 0.0991, "NDCG@5": 0.1162, "NDCG@10": 0.1379, "NDCG@20": 0.1578},
    "GBGCN": {"Recall@3": 0.1341, "Recall@5": 0.1756, "Recall@10": 0.2444, "Recall@20": 0.3237,
              "NDCG@3": 0.1064, "NDCG@5": 0.1234, "NDCG@10": 0.1456, "NDCG@20": 0.1656},
}


@dataclass
class Table3Result:
    """Per-model metrics, the GBGCN-vs-best-baseline improvements, and p-value."""

    metrics: Dict[str, Dict[str, float]]
    per_user_ranks: Dict[str, np.ndarray] = field(default_factory=dict)

    def best_baseline(self, metric: str) -> str:
        """Name of the best non-GBGCN method for ``metric``."""
        candidates = {name: values[metric] for name, values in self.metrics.items() if name != "GBGCN"}
        return max(candidates, key=candidates.get)

    def improvements(self) -> Dict[str, float]:
        """Relative improvement (%) of GBGCN over the best baseline, per metric."""
        output: Dict[str, float] = {}
        for metric in METRIC_COLUMNS:
            baseline = self.metrics[self.best_baseline(metric)][metric]
            output[metric] = improvement(self.metrics["GBGCN"][metric], baseline)
        return output

    def significance_p_value(self, metric: str = "NDCG@10") -> Optional[float]:
        """Paired t-test p-value of GBGCN vs. the best baseline (if ranks stored)."""
        best = self.best_baseline(metric)
        if "GBGCN" not in self.per_user_ranks or best not in self.per_user_ranks:
            return None
        from ..eval.metrics import ndcg_at_k

        cutoff = int(metric.split("@")[1])
        gbgcn = np.asarray([ndcg_at_k(rank, cutoff) for rank in self.per_user_ranks["GBGCN"]])
        baseline = np.asarray([ndcg_at_k(rank, cutoff) for rank in self.per_user_ranks[best]])
        return paired_t_test(gbgcn, baseline).p_value

    def format(self) -> str:
        """The Table III layout: one row per method, plus the improvement row."""
        rows: List[Sequence] = []
        for name in MODEL_NAMES:
            if name not in self.metrics:
                continue
            values = self.metrics[name]
            rows.append([name] + [values[m] for m in METRIC_COLUMNS])
        improvements = self.improvements()
        rows.append(["Improvement (%)"] + [round(improvements[m], 2) for m in METRIC_COLUMNS])
        return format_table(["Method", *METRIC_COLUMNS], rows)


def _train_and_evaluate(name: str, workload: ExperimentWorkload) -> EvaluationResult:
    config = workload.config
    if name == "GBGCN":
        model, _, _ = train_gbgcn_with_pretraining(
            workload.split,
            config=config.model_settings.gbgcn_config(),
            settings=config.training,
            evaluator=workload.evaluator,
        )
    else:
        model = build_model(name, workload.split.train, config.model_settings)
        train_model(model, workload.split.train, evaluator=workload.evaluator, settings=config.training)
    return workload.evaluator.evaluate_test(model)


def run_table3(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    model_names: Sequence[str] = tuple(MODEL_NAMES),
) -> Table3Result:
    """Train and evaluate every requested method on one shared workload."""
    workload = workload or prepare_workload(config)
    metrics: Dict[str, Dict[str, float]] = {}
    ranks: Dict[str, np.ndarray] = {}
    for name in model_names:
        logger.info("training %s", name)
        result = _train_and_evaluate(name, workload)
        metrics[name] = result.metrics
        ranks[name] = result.ranks
        logger.info("%s: Recall@10=%.4f NDCG@10=%.4f", name, result["Recall@10"], result["NDCG@10"])
    return Table3Result(metrics=metrics, per_user_ranks=ranks)


if __name__ == "__main__":
    print(run_table3().format())
