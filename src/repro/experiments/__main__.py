"""Module entry point: ``python -m repro.experiments table3``."""

from .runner import main

if __name__ == "__main__":
    raise SystemExit(main())
