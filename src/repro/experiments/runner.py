"""Command-line runner: ``python -m repro.experiments <experiment> [--scale ...]``.

Runs any of the paper's tables/figures and prints its formatted output.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from .config import ExperimentConfig
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .sparsity import run_sparsity

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: Dict[str, Callable] = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "sparsity": run_sparsity,
}

_SCALES = {
    "tiny": ExperimentConfig.tiny,
    "quick": ExperimentConfig.quick,
    "paper": ExperimentConfig.paper,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Run a GBGCN reproduction experiment.")
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"], help="which table/figure to regenerate")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick", help="workload preset")
    arguments = parser.parse_args(argv)

    config = _SCALES[arguments.scale]()
    names = sorted(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for name in names:
        print(f"=== {name} ({arguments.scale}) ===")
        result = EXPERIMENTS[name](config=config)
        print(result.format())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
