"""Experiment: data-sparsity study (the paper's stated future work).

Section VI of the paper names "the data sparsity issue" as the main open
question.  This experiment makes it concrete: MF, GBMF and GBGCN are
trained on progressively subsampled training logs (the test set, candidate
lists and social network stay fixed) and the table reports how much of each
model's Recall@10 / NDCG@10 survives at each density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.sparsity import SparsityStudy, run_sparsity_study
from ..utils.logging import get_logger
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["SparsityResult", "run_sparsity"]

logger = get_logger("experiments.sparsity")

DEFAULT_MODELS: Sequence[str] = ("MF", "GBMF", "GBGCN")
DEFAULT_FRACTIONS: Sequence[float] = (0.25, 0.5, 1.0)


@dataclass
class SparsityResult:
    """The study plus the per-model degradation summary."""

    study: SparsityStudy

    def format(self) -> str:
        lines = [self.study.format(), ""]
        lines.append("Relative Recall@10 drop from the densest to the sparsest setting:")
        for model_name in self.study.model_names():
            lines.append(f"  {model_name}: {self.study.degradation(model_name):.1%}")
        return "\n".join(lines)


def run_sparsity(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    model_names: Sequence[str] = DEFAULT_MODELS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> SparsityResult:
    """Run the sparsity study on one shared workload."""
    workload = workload or prepare_workload(config)
    study = run_sparsity_study(
        workload.split,
        workload.evaluator,
        model_names=model_names,
        fractions=fractions,
        model_settings=workload.config.model_settings,
        training=workload.config.training,
        metric="Recall@10",
    )
    return SparsityResult(study=study)


if __name__ == "__main__":
    print(run_sparsity().format())
