"""Experiment drivers regenerating every table and figure of the paper."""

from .config import ExperimentConfig, ExperimentWorkload, prepare_workload
from .table2 import PAPER_TABLE2, Table2Result, run_table2
from .table3 import PAPER_TABLE3, Table3Result, run_table3
from .table4 import PAPER_TABLE4, Table4Result, run_table4
from .table5 import PAPER_TABLE5, Table5Result, run_table5
from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Result, run_figure6
from .sparsity import SparsityResult, run_sparsity
from .runner import EXPERIMENTS, main

__all__ = [
    "ExperimentConfig",
    "ExperimentWorkload",
    "prepare_workload",
    "PAPER_TABLE2",
    "Table2Result",
    "run_table2",
    "PAPER_TABLE3",
    "Table3Result",
    "run_table3",
    "PAPER_TABLE4",
    "Table4Result",
    "run_table4",
    "PAPER_TABLE5",
    "Table5Result",
    "run_table5",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "SparsityResult",
    "run_sparsity",
    "EXPERIMENTS",
    "main",
]
