"""Experiment: Figure 6 — t-SNE visualisation of the two views' embeddings.

The paper projects 1000 users and 1000 items per view with t-SNE and
observes that initiator-view and participant-view embeddings separate into
two regions.  Since this is a headless reproduction, the experiment
reports the 2-D coordinates plus a quantitative separation score: the
silhouette-style ratio between cross-view and within-view centroid
distances (> 1 means the views are visibly separated, the paper's claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..analysis.embedding_analysis import tsne_projection
from ..analysis.tsne import TSNEConfig
from ..training.pipeline import train_gbgcn_with_pretraining
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Figure6Result", "run_figure6", "view_separation_score"]


def view_separation_score(initiator_points: np.ndarray, participant_points: np.ndarray) -> float:
    """Ratio of between-view centroid distance to mean within-view spread.

    Values noticeably above 0 indicate the two views occupy different
    regions of the t-SNE plane, which is the qualitative claim of Figure 6.
    """
    centroid_i = initiator_points.mean(axis=0)
    centroid_p = participant_points.mean(axis=0)
    between = float(np.linalg.norm(centroid_i - centroid_p))
    spread_i = float(np.mean(np.linalg.norm(initiator_points - centroid_i, axis=1)))
    spread_p = float(np.mean(np.linalg.norm(participant_points - centroid_p, axis=1)))
    within = max((spread_i + spread_p) / 2.0, 1e-12)
    return between / within


@dataclass
class Figure6Result:
    """t-SNE coordinates per view plus separation scores."""

    projections: Dict[str, np.ndarray]

    def user_separation(self) -> float:
        return view_separation_score(self.projections["user_initiator"], self.projections["user_participant"])

    def item_separation(self) -> float:
        return view_separation_score(self.projections["item_initiator"], self.projections["item_participant"])

    def format(self) -> str:
        rows = [
            ("users (initiator vs participant view)", self.user_separation()),
            ("items (initiator vs participant view)", self.item_separation()),
        ]
        return format_table(["Embedding set", "View separation score"], rows)


def run_figure6(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    num_users: int = 200,
    num_items: int = 200,
    tsne_config: Optional[TSNEConfig] = None,
) -> Figure6Result:
    """Train GBGCN, project embeddings with t-SNE and score view separation."""
    workload = workload or prepare_workload(config)
    model, _, _ = train_gbgcn_with_pretraining(
        workload.split,
        config=workload.config.model_settings.gbgcn_config(),
        settings=workload.config.training,
        evaluator=workload.evaluator,
    )
    tsne_config = tsne_config or TSNEConfig(num_iterations=200, perplexity=20.0)
    projections = tsne_projection(model, num_users=num_users, num_items=num_items, config=tsne_config)
    return Figure6Result(projections=projections)


if __name__ == "__main__":
    print(run_figure6().format())
