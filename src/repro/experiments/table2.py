"""Experiment: Table II — statistics of the (synthetic) group-buying dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..data.stats import DatasetStatistics, compute_statistics
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Table2Result", "run_table2", "PAPER_TABLE2"]

#: The counts reported in the paper's Table II (Beibei dump).
PAPER_TABLE2: Dict[str, int] = {
    "#Users": 190_080,
    "#Items": 30_782,
    "#Social Interactions": 748_233,
    "#Group-buying Behaviors": 932_896,
    "#Successful": 721_605,
    "#Failed": 211_291,
}


@dataclass
class Table2Result:
    """Statistics of the generated dataset next to the paper's numbers."""

    statistics: DatasetStatistics

    def format(self) -> str:
        """Side-by-side table: this run vs. the paper's Beibei dump."""
        measured = self.statistics.as_dict()
        rows = []
        for key in (
            "#Users",
            "#Items",
            "#Social Interactions",
            "#Group-buying Behaviors",
            "#Successful",
            "#Failed",
        ):
            rows.append((key, measured[key], PAPER_TABLE2[key]))
        rows.append(
            (
                "Success ratio",
                round(self.statistics.success_ratio, 4),
                round(PAPER_TABLE2["#Successful"] / PAPER_TABLE2["#Group-buying Behaviors"], 4),
            )
        )
        return format_table(["Statistic", "This run (synthetic)", "Paper (Beibei)"], rows)


def run_table2(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
) -> Table2Result:
    """Generate the dataset and compute its Table II statistics."""
    workload = workload or prepare_workload(config)
    return Table2Result(statistics=compute_statistics(workload.split.full))


if __name__ == "__main__":
    print(run_table2().format())
