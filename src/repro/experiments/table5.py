"""Experiment: Table V — impact of the multi-view design (ablation study).

Degrades GBGCN by pooling the initiator-view and participant-view
embeddings after every propagation layer — removing item roles, user roles
or both — and reports Recall@{10,20} / NDCG@{10,20} plus the relative
change versus the full model, as in the paper's Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.ablation import ABLATION_VARIANTS
from ..core.gbgcn import GBGCNConfig
from ..eval.significance import improvement
from ..training.pipeline import train_gbgcn_with_pretraining
from ..utils.logging import get_logger
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Table5Result", "run_table5", "PAPER_TABLE5"]

logger = get_logger("experiments.table5")

METRIC_COLUMNS = ("Recall@10", "Recall@20", "NDCG@10", "NDCG@20")

#: Paper's Table V values.
PAPER_TABLE5: Dict[str, Dict[str, float]] = {
    "GBGCN": {"Recall@10": 0.2444, "Recall@20": 0.3237, "NDCG@10": 0.1456, "NDCG@20": 0.1656},
    "Without Item Roles": {"Recall@10": 0.2422, "Recall@20": 0.3226, "NDCG@10": 0.1439, "NDCG@20": 0.1642},
    "Without User Roles": {"Recall@10": 0.2430, "Recall@20": 0.3218, "NDCG@10": 0.1447, "NDCG@20": 0.1646},
    "Without Item and User Roles": {"Recall@10": 0.2408, "Recall@20": 0.3189, "NDCG@10": 0.1439, "NDCG@20": 0.1636},
}


@dataclass
class Table5Result:
    """Metrics of the full model and every ablation variant."""

    metrics: Dict[str, Dict[str, float]]

    def relative_change(self, variant: str, metric: str) -> float:
        """Relative change (%) of ``variant`` versus the full GBGCN."""
        return improvement(self.metrics[variant][metric], self.metrics["GBGCN"][metric])

    def format(self) -> str:
        rows: List[Sequence] = []
        for variant in ABLATION_VARIANTS:
            if variant not in self.metrics:
                continue
            values = self.metrics[variant]
            row: List = [variant]
            for metric in METRIC_COLUMNS:
                row.append(values[metric])
                row.append("-" if variant == "GBGCN" else f"{self.relative_change(variant, metric):+.2f}%")
            rows.append(row)
        headers = ["Method"]
        for metric in METRIC_COLUMNS:
            headers.extend([metric, "Improve."])
        return format_table(headers, rows)


def run_table5(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    variants: Sequence[str] = tuple(ABLATION_VARIANTS),
) -> Table5Result:
    """Train the full model and each ablation variant on one shared workload."""
    workload = workload or prepare_workload(config)
    base_config = workload.config.model_settings.gbgcn_config()
    metrics: Dict[str, Dict[str, float]] = {}
    for variant in variants:
        flags = ABLATION_VARIANTS[variant]
        variant_config = GBGCNConfig(
            embedding_dim=base_config.embedding_dim,
            num_layers=base_config.num_layers,
            alpha=base_config.alpha,
            beta=base_config.beta,
            l2_weight=base_config.l2_weight,
            social_weight=base_config.social_weight,
            activation=base_config.activation,
            **flags,
        )
        logger.info("training ablation variant: %s", variant)
        model, _, _ = train_gbgcn_with_pretraining(
            workload.split,
            config=variant_config,
            settings=workload.config.training,
            evaluator=workload.evaluator,
        )
        metrics[variant] = workload.evaluator.evaluate_test(model).metrics
    return Table5Result(metrics=metrics)


if __name__ == "__main__":
    print(run_table5().format())
