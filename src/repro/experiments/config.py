"""Shared experiment configuration.

Every experiment (Tables II-V, Figures 4-6) runs on the same prepared
workload: a Beibei-like dataset, its leave-one-out split, an evaluator and
a set of training settings.  :class:`ExperimentConfig` bundles those and
offers three presets:

* ``tiny``  — seconds per model; used by the integration tests;
* ``quick`` — the default for ``benchmarks/`` (a few minutes end to end);
* ``paper`` — Table II scale with 500-epoch budgets; only for users with a
  lot of CPU time, provided for completeness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from ..data.splits import DatasetSplit, leave_one_out_split
from ..data.synthetic import BeibeiLikeConfig, generate_dataset
from ..eval.protocol import LeaveOneOutEvaluator
from ..models.registry import ModelSettings
from ..training.pipeline import TrainingSettings

__all__ = ["ExperimentConfig", "ExperimentWorkload", "prepare_workload"]


@dataclass
class ExperimentConfig:
    """Dataset scale + training budget + evaluation protocol for one run."""

    dataset: BeibeiLikeConfig = field(default_factory=BeibeiLikeConfig)
    training: TrainingSettings = field(default_factory=TrainingSettings)
    model_settings: ModelSettings = field(default_factory=ModelSettings)
    num_eval_negatives: int = 999
    split_seed: int = 7
    eval_seed: int = 11

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Unit/integration-test scale (seconds for the full model zoo)."""
        return cls(
            dataset=BeibeiLikeConfig.small(),
            training=TrainingSettings(num_epochs=3, pretrain_epochs=2, batch_size=256),
            model_settings=ModelSettings(embedding_dim=8),
            num_eval_negatives=50,
        )

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Benchmark scale: large enough to show the paper's ordering, CPU-friendly.

        Two knobs deliberately differ from the paper's Beibei values, both
        re-tuned on the validation set of the synthetic workload exactly as
        the paper tunes them on Beibei's validation set:

        * the epoch budget (32 fine-tuning epochs) — with much fewer epochs
          the SGD-fine-tuned GBGCN is still warming up while the simple
          Adam-trained baselines have already converged, which would invert
          the paper's ordering for the wrong reason (budget, not modeling);
        * the role coefficient ``alpha`` (0.2 here vs. 0.6 on Beibei) — the
          synthetic initiators weigh their own taste more heavily than
          Beibei's, so the validation-best balance between initiator and
          participant interest shifts toward the initiator.  The Figure 4
          bench sweeps alpha and records where the optimum falls.
        """
        return cls(
            dataset=BeibeiLikeConfig(num_users=400, num_items=150, num_behaviors=2200, seed=2021),
            training=TrainingSettings(num_epochs=32, pretrain_epochs=8, batch_size=512, validate_every=4),
            model_settings=ModelSettings(embedding_dim=16, alpha=0.2),
            num_eval_negatives=199,
        )

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Table II scale with the paper's training budget (very slow on CPU)."""
        return cls(
            dataset=BeibeiLikeConfig.paper_scale(),
            training=TrainingSettings(num_epochs=500, pretrain_epochs=50, batch_size=4096, validate_every=10),
            model_settings=ModelSettings(embedding_dim=32),
            num_eval_negatives=999,
        )

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Preset selected by ``REPRO_EXPERIMENT_SCALE`` (tiny/quick/paper)."""
        scale = os.environ.get("REPRO_EXPERIMENT_SCALE", "quick").lower()
        if scale == "tiny":
            return cls.tiny()
        if scale == "paper":
            return cls.paper()
        return cls.quick()

    def scaled_epochs(self, num_epochs: int) -> "ExperimentConfig":
        """Copy of this config with a different epoch budget."""
        return replace(self, training=replace(self.training, num_epochs=num_epochs))


@dataclass
class ExperimentWorkload:
    """A fully prepared workload: dataset, split and evaluator."""

    config: ExperimentConfig
    split: DatasetSplit
    evaluator: LeaveOneOutEvaluator


def prepare_workload(config: Optional[ExperimentConfig] = None) -> ExperimentWorkload:
    """Generate the dataset, split it and build the evaluator."""
    config = config or ExperimentConfig.from_environment()
    dataset = generate_dataset(config.dataset)
    split = leave_one_out_split(dataset, seed=config.split_seed)
    evaluator = LeaveOneOutEvaluator(
        split, num_negatives=config.num_eval_negatives, seed=config.eval_seed
    )
    return ExperimentWorkload(config=config, split=split, evaluator=evaluator)
