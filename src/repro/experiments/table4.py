"""Experiment: Table IV — training/testing time efficiency of every method.

The paper measures wall-clock seconds per training epoch and per testing
pass on one machine.  This experiment repeats that measurement for every
method on the shared workload; absolute numbers depend on the host, but the
ordering (CF/social models fast, group and group-buying models slower,
GBGCN the slowest) is the reproducible shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..eval.timing import TimingResult, measure_time_efficiency
from ..models.registry import MODEL_NAMES, build_model
from ..optim import Adam
from ..training.factory import build_batch_iterator
from ..utils.logging import get_logger
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Table4Result", "run_table4", "PAPER_TABLE4"]

logger = get_logger("experiments.table4")

#: Seconds per epoch reported in the paper (TITAN Xp + DGL).
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "MF(oi)": {"train": 2.99, "test": 4.74},
    "MF": {"train": 3.65, "test": 4.75},
    "NCF": {"train": 3.83, "test": 4.47},
    "NGCF": {"train": 5.68, "test": 4.87},
    "SocialMF": {"train": 5.27, "test": 4.83},
    "DiffNet": {"train": 4.77, "test": 4.55},
    "AGREE": {"train": 17.25, "test": 15.25},
    "SIGR": {"train": 58.29, "test": 8.56},
    "GBMF": {"train": 31.68, "test": 54.34},
    "GBGCN": {"train": 56.28, "test": 88.36},
}


@dataclass
class Table4Result:
    """Measured per-epoch times for every method."""

    timings: Dict[str, TimingResult]

    def format(self) -> str:
        rows: List[Sequence] = []
        for name in MODEL_NAMES:
            if name not in self.timings:
                continue
            timing = self.timings[name]
            paper = PAPER_TABLE4.get(name, {})
            rows.append(
                (
                    name,
                    timing.train_seconds_per_epoch,
                    timing.test_seconds_per_epoch,
                    paper.get("train", float("nan")),
                    paper.get("test", float("nan")),
                )
            )
        return format_table(
            ["Method", "Train (s/epoch)", "Test (s/epoch)", "Paper train", "Paper test"], rows
        )


def run_table4(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    model_names: Sequence[str] = tuple(MODEL_NAMES),
    num_epochs: int = 1,
) -> Table4Result:
    """Measure training and testing time for every requested method."""
    workload = workload or prepare_workload(config)
    settings = workload.config
    timings: Dict[str, TimingResult] = {}
    for name in model_names:
        logger.info("timing %s", name)
        model = build_model(name, workload.split.train, settings.model_settings)
        iterator = build_batch_iterator(
            model,
            workload.split.train,
            batch_size=settings.training.batch_size,
            seed=settings.training.seed,
        )
        optimizer = Adam(model.parameters(), lr=settings.training.learning_rate)
        timings[name] = measure_time_efficiency(
            model, optimizer, iterator, workload.evaluator, num_epochs=num_epochs
        )
    return Table4Result(timings=timings)


if __name__ == "__main__":
    print(run_table4().format())
