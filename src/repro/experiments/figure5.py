"""Experiment: Figure 5 — distribution of cosine similarity between the two views.

After training GBGCN, the cosine similarity between every entity's
initiator-view and participant-view embedding is computed separately for
the in-view propagation outputs and for the cross-view propagation
outputs.  The paper's qualitative findings, which this experiment checks:

* in-view item embeddings are nearly identical across views (similarity
  concentrated close to 1);
* in-view user embeddings diverge somewhat;
* cross-view embeddings (both users and items) diverge clearly, i.e. the
  FC layers learn view-specific information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.embedding_analysis import SimilarityDistribution, gbgcn_view_similarities
from ..training.pipeline import train_gbgcn_with_pretraining
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Figure5Result", "run_figure5"]


@dataclass
class Figure5Result:
    """The four similarity distributions of Figure 5."""

    distributions: Dict[str, SimilarityDistribution]

    def format(self) -> str:
        rows = []
        for key in ("user_in_view", "item_in_view", "user_cross_view", "item_cross_view"):
            distribution = self.distributions[key]
            rows.append((key, distribution.mean, distribution.std))
        return format_table(["Embedding set", "Mean cosine similarity", "Std"], rows)


def run_figure5(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
) -> Figure5Result:
    """Train GBGCN and compute the four view-similarity distributions."""
    workload = workload or prepare_workload(config)
    model, _, _ = train_gbgcn_with_pretraining(
        workload.split,
        config=workload.config.model_settings.gbgcn_config(),
        settings=workload.config.training,
        evaluator=workload.evaluator,
    )
    return Figure5Result(distributions=gbgcn_view_similarities(model))


if __name__ == "__main__":
    print(run_figure5().format())
