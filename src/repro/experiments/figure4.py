"""Experiment: Figure 4 — sensitivity to the role coefficient alpha and the
loss coefficient beta.

The paper plots Recall@10 and NDCG@10 of GBGCN while sweeping alpha over
{0.1..0.9} and beta over {0 (plain BPR), 0.01, 0.02, 0.05, 0.1, 0.2, 0.5};
the expected shapes are an interior optimum for alpha (biased values hurt)
and a small positive beta beating beta = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.hyperparam import (
    PAPER_ALPHA_GRID,
    PAPER_BETA_GRID,
    SweepPoint,
    sweep_loss_coefficient,
    sweep_role_coefficient,
)
from ..utils.tables import format_table
from .config import ExperimentConfig, ExperimentWorkload, prepare_workload

__all__ = ["Figure4Result", "run_figure4"]


@dataclass
class Figure4Result:
    """The two sweep series of Figure 4."""

    alpha_points: List[SweepPoint]
    beta_points: List[SweepPoint]

    def best_alpha(self, metric: str = "Recall@10") -> float:
        return max(self.alpha_points, key=lambda point: point[metric]).value

    def best_beta(self, metric: str = "Recall@10") -> float:
        return max(self.beta_points, key=lambda point: point[metric]).value

    def format(self) -> str:
        alpha_rows = [(p.value, p["Recall@10"], p["NDCG@10"]) for p in self.alpha_points]
        beta_rows = [(p.value, p["Recall@10"], p["NDCG@10"]) for p in self.beta_points]
        return "\n\n".join(
            [
                "Role coefficient alpha sweep:",
                format_table(["alpha", "Recall@10", "NDCG@10"], alpha_rows),
                "Loss coefficient beta sweep (beta=0 is plain BPR):",
                format_table(["beta", "Recall@10", "NDCG@10"], beta_rows),
            ]
        )


def run_figure4(
    config: Optional[ExperimentConfig] = None,
    workload: Optional[ExperimentWorkload] = None,
    alphas: Sequence[float] = PAPER_ALPHA_GRID,
    betas: Sequence[float] = PAPER_BETA_GRID,
) -> Figure4Result:
    """Run both sweeps on one shared workload."""
    workload = workload or prepare_workload(config)
    base_config = workload.config.model_settings.gbgcn_config()
    alpha_points = sweep_role_coefficient(
        workload.split, workload.evaluator, base_config=base_config,
        settings=workload.config.training, alphas=alphas,
    )
    beta_points = sweep_loss_coefficient(
        workload.split, workload.evaluator, base_config=base_config,
        settings=workload.config.training, betas=betas,
    )
    return Figure4Result(alpha_points=alpha_points, beta_points=beta_points)


if __name__ == "__main__":
    print(run_figure4().format())
