"""Dataset-schema fingerprints for train-once / serve-anywhere artifacts.

An artifact is only meaningful relative to the dataset it was trained on:
row ``u`` of a user embedding *is* user ``u`` of that dataset.  The
fingerprint captures the dataset's schema — the user/item universe sizes,
the behavior and social-edge counts, and a digest of the full behavior and
social structure (initiators, items, thresholds, participant lists, edges)
— so :func:`repro.persist.load_model` can refuse to resurrect a model on
top of the wrong universe instead of serving garbage recommendations.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..data.dataset import GroupBuyingDataset

__all__ = ["dataset_fingerprint", "fingerprint_mismatch"]


def dataset_fingerprint(dataset: "GroupBuyingDataset") -> Dict[str, Any]:
    """Schema fingerprint of a :class:`~repro.data.dataset.GroupBuyingDataset`.

    The digest hashes the behaviors as five packed int64 arrays —
    initiators, items, thresholds, participant counts, and the flattened
    participant lists (the counts array makes the flattening unambiguous) —
    followed by the social edge pairs, all in dataset order, so two datasets
    fingerprint equal iff their structure is identical element for element.
    Computed once per dataset instance and cached on it (datasets are
    immutable), so repeated ``build_model`` / ``load_model`` calls against
    the same dataset pay the hashing only once.
    """
    cached = getattr(dataset, "_fingerprint_cache", None)
    if cached is not None:
        return dict(cached)
    hasher = hashlib.sha256()
    behaviors = dataset.behaviors
    count = len(behaviors)
    columns = (
        np.fromiter((b.initiator for b in behaviors), dtype=np.int64, count=count),
        np.fromiter((b.item for b in behaviors), dtype=np.int64, count=count),
        np.fromiter((b.threshold for b in behaviors), dtype=np.int64, count=count),
        np.fromiter((len(b.participants) for b in behaviors), dtype=np.int64, count=count),
        np.fromiter((p for b in behaviors for p in b.participants), dtype=np.int64),
    )
    for column in columns:
        hasher.update(column.tobytes())
    hasher.update(b"|social|")
    edges = np.asarray([edge.as_tuple() for edge in dataset.social_edges], dtype=np.int64)
    hasher.update(edges.tobytes())
    fingerprint = {
        "num_users": int(dataset.num_users),
        "num_items": int(dataset.num_items),
        "num_behaviors": int(dataset.num_behaviors),
        "num_social_edges": int(dataset.num_social_edges),
        "digest": hasher.hexdigest(),
    }
    try:
        dataset._fingerprint_cache = fingerprint
    except AttributeError:
        pass  # e.g. a dataset with __slots__; caching is best-effort
    return dict(fingerprint)


def fingerprint_mismatch(recorded: Dict[str, Any], actual: Dict[str, Any]) -> List[str]:
    """Human-readable list of fields on which two fingerprints disagree."""
    differences = []
    for key in ("num_users", "num_items", "num_behaviors", "num_social_edges", "digest"):
        if recorded.get(key) != actual.get(key):
            differences.append(f"{key}: artifact={recorded.get(key)!r} dataset={actual.get(key)!r}")
    return differences
